"""Paper Table I — accuracy, max training FLOPs and memory footprint.

Reproduced cost shapes (the paper's headline efficiency claims):

- FedTiny's per-round FLOPs and memory stay near the sparse floor
  (paper: 0.014x FLOPs, ~3% memory of dense at d=0.01);
- PruneFL pays ~0.34x FLOPs and a near-dense memory footprint at every
  density because of its full-size importance scores;
- LotteryFL trains dense (1x FLOPs, dense memory) regardless of the
  target density.
"""

from conftest import emit

from repro.experiments.paper import table1_accuracy_and_cost


def _by_method(rows):
    return {r["method"]: r for r in rows}


def test_table1_accuracy_and_cost(benchmark, bench_scale):
    output = benchmark.pedantic(
        table1_accuracy_and_cost, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    for model_name, by_density in output.data.items():
        dense = by_density["1.0"][0]
        dense_flops = dense["max_training_flops_per_round"]
        dense_memory = dense["memory_footprint_bytes"]
        for density_key, rows in by_density.items():
            if density_key == "1.0":
                continue
            rows = _by_method(rows)
            fedtiny = rows["fedtiny"]
            prunefl = rows["prunefl"]
            lottery = rows["lotteryfl"]
            # FedTiny cheap; PruneFL pays the dense-importance tax;
            # LotteryFL is dense-cost.
            assert fedtiny["max_training_flops_per_round"] < (
                0.5 * dense_flops
            )
            assert fedtiny["memory_footprint_bytes"] < (
                prunefl["memory_footprint_bytes"]
            )
            assert prunefl["max_training_flops_per_round"] > (
                fedtiny["max_training_flops_per_round"]
            )
            assert lottery["max_training_flops_per_round"] >= (
                0.9 * dense_flops
            )
            assert lottery["memory_footprint_bytes"] >= 0.9 * dense_memory
