"""Straggler round policies — accuracy vs simulated wall clock.

The paper's systems argument made runnable: on a heterogeneous fleet a
synchronous barrier pays the slowest device's time every round, while
the deadline policy cuts stragglers and the buffered-async policy
closes the round at the k-th upload. Each (method, policy) cell reports
the final accuracy and the cumulative simulated seconds, so the
accuracy-per-wall-clock tradeoff of every registered method under every
policy falls out of one table.
"""

from conftest import emit

from repro.experiments import get_scale, run_experiment

_POLICY_KWARGS = {
    "sync": {},
    "deadline": {"deadline_fraction": 1.2},
    "dropout": {"dropout_rate": 0.2},
    "async": {"async_buffer_fraction": 0.5, "staleness_discount": 0.5},
}


def _run_grid(scale_name):
    scale = get_scale(scale_name)
    density = 0.05
    methods = ["fedtiny", "prunefl"]
    rows = []
    for method in methods:
        for policy, kwargs in _POLICY_KWARGS.items():
            result = run_experiment(
                method, "resnet18", "cifar10", density,
                scale=scale, rounds=min(6, scale.rounds), seed=0,
                fleet="heterogeneous:8", round_policy=policy, **kwargs,
            )
            rows.append(
                {
                    "method": method,
                    "policy": policy,
                    "accuracy": result.final_accuracy,
                    "sim_seconds": result.sim_time_seconds,
                    "dropped": result.total_dropped_clients,
                }
            )
    return rows


def _format(rows):
    lines = [
        f"{'method':>10}  {'policy':>9}  {'acc':>6}  "
        f"{'sim s':>9}  {'dropped':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row['method']:>10}  {row['policy']:>9}  "
            f"{row['accuracy']:>6.3f}  {row['sim_seconds']:>9.2f}  "
            f"{row['dropped']:>7d}"
        )
    return "\n".join(lines)


def test_straggler_policies(benchmark, bench_scale):
    rows = benchmark.pedantic(
        _run_grid, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(_format(rows))
    by_key = {(r["method"], r["policy"]): r for r in rows}
    for method in ("fedtiny", "prunefl"):
        sync = by_key[(method, "sync")]
        deadline = by_key[(method, "deadline")]
        asynchronous = by_key[(method, "async")]
        assert sync["sim_seconds"] > 0
        # Cutting stragglers can't lengthen the round; buffered async
        # closes before the slowest upload. The 10% slack absorbs the
        # slightly different density trajectories partial aggregation
        # produces at reduced scale.
        assert deadline["sim_seconds"] <= sync["sim_seconds"] * 1.10
        assert asynchronous["sim_seconds"] <= sync["sim_seconds"] * 1.10
