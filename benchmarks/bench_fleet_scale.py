"""Micro-benchmarks of the virtual-fleet subsystem.

Times the three phases the fleet-scale story hangs on: building a
100k-population context on the virtual backend (must be O(1), not
O(population)), materializing a single client out of the directory,
and streaming 10k packed-size uploads through the hierarchical
aggregator. The full population x cohort grid with machine-readable
acceptance ratios comes from ``python -m repro bench --suite
fleet_scale`` (see ``repro.perf.fleet_scale``).
"""

import pytest

from repro.perf.fleet_scale import _AggregateCell, _Cell

_POPULATION = 100_000
_COHORT = 64
_AGG_COHORT = 10_000


@pytest.fixture(scope="module")
def cell():
    cell = _Cell(_POPULATION, _COHORT)
    cell.setup()
    yield cell
    cell.close()


@pytest.fixture(scope="module")
def agg_cell():
    return _AggregateCell(_AGG_COHORT)


def test_virtual_context_setup(benchmark, cell):
    benchmark(cell.setup)


def test_materialize_one_client(benchmark, cell):
    directory = cell.ctx.directory

    def materialize():
        directory.materialize(_POPULATION - 1)
        directory.release(_POPULATION - 1)

    benchmark(materialize)


def test_streaming_aggregate_10k(benchmark, agg_cell):
    benchmark(agg_cell.aggregate)
