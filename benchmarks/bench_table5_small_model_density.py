"""Paper Table V — small models matched to each density on CIFAR-10.

Sweeps the density grid with the small dense CNN resized per density.
The paper's shape: the small model becomes relatively stronger at the
lowest densities (it suffers no pruning damage) while FedTiny remains
the best or second-best throughout.
"""

from conftest import emit

from repro.experiments.paper import table5_small_model_densities


def test_table5_small_model_density(benchmark, bench_scale):
    output = benchmark.pedantic(
        table5_small_model_densities, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    matrix = output.data["matrix"]
    assert set(matrix) == {"synflow", "prunefl", "small_model", "fedtiny"}
    for method, per_density in matrix.items():
        assert len(per_density) == 4
        for accuracy in per_density.values():
            assert 0.0 <= accuracy <= 1.0
