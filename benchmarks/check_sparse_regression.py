#!/usr/bin/env python
"""Fail CI when a perf suite regresses against its checked-in baseline.

Compares the *speedup ratios* in a fresh benchmark record's
``summary.acceptance`` block against the checked-in baseline ratios.
Ratios (new path versus the in-process legacy reference, measured
interleaved) are stable across machines, unlike absolute step times, so
baselines do not need to be re-captured per CI runner generation. Every
perf suite (sparse compute, round loop, candidate selection) emits this
block, so one gate serves the whole CI benchmark matrix::

    python benchmarks/check_sparse_regression.py \
        BENCH_<suite>.json \
        benchmarks/baselines/<suite>_baseline.json

Exits non-zero when any tracked ratio falls more than ``TOLERANCE``
(25%) below its baseline value.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

TOLERANCE = 0.25


def _acceptance(path: Path) -> dict[str, float]:
    record = json.loads(path.read_text())
    config = record.get("config")
    if config is not None:
        print(f"{path.name}: config={config}")
    return record["summary"]["acceptance"]


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    current = _acceptance(Path(argv[1]))
    baseline = _acceptance(Path(argv[2]))
    failures = []
    for key, base_value in sorted(baseline.items()):
        value = current.get(key)
        if value is None:
            failures.append(f"{key}: missing from current run")
            continue
        floor = base_value * (1.0 - TOLERANCE)
        status = "OK" if value >= floor else "REGRESSION"
        print(
            f"{key}: current={value:.2f}x baseline={base_value:.2f}x "
            f"floor={floor:.2f}x [{status}]"
        )
        if value < floor:
            failures.append(
                f"{key}: {value:.2f}x is >{TOLERANCE:.0%} below "
                f"baseline {base_value:.2f}x"
            )
    if failures:
        print("\nbenchmark regression detected:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
