"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a
reduced scale (see ``repro.experiments.configs``). Set the
``REPRO_BENCH_SCALE`` environment variable to ``tiny`` for a smoke run
or ``bench`` (default) for the full qualitative reproduction.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


def emit(output) -> None:
    """Print a paper-style artifact under the benchmark's output."""
    print()
    print(output)
