"""Paper Fig. 5 — candidate pool size vs accuracy and communication.

The paper shows accuracy saturating beyond C* = 0.1/d while the
selection communication cost keeps growing linearly in the pool size;
this benchmark reproduces both series on VGG-11.
"""

from conftest import emit

from repro.experiments.paper import fig5_pool_size


def test_fig5_pool_size(benchmark, bench_scale):
    output = benchmark.pedantic(
        fig5_pool_size, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    comm = output.data["comm_mb"]
    for density, per_pool in comm.items():
        sizes = sorted(per_pool)
        costs = [per_pool[s] for s in sizes]
        # Communication grows monotonically with the pool size.
        assert all(a <= b * 1.001 for a, b in zip(costs, costs[1:]))
    accuracy = output.data["accuracy"]
    for per_pool in accuracy.values():
        for value in per_pool.values():
            assert 0.0 <= value <= 1.0
