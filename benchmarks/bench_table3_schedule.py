"""Paper Table III — pruning scheduling strategies.

Grid over granularity (layer / block / entire model per pruning round),
ordering (forward vs backward "(b)") and frequency. The paper finds
block-wise backward to be the best trade-off.
"""

from conftest import emit

from repro.experiments.paper import table3_schedules


def test_table3_schedules(benchmark, bench_scale):
    output = benchmark.pedantic(
        table3_schedules, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    data = output.data
    labels = set(data)
    assert {"layer", "layer (b)", "block", "block (b)", "entire"} <= labels
    for label, per_density in data.items():
        for accuracy in per_density.values():
            assert 0.0 <= accuracy <= 1.0
