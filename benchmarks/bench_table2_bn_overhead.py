"""Paper Table II — extra FLOPs of the adaptive BN selection module.

The paper's claim: with the optimal pool size the one-off selection
cost stays below (or near) the cost of a single round of sparse
training, hence negligible over hundreds of rounds.
"""

from conftest import emit

from repro.experiments.paper import table2_bn_overhead


def test_table2_bn_overhead(benchmark, bench_scale):
    output = benchmark.pedantic(
        table2_bn_overhead, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    for density, row in output.data.items():
        assert row["selection_flops"] > 0
        assert row["train_flops_per_round"] > 0
        # Selection is a bounded one-off cost: within a small constant
        # factor of one training round even at reduced scale.
        ratio = row["selection_flops"] / row["train_flops_per_round"]
        assert ratio < 30.0
