"""Paper Fig. 2 — the block partition of VGG-11 and ResNet-18.

The paper splits both models into five blocks for progressive pruning;
this benchmark prints the partition our implementation derives and
checks its structure.
"""

from conftest import emit

from repro.experiments.paper import fig2_block_partition


def test_fig2_block_partition(benchmark, bench_scale):
    output = benchmark.pedantic(
        fig2_block_partition, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    rows = output.data["rows"]
    vgg_blocks = [r for r in rows if r[0] == "vgg11"]
    resnet_blocks = [r for r in rows if r[0] == "resnet18"]
    assert len(vgg_blocks) == 5
    assert len(resnet_blocks) == 5
    # The classifier belongs to the last block in both models.
    assert "classifier" in vgg_blocks[-1][2]
    assert "fc" in resnet_blocks[-1][2]
