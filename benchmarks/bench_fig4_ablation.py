"""Paper Fig. 4 — ablation of the two FedTiny modules.

Arms: vanilla selection, adaptive BN selection only, vanilla +
progressive pruning, and full FedTiny. The paper's finding: each module
helps on its own, and the combination is best in the low-density
regime.
"""

from conftest import emit

from repro.experiments.paper import fig4_ablation


def test_fig4_ablation(benchmark, bench_scale):
    output = benchmark.pedantic(
        fig4_ablation, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    series = output.data["series"]
    assert set(series) == {
        "vanilla", "adaptive_bn_only", "vanilla+progressive", "fedtiny",
    }
    densities = sorted(series["fedtiny"])
    # Full FedTiny is at least as good as plain vanilla selection at the
    # lowest density (the regime the modules were designed for).
    low = densities[0]
    assert series["fedtiny"][low] >= series["vanilla"][low] - 0.05
