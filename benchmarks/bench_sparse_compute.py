"""Micro-benchmarks of the sparsity-aware compute engine.

Times one Conv2d forward+backward step for the three variants the perf
harness tracks — the pre-engine legacy path, the engine's dense path,
and the engine's sparse dispatch at 10% structured density — so CI's
``--benchmark-json`` output carries directly comparable rows. The
density x shape grid with machine-readable acceptance ratios comes from
``python -m repro bench`` (see ``repro.perf.sparse_compute``).
"""

import numpy as np
import pytest

from repro.nn import engine
from repro.perf.sparse_compute import ConvShape, _conv_cases

_SHAPE = ConvShape("conv_matmul_bound", 8, 64, 16, 16, 128, 3)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def test_conv_step_legacy(benchmark, rng):
    legacy_step, _ = _conv_cases(_SHAPE, 1.0, rng)
    benchmark(legacy_step)


def test_conv_step_engine_dense(benchmark, rng):
    _, engine_step = _conv_cases(_SHAPE, 1.0, rng)
    benchmark(engine_step)


def test_conv_step_engine_sparse10(benchmark, rng):
    _, engine_step = _conv_cases(_SHAPE, 0.1, rng)
    saved = engine.get_config().density_threshold
    engine.configure(density_threshold=1.0)

    def step():
        with engine.masked_weight_grads():
            engine_step()

    try:
        benchmark(step)
    finally:
        engine.configure(density_threshold=saved)
