"""Paper Fig. 3 — top-1 accuracy vs density on four datasets, ResNet-18.

The paper's qualitative claims this benchmark reproduces:

- FedTiny outperforms the baselines in the low-density regime;
- one-shot server pruning (FL-PQSU) degrades sharply as density drops;
- accuracy increases with density for every method.
"""

import numpy as np
from conftest import emit

from repro.experiments.paper import fig3_density_sweep


def test_fig3_density_sweep(benchmark, bench_scale):
    output = benchmark.pedantic(
        fig3_density_sweep, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    series = output.data["series"]

    # Structural completeness: every (dataset, method, density) cell.
    for dataset, per_method in series.items():
        for method, per_density in per_method.items():
            assert per_density, f"no results for {method} on {dataset}"
            for accuracy in per_density.values():
                assert 0.0 <= accuracy <= 1.0

    # Shape: at the lowest density FedTiny beats the one-shot
    # server-prune baseline on a majority of datasets.
    wins = 0
    for dataset, per_method in series.items():
        low = min(per_method["fedtiny"])
        if per_method["fedtiny"][low] >= per_method["fl-pqsu"][low]:
            wins += 1
    assert wins >= len(series) / 2
