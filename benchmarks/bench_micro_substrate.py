"""Micro-benchmarks of the substrate hot paths.

Unlike the paper-artifact benches these measure raw throughput of the
pieces every experiment leans on: the im2col convolution, the streaming
top-K buffer, and the BN recalibration pass. They guard against
performance regressions in the NumPy framework itself.
"""

import numpy as np
import pytest

from repro.data import Dataset
from repro.fl.bn import recalibrate_bn_statistics
from repro.nn import Conv2d
from repro.nn.models import build_model
from repro.sparse import TopKBuffer


@pytest.fixture(scope="module")
def conv_input():
    rng = np.random.default_rng(0)
    return rng.normal(size=(16, 16, 16, 16)).astype(np.float32)


def test_conv_forward_backward_throughput(benchmark, conv_input):
    conv = Conv2d(16, 32, 3, padding=1, bias=False,
                  rng=np.random.default_rng(1))
    grad = np.ones((16, 32, 16, 16), dtype=np.float32)

    def step():
        out = conv(conv_input)
        conv.zero_grad()
        conv.backward(grad)
        return out

    result = benchmark(step)
    assert result.shape == (16, 32, 16, 16)


def test_topk_buffer_chunked_throughput(benchmark):
    rng = np.random.default_rng(2)
    values = rng.normal(size=100_000)
    indices = np.arange(100_000)

    def stream():
        buffer = TopKBuffer(256)
        for start in range(0, values.size, 4096):
            buffer.push_chunk(
                indices[start : start + 4096],
                values[start : start + 4096],
            )
        return buffer

    buffer = benchmark(stream)
    assert len(buffer) == 256
    # Streaming result equals the exact top-k.
    _, got = buffer.items()
    expected = np.sort(np.abs(values))[::-1][:256]
    np.testing.assert_allclose(
        np.sort(np.abs(got))[::-1], expected.astype(np.float32), rtol=1e-6
    )


def test_bn_recalibration_throughput(benchmark):
    rng = np.random.default_rng(3)
    model = build_model("resnet18", width_multiplier=0.125, seed=4)
    data = Dataset(
        rng.normal(size=(64, 3, 16, 16)).astype(np.float32),
        rng.integers(0, 10, size=64),
    )
    stats = benchmark(recalibrate_bn_statistics, model, data, 32)
    assert len(stats) > 0
