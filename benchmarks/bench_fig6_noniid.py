"""Paper Fig. 6 — robustness to heterogeneous (non-iid) data.

Accuracy of SynFlow, PruneFL and FedTiny across Dirichlet alpha values
(lower alpha = more heterogeneous). The paper's finding: server-side
pruning degrades as heterogeneity grows, FedTiny stays best.
"""

from conftest import emit

from repro.experiments.paper import fig6_noniid


def test_fig6_noniid(benchmark, bench_scale):
    output = benchmark.pedantic(
        fig6_noniid, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    series = output.data["series"]
    assert set(series) == {"synflow", "prunefl", "fedtiny"}
    alphas = sorted(series["fedtiny"])
    for method in series:
        assert sorted(series[method]) == alphas
        for accuracy in series[method].values():
            assert 0.0 <= accuracy <= 1.0
    # FedTiny stays competitive (within noise) with the server-prune
    # baselines at the most heterogeneous setting; at paper scale it
    # wins outright, at bench scale single-seed noise is a few points.
    low = alphas[0]
    assert series["fedtiny"][low] >= min(
        series["synflow"][low], series["prunefl"][low]
    ) - 0.1
