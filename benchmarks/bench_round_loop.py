"""Micro-benchmarks of the sparse round-transport subsystem.

Times the broadcast / upload / aggregate phases of one federated round
for the legacy (pickle + allocating FedAvg) and packed (shared-memory
codec + allocation-free aggregation) pipelines at 10% density, so CI's
``--benchmark-json`` output carries directly comparable rows. The full
clients x density x model grid with machine-readable acceptance ratios
comes from ``python -m repro bench --suite round_loop`` (see
``repro.perf.round_loop``).
"""

import pytest

from repro.perf.round_loop import MODEL_GRID, _Cell

_CASE = MODEL_GRID[1]  # resnet18_w025: convnet-sized, transport-bound
_CLIENTS = 8
_DENSITY = 0.1


@pytest.fixture(scope="module")
def cell():
    cell = _Cell(_CASE, _CLIENTS, _DENSITY)
    yield cell
    cell.close()


def test_broadcast_legacy(benchmark, cell):
    benchmark(cell.legacy_broadcast)


def test_broadcast_packed(benchmark, cell):
    benchmark(cell.packed_broadcast)


def test_upload_legacy(benchmark, cell):
    benchmark(cell.legacy_upload)


def test_upload_packed(benchmark, cell):
    benchmark(cell.packed_upload)


def test_aggregate_legacy(benchmark, cell):
    benchmark(cell.legacy_aggregate)


def test_aggregate_packed(benchmark, cell):
    benchmark(cell.packed_aggregate)
