"""Paper Table IV — ResNet-18 at low density vs a dense small model.

The small three-conv CNN is parameter-matched to the pruned ResNet-18.
The paper finds the small model competitive with server-prune baselines
but behind FedTiny on most datasets.
"""

from conftest import emit

from repro.experiments.paper import table4_small_model_datasets


def test_table4_small_model(benchmark, bench_scale):
    output = benchmark.pedantic(
        table4_small_model_datasets, kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit(output)
    matrix = output.data["matrix"]
    assert set(matrix) == {"synflow", "prunefl", "small_model", "fedtiny"}
    datasets = set(matrix["fedtiny"])
    for method in matrix:
        assert set(matrix[method]) == datasets
        for accuracy in matrix[method].values():
            assert 0.0 <= accuracy <= 1.0
    # At paper scale FedTiny wins on 3 of 4 datasets; at this reduced
    # scale (10 rounds, width-0.125 model) the dense small model is a
    # strong opponent, so we assert the weaker shape that FedTiny is
    # competitive somewhere rather than dominant everywhere.
    wins = sum(
        matrix["fedtiny"][d] >= matrix["small_model"][d] for d in datasets
    )
    assert wins >= 1 or max(
        matrix["fedtiny"][d] - matrix["small_model"][d] for d in datasets
    ) > -0.3
