"""Micro-benchmarks of the candidate-selection fast path.

Times one full adaptive-BN selection pass (paper Algorithm 1) for the
reference per-(candidate, client) loop and the selection engine on a
representative install-dominated cell, so CI's ``--benchmark-json``
output carries directly comparable rows. The full pool x clients x
model grid with machine-readable acceptance ratios comes from
``python -m repro bench --suite candidate_selection`` (see
``repro.perf.candidate_selection``).
"""

import pytest

from repro.perf.candidate_selection import MODEL_GRID, _Cell

_CASE = MODEL_GRID[1]  # resnet18_w025: convnet-sized, install-heavy
_CLIENTS = 8
_POOL = 4


@pytest.fixture(scope="module")
def cell():
    cell = _Cell(_CASE, _CLIENTS, _POOL, with_process=False)
    yield cell
    assert cell.outputs_identical()
    cell.close()


def test_selection_reference(benchmark, cell):
    benchmark.pedantic(cell.reference, rounds=3, iterations=1)


def test_selection_fast(benchmark, cell):
    benchmark.pedantic(cell.fast, rounds=3, iterations=1)
