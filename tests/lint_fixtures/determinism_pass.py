"""Passing fixture for ``determinism``: seeded generators, sorted sets."""

import numpy as np


def draw_noise(rng: np.random.Generator, shape):
    return rng.random(shape)


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def derive_rng(seed: int, round_index: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence([seed, round_index])
    )


def participant_order(clients: set) -> list:
    return sorted(clients)
