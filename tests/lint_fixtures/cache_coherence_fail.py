"""Failing fixture for ``cache-coherence``: view writes, no bump."""

import numpy as np


def overwrite_rows(param, rows, update):
    param.data[rows] = update  # subscript store: setter never fires


def masked_multiply(param, float_mask):
    np.multiply(param.data, float_mask, out=param.data)


def zero_mask(param):
    param.mask.fill(0.0)  # in-place ndarray method


def copy_state(param, source):
    np.copyto(param.data, source)
