"""Failing fixture for ``shm-lifecycle``: leaked and unsafe releases."""

from multiprocessing.shared_memory import SharedMemory


def leak_created(nbytes):
    segment = SharedMemory(create=True, size=nbytes)
    segment.buf[0] = 1  # never closed or unlinked


def close_outside_finally(name):
    segment = SharedMemory(name=name)
    value = bytes(segment.buf[:4])
    segment.close()  # skipped if the read above raises
    return value


class LeakyArena:
    def attach(self, name):
        self.segment = SharedMemory(name=name)
