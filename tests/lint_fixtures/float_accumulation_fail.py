"""Failing fixture for ``float-accumulation``."""
# repro-lint: golden-guarded

import math

import numpy as np


def client_total(values):
    return sum(values)  # builtin sum reassociates


def weighted_total(values):
    return np.sum(values)  # pairwise summation


def exact_total(values):
    return math.fsum(values)  # exact rounding differs from the recipe
