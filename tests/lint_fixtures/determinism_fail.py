"""Failing fixture for ``determinism``: every pattern the rule flags."""

import random
import time

import numpy as np


def draw_noise(shape):
    return np.random.rand(*shape)  # hidden global numpy stream


def make_entropy_rng():
    return np.random.default_rng()  # unseeded: fresh OS entropy


def make_time_rng():
    return np.random.default_rng(time.time_ns())  # seed differs per run


def shuffle_clients(clients):
    random.shuffle(clients)  # stdlib global RNG
    return clients


def participant_order():
    return [client for client in {"a", "b", "c"}]  # set iteration
