"""Passing fixture for ``registry-completeness``: every exempt shape."""

from abc import abstractmethod

from repro.fl.executor import ClientExecutor, register_executor
from repro.fl.policies import RoundPolicy
from repro.methods import FederatedMethod, register_method


class DirectExecutor(ClientExecutor):
    def run_round(self, ctx, clients, work):
        return []


register_executor("direct", DirectExecutor)


class _PrivateBase(ClientExecutor):
    """Private intermediate bases are exempt by convention."""


class AbstractPolicy(RoundPolicy):
    @abstractmethod
    def close_round(self, uploads):
        ...


class BuiltMethod(FederatedMethod):
    def run(self, ctx):
        return None


def _build_built_method(config):
    return BuiltMethod()


@register_method("built")
def _built_builder(config):
    # Reaches BuiltMethod through a helper: the catalog-builder idiom.
    return _build_built_method(config)
