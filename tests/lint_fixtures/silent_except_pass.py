"""Passing fixture for ``silent-except``: every handler surfaces."""

import logging

from repro.fl.faults import FailureRecord

_LOG = logging.getLogger(__name__)


def reraises(payload):
    try:
        return payload.decode()
    except UnicodeDecodeError as exc:
        raise ValueError("bad payload") from exc


def logs_and_falls_back(table, key):
    try:
        return table[key]
    except KeyError:
        _LOG.warning("missing key %r", key)
        return None


def records_failure(fn, records):
    try:
        fn()
    except RuntimeError as exc:
        records.append(FailureRecord(0, 0, 0, "client_exception",
                                     "retried", detail=str(exc)))


def appends_to_error_list(fn, result):
    try:
        fn()
    except OSError as exc:
        result.errors.append(str(exc))


def prints_to_cli(path):
    try:
        return open(path).read()
    except OSError as exc:
        print(f"error: {exc}")
        return ""


def suppressed_with_reason(shm):
    try:
        shm.unlink()
    # repro-lint: allow[silent-except] -- best-effort cleanup: the
    # segment may already be gone.
    except FileNotFoundError:
        pass
