"""Failing fixture for ``engine-mode``: forward loops with caches on."""


def evaluate_accuracy(model, batches):
    correct = 0
    for images, labels in batches:
        logits = model(images)  # records backward caches per batch
        correct += int((logits.argmax(axis=1) == labels).mean())
    return correct


def recalibrate_bn_stats(self, loader):
    for images, _ in loader:
        self.model(images)
