"""Failing fixture for ``registry-completeness``.

``OrphanExecutor`` is a concrete tracked subclass that never reaches a
registration site, and the name ``"twice"`` is registered twice for the
same registry.
"""

from repro.fl.executor import ClientExecutor, register_executor


class OrphanExecutor(ClientExecutor):
    def run_round(self, ctx, clients, work):
        return []


class FirstExecutor(ClientExecutor):
    def run_round(self, ctx, clients, work):
        return []


class SecondExecutor(ClientExecutor):
    def run_round(self, ctx, clients, work):
        return []


register_executor("twice", FirstExecutor)
register_executor("twice", SecondExecutor)
