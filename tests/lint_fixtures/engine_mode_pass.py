"""Passing fixture for ``engine-mode``: every exempt shape."""

from repro.nn import engine


def evaluate_accuracy(model, batches):
    correct = 0
    with engine.inference_mode():
        for images, labels in batches:
            logits = model(images)
            correct += int((logits.argmax(axis=1) == labels).mean())
    return correct


def evaluate_all(loaders):
    # Pure delegator: the callee owns the inference_mode context.
    return [evaluate_one(loader) for loader in loaders]


def eval_growth_signal(model, batch, loss_fn):
    # Needs dense gradients (paper Eq. 6): a backward pass, not inference.
    logits = model(batch)
    loss_fn.backward(logits)
    return logits


def train_step(model, batch):
    logits = model(batch)  # name does not promise inference-only
    return logits
