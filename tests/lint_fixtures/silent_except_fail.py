"""Failing fixture for ``silent-except``: handlers that swallow."""


def bare_pass(payload):
    try:
        return payload.decode()
    except UnicodeDecodeError:
        pass


def silent_fallback(table, key):
    try:
        return table[key]
    except KeyError:
        return None


def swallow_everything(fn):
    try:
        fn()
    except BaseException:
        result = "oops"
    return result


def tuple_of_types(path):
    try:
        return open(path).read()
    except (OSError, ValueError):
        return ""
