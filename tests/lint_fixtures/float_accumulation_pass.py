"""Passing fixture for ``float-accumulation``: the explicit recipe."""
# repro-lint: golden-guarded

import numpy as np


def client_total(values):
    total = np.float64(0.0)
    for value in values:
        total += np.float64(value)
    return np.float32(total)


def weighted_total(values, weights):
    return float(np.dot(weights, values))  # fixed-order BLAS reduction
