"""Passing fixture for ``shm-lifecycle``: every release pattern."""

from multiprocessing.shared_memory import SharedMemory


def roundtrip(nbytes):
    segment = SharedMemory(create=True, size=nbytes)
    try:
        segment.buf[0] = 1
        return bytes(segment.buf[:1])
    finally:
        segment.close()
        segment.unlink()


def open_for_caller(name):
    segment = SharedMemory(name=name)
    return segment  # ownership transfers to the caller


class Arena:
    def attach(self, name):
        self.segment = SharedMemory(name=name)

    def release(self):
        self.segment.close()
