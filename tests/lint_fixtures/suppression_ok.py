"""Suppression fixture: valid inline and standalone annotations."""

import numpy as np


def inline_jitter(shape):
    return np.random.rand(*shape)  # repro-lint: allow[determinism] -- fixture exercising inline suppression.


def standalone_jitter(shape):
    # repro-lint: allow[determinism] -- fixture exercising the
    # standalone-comment form targeting the next code line.
    return np.random.rand(*shape)
