"""Suppression fixture: an annotation without its mandatory reason."""

import numpy as np


def jitter(shape):
    return np.random.rand(*shape)  # repro-lint: allow[determinism]
