"""Passing fixture for ``cache-coherence``: bumped or setter-routed."""

import numpy as np


def overwrite_rows(param, rows, update):
    param.data[rows] = update
    param.bump_version()


def masked_multiply(param, float_mask):
    np.multiply(param.data, float_mask, out=param.data)
    param.bump_version()


def reassign(param, update):
    param.data = update  # plain assignment routes through the setter


def workspace_write(buffer, values):
    np.copyto(buffer, values)  # plain ndarray, not versioned storage
