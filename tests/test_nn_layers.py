"""Gradient and behaviour tests for every layer."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    check_module_gradients,
)


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 8, 4, 4)

    def test_gradients(self, rng):
        conv = Conv2d(2, 3, 3, stride=1, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        check_module_gradients(conv, x, rng)

    def test_gradients_strided_no_bias(self, rng):
        conv = Conv2d(2, 4, 3, stride=2, padding=1, bias=False, rng=rng)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        check_module_gradients(conv, x, rng)

    def test_masked_forward_uses_effective_weight(self, rng):
        conv = Conv2d(1, 1, 1, bias=False, rng=rng)
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        dense_out = conv(x)
        conv.weight.set_mask(np.zeros_like(conv.weight.data))
        masked_out = conv(x)
        assert not np.allclose(dense_out, 0.0)
        np.testing.assert_array_equal(masked_out, 0.0)

    def test_masked_gradient_is_growth_signal(self, rng):
        """Gradient at pruned positions must be nonzero (RigL signal)."""
        conv = Conv2d(2, 2, 3, padding=1, bias=False, rng=rng)
        conv.weight.set_mask(np.zeros_like(conv.weight.data))
        x = rng.normal(size=(2, 2, 4, 4)).astype(np.float32)
        out = conv(x)
        conv.backward(np.ones_like(out))
        assert np.abs(conv.weight.grad).sum() > 0.0

    def test_wrong_channels_raises(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            conv(rng.normal(size=(1, 2, 8, 8)).astype(np.float32))

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2d(1, 1, 1, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 1, 1), dtype=np.float32))

    def test_weight_is_prunable_bias_is_not(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng)
        assert conv.weight.prunable
        assert not conv.bias.prunable


class TestLinear:
    def test_output_shape(self, rng):
        linear = Linear(5, 3, rng=rng)
        out = linear(rng.normal(size=(4, 5)).astype(np.float32))
        assert out.shape == (4, 3)

    def test_gradients(self, rng):
        linear = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        check_module_gradients(linear, x, rng)

    def test_matches_manual_affine(self, rng):
        linear = Linear(3, 2, rng=rng)
        x = rng.normal(size=(2, 3)).astype(np.float32)
        expected = x @ linear.weight.data.T + linear.bias.data
        np.testing.assert_allclose(linear(x), expected, rtol=1e-6)

    def test_wrong_features_raises(self, rng):
        linear = Linear(5, 2, rng=rng)
        with pytest.raises(ValueError):
            linear(rng.normal(size=(2, 4)).astype(np.float32))


class TestBatchNorm2d:
    def test_training_normalizes_batch(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5)).astype(
            np.float32
        )
        out = bn(x)
        assert abs(float(out.mean())) < 1e-4
        assert float(out.var()) == pytest.approx(1.0, abs=1e-2)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=1.0, size=(16, 2, 4, 4)).astype(np.float32)
        bn(x)
        batch_mean = x.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(
            bn.running_mean, 0.5 * 0.0 + 0.5 * batch_mean, rtol=1e-5
        )

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        bn.set_stats(
            np.array([1.0, -1.0], dtype=np.float32),
            np.array([4.0, 0.25], dtype=np.float32),
        )
        bn.eval()
        x = np.zeros((1, 2, 1, 1), dtype=np.float32)
        out = bn(x)
        expected = (0.0 - np.array([1.0, -1.0])) / np.sqrt(
            np.array([4.0, 0.25]) + bn.eps
        )
        np.testing.assert_allclose(out[0, :, 0, 0], expected, rtol=1e-4)

    def test_gradients_training_mode(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        check_module_gradients(bn, x, rng)

    def test_gradients_eval_mode(self, rng):
        bn = BatchNorm2d(3)
        bn.set_stats(
            rng.normal(size=3).astype(np.float32),
            (rng.random(3) + 0.5).astype(np.float32),
        )
        bn.eval()
        x = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        check_module_gradients(bn, x, rng)

    def test_get_set_stats_roundtrip(self):
        bn = BatchNorm2d(3)
        mean = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        var = np.array([0.5, 1.5, 2.5], dtype=np.float32)
        bn.set_stats(mean, var)
        got_mean, got_var = bn.get_stats()
        np.testing.assert_array_equal(got_mean, mean)
        np.testing.assert_array_equal(got_var, var)

    def test_set_stats_wrong_shape_raises(self):
        bn = BatchNorm2d(3)
        with pytest.raises(ValueError):
            bn.set_stats(np.zeros(2), np.ones(2))

    def test_reset_stats(self, rng):
        bn = BatchNorm2d(2)
        bn(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        bn.reset_stats()
        np.testing.assert_array_equal(bn.running_mean, 0.0)
        np.testing.assert_array_equal(bn.running_var, 1.0)

    def test_bad_momentum_raises(self):
        with pytest.raises(ValueError):
            BatchNorm2d(2, momentum=1.0)

    def test_gamma_beta_not_prunable(self):
        bn = BatchNorm2d(2)
        assert not bn.gamma.prunable
        assert not bn.beta.prunable


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(relu(x), [[0.0, 0.0, 2.0]])

    def test_gradients(self, rng):
        relu = ReLU()
        # Keep inputs away from the kink at zero.
        x = rng.choice([-1.0, 1.0], size=(3, 4)).astype(np.float32)
        x *= 1.0 + rng.random((3, 4)).astype(np.float32)
        check_module_gradients(relu, x, rng)


class TestMaxPool2d:
    def test_forward(self):
        pool = MaxPool2d(2, 2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool(x)
        np.testing.assert_array_equal(
            out[0, 0], [[5.0, 7.0], [13.0, 15.0]]
        )

    def test_gradients(self, rng):
        pool = MaxPool2d(2, 2)
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        check_module_gradients(pool, x, rng)

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2d(2, 2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        pool(x)
        grad = pool.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        expected = np.zeros((1, 1, 4, 4), dtype=np.float32)
        expected[0, 0, 1, 1] = 1.0
        expected[0, 0, 1, 3] = 1.0
        expected[0, 0, 3, 1] = 1.0
        expected[0, 0, 3, 3] = 1.0
        np.testing.assert_array_equal(grad, expected)


class TestGlobalAvgPool2d:
    def test_forward(self, rng):
        pool = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(pool(x), x.mean(axis=(2, 3)), rtol=1e-6)

    def test_gradients(self, rng):
        pool = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 3, 3)).astype(np.float32)
        check_module_gradients(pool, x, rng)


class TestContainers:
    def test_sequential_forward_backward(self, rng):
        seq = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        x = rng.normal(size=(3, 4)).astype(np.float32)
        check_module_gradients(seq, x, rng)

    def test_sequential_indexing_and_len(self, rng):
        layers = [Linear(2, 2, rng=rng), ReLU()]
        seq = Sequential(*layers)
        assert len(seq) == 2
        assert seq[0] is layers[0]
        assert list(seq) == layers

    def test_sequential_append(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng))
        seq.append(ReLU())
        assert len(seq) == 2

    def test_flatten_roundtrip(self, rng):
        flat = Flatten()
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        out = flat(x)
        assert out.shape == (2, 48)
        grad = flat.backward(out)
        assert grad.shape == x.shape

    def test_identity(self, rng):
        ident = Identity()
        x = rng.normal(size=(2, 3)).astype(np.float32)
        np.testing.assert_array_equal(ident(x), x)
        np.testing.assert_array_equal(ident.backward(x), x)
