"""Tests for datasets, synthetic generators and transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Dataset,
    SyntheticSpec,
    augment_batch,
    build_dataset,
    channel_statistics,
    cifar10_like,
    cifar100_like,
    cinic10_like,
    generate,
    normalize,
    random_crop_with_padding,
    random_horizontal_flip,
    svhn_like,
)


class TestDataset:
    def _make(self, n=20, classes=4, seed=0):
        rng = np.random.default_rng(seed)
        return Dataset(
            rng.normal(size=(n, 3, 4, 4)).astype(np.float32),
            rng.integers(0, classes, size=n),
        )

    def test_len_and_getitem(self):
        ds = self._make()
        assert len(ds) == 20
        image, label = ds[3]
        assert image.shape == (3, 4, 4)
        assert isinstance(label, int)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 4, 4)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 1, 4, 4)), np.zeros(4, dtype=int))

    def test_subset(self):
        ds = self._make()
        sub = ds.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, ds.labels[[0, 5, 7]])

    def test_sample_fraction_size(self):
        ds = self._make(n=30)
        rng = np.random.default_rng(0)
        assert len(ds.sample_fraction(0.1, rng)) == 3
        assert len(ds.sample_fraction(0.01, rng)) == 1  # at least one

    def test_sample_fraction_invalid(self):
        ds = self._make()
        with pytest.raises(ValueError):
            ds.sample_fraction(0.0, np.random.default_rng(0))

    def test_split_disjoint_and_complete(self):
        ds = self._make(n=25)
        rng = np.random.default_rng(1)
        first, second = ds.split(0.4, rng)
        assert len(first) + len(second) == 25
        assert len(first) == 10

    def test_batches_cover_everything(self):
        ds = self._make(n=23)
        seen = 0
        for images, labels in ds.batches(8):
            assert images.shape[0] == labels.shape[0]
            seen += len(labels)
        assert seen == 23

    def test_batches_drop_last(self):
        ds = self._make(n=23)
        sizes = [len(lab) for _, lab in ds.batches(8, drop_last=True)]
        assert sizes == [8, 8]

    def test_batches_shuffled_differ(self):
        ds = self._make(n=16)
        a = next(iter(ds.batches(16, rng=np.random.default_rng(0))))[1]
        b = next(iter(ds.batches(16)))[1]
        assert not np.array_equal(a, b)

    def test_first_batch_deterministic(self):
        ds = self._make()
        images, labels = ds.first_batch(5)
        np.testing.assert_array_equal(labels, ds.labels[:5])

    def test_class_counts(self):
        ds = Dataset(
            np.zeros((4, 1, 2, 2), dtype=np.float32),
            np.array([0, 0, 2, 1]),
        )
        np.testing.assert_array_equal(ds.class_counts(4), [2, 1, 1, 0])

    def test_invalid_batch_size(self):
        ds = self._make()
        with pytest.raises(ValueError):
            list(ds.batches(0))


class TestSynthetic:
    def test_generate_shapes(self):
        spec = SyntheticSpec(
            name="t", num_classes=3, num_train=30, num_test=12,
            image_size=8, seed=0,
        )
        train, test = generate(spec)
        assert train.images.shape == (30, 3, 8, 8)
        assert test.images.shape == (12, 3, 8, 8)
        assert train.labels.max() < 3

    def test_deterministic(self):
        spec = SyntheticSpec(
            name="t", num_classes=3, num_train=20, num_test=5, seed=9,
            image_size=8,
        )
        a, _ = generate(spec)
        b, _ = generate(spec)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        base = dict(name="t", num_classes=3, num_train=20, num_test=5,
                    image_size=8)
        a, _ = generate(SyntheticSpec(seed=0, **base))
        b, _ = generate(SyntheticSpec(seed=1, **base))
        assert not np.array_equal(a.images, b.images)

    def test_signal_learnable(self):
        """A nearest-prototype classifier must beat chance by a lot."""
        spec = SyntheticSpec(
            name="t", num_classes=4, num_train=200, num_test=100,
            image_size=8, noise=0.5, modes_per_class=1, seed=2,
        )
        train, test = generate(spec)
        prototypes = np.stack(
            [
                train.images[train.labels == c].mean(axis=0)
                for c in range(4)
            ]
        )
        flat_test = test.images.reshape(len(test), -1)
        flat_proto = prototypes.reshape(4, -1)
        distances = (
            (flat_test[:, None, :] - flat_proto[None, :, :]) ** 2
        ).sum(-1)
        accuracy = (distances.argmin(1) == test.labels).mean()
        assert accuracy > 0.8

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", num_classes=1, num_train=10, num_test=5)
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", num_classes=5, num_train=3, num_test=5)
        with pytest.raises(ValueError):
            SyntheticSpec(
                name="x", num_classes=3, num_train=30, num_test=5, noise=-1.0
            )

    def test_named_builders(self):
        for builder, classes in [
            (cifar10_like, 10),
            (cifar100_like, 100),
            (cinic10_like, 10),
            (svhn_like, 10),
        ]:
            train, test = builder(num_train=classes * 3, num_test=20,
                                  image_size=8)
            assert train.num_classes <= classes
            assert train.images.shape[1:] == (3, 8, 8)

    def test_build_dataset_by_name(self):
        train, test = build_dataset("cifar10", num_train=40, num_test=10,
                                    image_size=8)
        assert len(train) == 40
        with pytest.raises(KeyError):
            build_dataset("imagenet")

    def test_difficulty_ordering_noise(self):
        """CINIC-like is noisier than SVHN-like (matches real datasets)."""
        svhn, _ = svhn_like(num_train=100, num_test=10, image_size=8)
        cinic, _ = cinic10_like(num_train=100, num_test=10, image_size=8)
        assert cinic.images.std() > svhn.images.std()


class TestTransforms:
    def test_channel_statistics(self, rng):
        images = rng.normal(
            loc=[1.0, 2.0, 3.0], size=(50, 4, 4, 3)
        ).transpose(0, 3, 1, 2).astype(np.float32)
        mean, std = channel_statistics(images)
        np.testing.assert_allclose(mean, [1.0, 2.0, 3.0], atol=0.2)

    def test_normalize(self, rng):
        ds = Dataset(
            rng.normal(loc=5.0, size=(30, 3, 4, 4)).astype(np.float32),
            rng.integers(0, 2, size=30),
        )
        mean, std = channel_statistics(ds.images)
        normed = normalize(ds, mean, std)
        assert abs(float(normed.images.mean())) < 1e-4

    def test_flip_preserves_content(self, rng):
        images = rng.normal(size=(10, 3, 4, 4)).astype(np.float32)
        flipped = random_horizontal_flip(images, np.random.default_rng(0),
                                         probability=1.0)
        np.testing.assert_array_equal(flipped, images[:, :, :, ::-1])

    def test_flip_probability_zero(self, rng):
        images = rng.normal(size=(5, 3, 4, 4)).astype(np.float32)
        out = random_horizontal_flip(images, np.random.default_rng(0),
                                     probability=0.0)
        np.testing.assert_array_equal(out, images)

    def test_crop_preserves_shape(self, rng):
        images = rng.normal(size=(6, 3, 8, 8)).astype(np.float32)
        out = random_crop_with_padding(images, np.random.default_rng(0))
        assert out.shape == images.shape

    def test_augment_batch_shape(self, rng):
        images = rng.normal(size=(6, 3, 8, 8)).astype(np.float32)
        out = augment_batch(images, np.random.default_rng(0))
        assert out.shape == images.shape

    @settings(max_examples=20, deadline=None)
    @given(padding=st.integers(1, 3))
    def test_crop_values_come_from_padded_input(self, padding):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(2, 1, 6, 6)).astype(np.float32)
        out = random_crop_with_padding(
            images, np.random.default_rng(1), padding=padding
        )
        # Reflect-padding introduces no new values.
        assert set(np.round(out.reshape(-1), 5)) <= set(
            np.round(images.reshape(-1), 5)
        )
