"""Tests for SGD (masked updates), LR schedules and cross-entropy."""

import math

import numpy as np
import pytest

from repro.nn import (
    ConstantLR,
    CosineLR,
    CrossEntropyLoss,
    Linear,
    SGD,
    StepLR,
    numerical_gradient,
)


def _make_linear(seed=0):
    return Linear(4, 3, rng=np.random.default_rng(seed))


class TestSGD:
    def test_plain_step(self):
        layer = _make_linear()
        before = layer.weight.data.copy()
        layer.weight.grad += 1.0
        SGD(layer, lr=0.1).step()
        np.testing.assert_allclose(layer.weight.data, before - 0.1,
                                   rtol=1e-6)

    def test_masked_update_preserves_pruned_zeros(self):
        layer = _make_linear()
        mask = np.zeros_like(layer.weight.data)
        mask.reshape(-1)[::2] = 1.0
        layer.weight.set_mask(mask)
        layer.weight.apply_mask()
        layer.weight.grad += 1.0  # dense gradient (growth signal)
        opt = SGD(layer, lr=0.5, momentum=0.9, weight_decay=1e-2)
        for _ in range(5):
            opt.step()
        pruned = layer.weight.data[mask == 0]
        np.testing.assert_array_equal(pruned, 0.0)

    def test_momentum_accumulates(self):
        layer = _make_linear()
        before = layer.weight.data.copy()
        opt = SGD(layer, lr=1.0, momentum=0.5)
        layer.weight.grad += 1.0
        opt.step()  # velocity = 1
        layer.weight.grad[:] = 1.0
        opt.step()  # velocity = 1.5
        np.testing.assert_allclose(
            layer.weight.data, before - 1.0 - 1.5, rtol=1e-6
        )

    def test_weight_decay(self):
        layer = _make_linear()
        before = layer.weight.data.copy()
        opt = SGD(layer, lr=0.1, weight_decay=0.5)
        opt.step()  # grad is zero, only decay applies
        np.testing.assert_allclose(
            layer.weight.data, before * (1 - 0.1 * 0.5), rtol=1e-6
        )

    def test_velocity_reset_on_mask_change(self):
        layer = _make_linear()
        opt = SGD(layer, lr=0.1, momentum=0.9)
        layer.weight.grad += 1.0
        opt.step()
        opt.reset_velocity()
        assert not opt._velocity

    def test_invalid_hyperparams_raise(self):
        layer = _make_linear()
        with pytest.raises(ValueError):
            SGD(layer, lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD(layer, lr=0.1, weight_decay=-1.0)


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.3)
        assert sched.lr(0) == sched.lr(100) == 0.3

    def test_constant_invalid(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_cosine_endpoints(self):
        sched = CosineLR(1.0, total_steps=10, lr_min=0.1)
        assert sched.lr(0) == pytest.approx(1.0)
        assert sched.lr(10) == pytest.approx(0.1)
        assert sched.lr(5) == pytest.approx(0.55)

    def test_cosine_clamps_beyond_total(self):
        sched = CosineLR(1.0, total_steps=10)
        assert sched.lr(50) == pytest.approx(0.0, abs=1e-9)

    def test_cosine_monotone_decreasing(self):
        sched = CosineLR(1.0, total_steps=20)
        values = [sched.lr(t) for t in range(21)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_step_lr(self):
        sched = StepLR(1.0, step_size=3, gamma=0.1)
        assert sched.lr(0) == 1.0
        assert sched.lr(2) == 1.0
        assert sched.lr(3) == pytest.approx(0.1)
        assert sched.lr(6) == pytest.approx(0.01)

    def test_sgd_uses_schedule(self):
        layer = _make_linear()
        opt = SGD(layer, lr=StepLR(1.0, step_size=1, gamma=0.5))
        assert opt.current_lr == 1.0
        opt.step()
        assert opt.current_lr == 0.5


class TestCrossEntropyLoss:
    def test_uniform_logits_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 10), dtype=np.float32)
        labels = np.arange(4)
        assert loss_fn(logits, labels) == pytest.approx(math.log(10), rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.full((2, 3), -50.0, dtype=np.float32)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        assert loss_fn(logits, np.array([1, 2])) < 1e-6

    def test_gradient_matches_numeric(self, rng):
        loss_fn = CrossEntropyLoss()
        logits = rng.normal(size=(5, 4)).astype(np.float64)
        labels = rng.integers(0, 4, size=5)

        loss_fn(logits, labels)
        analytic = loss_fn.backward()
        numeric = numerical_gradient(
            lambda: loss_fn(logits, labels), logits, eps=1e-5
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss_fn = CrossEntropyLoss()
        logits = rng.normal(size=(3, 5)).astype(np.float32)
        loss_fn(logits, np.array([0, 1, 2]))
        grad = loss_fn.backward()
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_batch_mismatch_raises(self):
        loss_fn = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss_fn(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()
