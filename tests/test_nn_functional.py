"""Unit tests for repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(8, 2, 2, 0) == 4

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        col = F.im2col(x, 3, 3, 1, 1)
        assert col.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_identity_kernel(self, rng):
        """A 1x1 kernel with stride 1 is a plain reshape."""
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        col = F.im2col(x, 1, 1, 1, 0)
        expected = x.transpose(0, 2, 3, 1).reshape(-1, 4)
        np.testing.assert_array_equal(col, expected)

    def test_matches_naive_convolution(self, rng):
        """im2col @ w == explicit nested-loop convolution."""
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        col = F.im2col(x, 3, 3, 1, 1)
        out = (col @ w.reshape(3, -1).T).reshape(1, 6, 6, 3)
        out = out.transpose(0, 3, 1, 2)

        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((1, 3, 6, 6), dtype=np.float32)
        for oc in range(3):
            for i in range(6):
                for j in range(6):
                    patch = padded[0, :, i : i + 3, j : j + 3]
                    naive[0, oc, i, j] = (patch * w[oc]).sum()
        np.testing.assert_allclose(out, naive, rtol=1e-4, atol=1e-5)

    def test_stride_two(self, rng):
        x = rng.normal(size=(1, 1, 8, 8)).astype(np.float32)
        col = F.im2col(x, 2, 2, 2, 0)
        assert col.shape == (16, 4)
        # First patch is the top-left 2x2 block.
        np.testing.assert_array_equal(col[0], x[0, 0, :2, :2].reshape(-1))


class TestCol2Im:
    def test_adjoint_property(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — col2im is the exact adjoint."""
        x = rng.normal(size=(2, 3, 7, 7)).astype(np.float64)
        col = F.im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=col.shape).astype(np.float64)
        lhs = float((col * y).sum())
        back = F.col2im(y, (2, 3, 7, 7), 3, 3, 2, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 1),
        size=st.integers(4, 9),
    )
    def test_adjoint_property_randomized(self, kernel, stride, pad, size):
        if size + 2 * pad < kernel:
            return
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, size, size))
        col = F.im2col(x, kernel, kernel, stride, pad)
        y = rng.normal(size=col.shape)
        back = F.col2im(y, x.shape, kernel, kernel, stride, pad)
        assert float((col * y).sum()) == pytest.approx(
            float((x * back).sum()), rel=1e-8
        )


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(5, 7)).astype(np.float32)
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            F.softmax(logits), F.softmax(logits + 100.0), rtol=1e-6
        )

    def test_large_values_stable(self):
        logits = np.array([[1e4, 0.0, -1e4]])
        probs = F.softmax(logits)
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self, rng):
        logits = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            F.log_softmax(logits), np.log(F.softmax(logits)), atol=1e-6
        )


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)
