"""Tests for Client, Server, CommTracker and the federated context."""

import numpy as np
import pytest

from repro.data import Dataset, SyntheticSpec, generate
from repro.fl import Client, CommTracker, FLConfig, FederatedContext, Server
from repro.nn.models import build_model
from repro.pruning import magnitude_mask_uniform
from repro.sparse import MaskSet, prunable_parameters


@pytest.fixture
def fl_setup():
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=200, num_test=60,
            image_size=8, noise=0.4, modes_per_class=1, seed=5,
        )
    )
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=2
    )
    config = FLConfig(
        num_clients=3, rounds=2, local_epochs=1, batch_size=16,
        lr=0.05, dirichlet_alpha=0.5, seed=0,
    )
    ctx = FederatedContext(model, train, test, config,
                           dataset_name="unit", model_name="resnet18")
    return ctx


class TestClient:
    def _client(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        data = Dataset(
            rng.normal(size=(n, 3, 8, 8)).astype(np.float32),
            rng.integers(0, 4, size=n),
        )
        return Client(0, data, dev_fraction=0.2, seed=seed)

    def test_dev_split_size(self):
        client = self._client(n=50)
        assert client.num_dev_samples == 10
        assert client.num_samples == 50

    def test_empty_data_raises(self):
        empty = Dataset(
            np.zeros((0, 3, 8, 8), dtype=np.float32),
            np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            Client(0, empty)

    def test_train_returns_state_and_iterations(self, fl_setup):
        ctx = fl_setup
        client = ctx.clients[0]
        ctx.server.load_into_model()
        result = client.train(ctx.model, epochs=1, batch_size=16, lr=0.05)
        assert result.num_iterations >= 1
        assert result.num_samples == client.num_samples
        assert "buffer::stem_bn.running_mean" in result.state

    def test_train_respects_masks(self, fl_setup):
        ctx = fl_setup
        masks = magnitude_mask_uniform(ctx.model, 0.2)
        ctx.install_masks(masks)
        ctx.server.load_into_model()
        client = ctx.clients[0]
        result = client.train(ctx.model, epochs=1, batch_size=16, lr=0.1)
        for name in masks:
            values = result.state[name][~masks[name]]
            np.testing.assert_array_equal(values, 0.0)

    def test_topk_gradients_only_pruned_positions(self, fl_setup):
        ctx = fl_setup
        masks = magnitude_mask_uniform(ctx.model, 0.3)
        ctx.install_masks(masks)
        ctx.server.load_into_model()
        client = ctx.clients[0]
        layer = "fc.weight"
        report = client.compute_topk_pruned_gradients(
            ctx.model, {layer: 5}, batch_size=16
        )
        indices, values = report[layer]
        assert len(indices) <= 5
        mask_flat = masks[layer].reshape(-1)
        assert not mask_flat[indices].any()  # all reported are pruned

    def test_topk_gradients_zero_count_skipped(self, fl_setup):
        ctx = fl_setup
        ctx.install_masks(magnitude_mask_uniform(ctx.model, 0.3))
        ctx.server.load_into_model()
        report = ctx.clients[0].compute_topk_pruned_gradients(
            ctx.model, {"fc.weight": 0}, batch_size=8
        )
        assert report == {}

    def test_topk_gradients_unmasked_layer_raises(self, fl_setup):
        ctx = fl_setup  # dense masks: Parameter.mask is all ones, fine
        ctx.server.load_into_model()
        # Remove the mask entirely to trigger the error path.
        dict(prunable_parameters(ctx.model))["fc.weight"].mask = None
        with pytest.raises(ValueError):
            ctx.clients[0].compute_topk_pruned_gradients(
                ctx.model, {"fc.weight": 3}, batch_size=8
            )

    def test_dense_gradients_all_layers(self, fl_setup):
        ctx = fl_setup
        ctx.server.load_into_model()
        grads = ctx.clients[0].compute_dense_gradients(ctx.model, 16)
        names = {n for n, _ in prunable_parameters(ctx.model)}
        assert set(grads) == names

    def test_evaluate_candidate_loss_positive(self, fl_setup):
        ctx = fl_setup
        ctx.server.load_into_model()
        loss = ctx.clients[0].evaluate_candidate_loss(ctx.model)
        assert loss > 0.0

    def test_train_validation(self, fl_setup):
        ctx = fl_setup
        with pytest.raises(ValueError):
            ctx.clients[0].train(ctx.model, epochs=0, batch_size=8, lr=0.1)


class TestServer:
    def test_masks_applied_on_init(self, tiny_resnet):
        masks = magnitude_mask_uniform(tiny_resnet, 0.5)
        server = Server(tiny_resnet, masks)
        assert server.density == pytest.approx(0.5, abs=0.02)
        for name, param in prunable_parameters(tiny_resnet):
            assert param.mask is not None

    def test_aggregate_updates_state(self, tiny_resnet):
        server = Server(tiny_resnet)
        state_a = {k: v + 1.0 for k, v in server.state.items()}
        state_b = {k: v - 1.0 for k, v in server.state.items()}
        before = {k: v.copy() for k, v in server.state.items()}
        server.aggregate([state_a, state_b], [1, 1])
        for key in before:
            np.testing.assert_allclose(
                server.state[key], before[key], atol=1e-5
            )

    def test_set_masks_zeroes_state(self, tiny_resnet):
        server = Server(tiny_resnet)
        masks = MaskSet.dense(tiny_resnet)
        masks["fc.weight"] = np.zeros_like(masks["fc.weight"])
        server.set_masks(masks)
        np.testing.assert_array_equal(server.state["fc.weight"], 0.0)


class TestCommTracker:
    def test_totals(self):
        tracker = CommTracker()
        tracker.record_download(100)
        tracker.record_upload(50, phase="pruning")
        assert tracker.total_bytes == 150
        assert tracker.phase_bytes("pruning") == 50
        assert tracker.phase_bytes("training") == 100

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            CommTracker().record_upload(-1)

    def test_reset(self):
        tracker = CommTracker()
        tracker.record_download(10)
        tracker.reset()
        assert tracker.total_bytes == 0


class TestFederatedContext:
    def test_clients_partition_data(self, fl_setup):
        ctx = fl_setup
        assert len(ctx.clients) == 3
        assert sum(ctx.sample_counts) == 200

    def test_round_trains_and_aggregates(self, fl_setup):
        ctx = fl_setup
        before = {k: v.copy() for k, v in ctx.server.state.items()}
        states = ctx.run_fedavg_round()
        assert len(states) == 3
        changed = any(
            not np.array_equal(ctx.server.state[k], before[k])
            for k in before
        )
        assert changed

    def test_round_records_communication(self, fl_setup):
        ctx = fl_setup
        ctx.run_fedavg_round()
        assert ctx.comm.upload_bytes > 0
        assert ctx.comm.download_bytes > 0

    def test_sparse_model_cheaper_to_exchange(self, fl_setup):
        ctx = fl_setup
        dense_bytes = ctx.model_exchange_bytes()
        ctx.install_masks(magnitude_mask_uniform(ctx.model, 0.05))
        assert ctx.model_exchange_bytes() < dense_bytes

    def test_evaluate_global(self, fl_setup):
        accuracy, loss = fl_setup.evaluate_global()
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0.0

    def test_training_improves_over_rounds(self, fl_setup):
        ctx = fl_setup
        _, loss_before = ctx.evaluate_global()
        for _ in range(2):
            ctx.run_fedavg_round()
        _, loss_after = ctx.evaluate_global()
        assert loss_after < loss_before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLConfig(num_clients=0)
        with pytest.raises(ValueError):
            FLConfig(rounds=0)
        with pytest.raises(ValueError):
            FLConfig(dev_fraction=0.0)
