"""Cross-module integration tests of the paper's qualitative claims.

These are slower than unit tests but still tiny-scale; they pin down
behaviours that span several subsystems at once.
"""

import numpy as np
import pytest

from repro.core import FedTiny, FedTinyConfig
from repro.data import SyntheticSpec, generate
from repro.fl import FederatedContext, FLConfig
from repro.nn.models import build_model
from repro.pruning import PruningSchedule


@pytest.fixture(scope="module")
def easy_task():
    """A well-separated task where a good mask can learn quickly."""
    train, test = generate(
        SyntheticSpec(
            name="easy", num_classes=4, num_train=280, num_test=100,
            image_size=8, noise=0.35, modes_per_class=1, seed=51,
        )
    )
    public, federated = train.split(0.2, np.random.default_rng(9))
    return public, federated, test


def _run_fedtiny(easy_task, seed=0, rounds=6, density=0.1, **overrides):
    public, federated, test = easy_task
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=2
    )
    ctx = FederatedContext(
        model, federated, test,
        FLConfig(num_clients=4, rounds=rounds, local_epochs=1,
                 batch_size=16, lr=0.05, seed=seed),
        dataset_name="easy", model_name="resnet18",
    )
    config = FedTinyConfig(
        target_density=density,
        pool_size=overrides.pop("pool_size", 3),
        schedule=overrides.pop(
            "schedule", PruningSchedule(delta_rounds=2, stop_round=4)
        ),
        pretrain_epochs=1,
        **overrides,
    )
    return FedTiny(config).run(ctx, public)


class TestLearningBehaviour:
    def test_accuracy_improves_substantially_over_run(self, easy_task):
        result = _run_fedtiny(easy_task)
        assert result.rounds[-1].test_accuracy > (
            result.rounds[0].test_accuracy + 0.2
        )

    def test_density_invariant_every_round(self, easy_task):
        result = _run_fedtiny(easy_task)
        for record in result.rounds:
            assert record.density <= 0.1 * 1.001

    def test_deterministic_given_seed(self, easy_task):
        a = _run_fedtiny(easy_task, seed=3)
        b = _run_fedtiny(easy_task, seed=3)
        assert a.final_accuracy == b.final_accuracy
        assert [r.test_accuracy for r in a.rounds] == [
            r.test_accuracy for r in b.rounds
        ]

    def test_different_seeds_differ(self, easy_task):
        a = _run_fedtiny(easy_task, seed=1)
        b = _run_fedtiny(easy_task, seed=2)
        assert [r.test_accuracy for r in a.rounds] != [
            r.test_accuracy for r in b.rounds
        ]


class TestModuleInteraction:
    def test_progressive_pruning_moves_density_between_layers(
        self, easy_task
    ):
        result = _run_fedtiny(
            easy_task,
            schedule=PruningSchedule(delta_rounds=1, stop_round=6),
        )
        densities = result.metadata["final_layer_densities"]
        spread = max(densities.values()) - min(densities.values())
        assert spread > 0.0

    def test_selection_flops_accounted(self, easy_task):
        result = _run_fedtiny(easy_task)
        assert result.selection_flops > 0
        assert result.selection_comm_bytes > 0

    def test_pool_size_one_skips_choice(self, easy_task):
        result = _run_fedtiny(easy_task, pool_size=1)
        assert result.metadata["selected_candidate"] == 0
        assert result.metadata["pool_size"] == 1

    def test_memory_footprint_scales_with_density(self, easy_task):
        sparse = _run_fedtiny(easy_task, density=0.02, rounds=2)
        denser = _run_fedtiny(easy_task, density=0.3, rounds=2)
        assert sparse.memory_footprint_bytes < denser.memory_footprint_bytes
