"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn.checkpoint import load_model, save_model
from repro.nn.models import build_model
from repro.pruning import magnitude_mask_uniform


def _model(seed=3):
    return build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=seed
    )


class TestCheckpoint:
    def test_dense_roundtrip(self, tmp_path, rng):
        model = _model()
        path = tmp_path / "ckpt" / "model.npz"
        save_model(model, path)
        other = _model(seed=9)
        load_model(other, path)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        model.eval()
        other.eval()
        np.testing.assert_allclose(model(x), other(x), rtol=1e-5)

    def test_masks_roundtrip(self, tmp_path):
        model = _model()
        masks = magnitude_mask_uniform(model, 0.1)
        masks.apply(model)
        path = tmp_path / "sparse.npz"
        save_model(model, path)
        other = _model(seed=9)
        load_model(other, path)
        assert other.density() == pytest.approx(model.density())
        for (_, p1), (_, p2) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            if p1.mask is not None:
                np.testing.assert_array_equal(p1.mask, p2.mask)

    def test_unmasked_checkpoint_clears_existing_mask(self, tmp_path):
        dense = _model()
        path = tmp_path / "dense.npz"
        save_model(dense, path)
        sparse = _model(seed=9)
        magnitude_mask_uniform(sparse, 0.1).apply(sparse)
        load_model(sparse, path)
        assert sparse.density() == 1.0

    def test_buffers_roundtrip(self, tmp_path, rng):
        model = _model()
        model(rng.normal(size=(4, 3, 8, 8)).astype(np.float32))
        path = tmp_path / "bn.npz"
        save_model(model, path)
        other = _model(seed=9)
        load_model(other, path)
        np.testing.assert_allclose(
            other.stem_bn.running_mean, model.stem_bn.running_mean,
            rtol=1e-6,
        )

    def test_wrong_architecture_raises(self, tmp_path):
        model = _model()
        path = tmp_path / "m.npz"
        save_model(model, path)
        other = build_model(
            "resnet18", num_classes=4, width_multiplier=0.25, seed=0
        )
        with pytest.raises(ValueError):
            load_model(other, path)

    def test_missing_parameters_raise(self, tmp_path):
        model = _model()
        path = tmp_path / "m.npz"
        np.savez_compressed(path, **{"fc.weight": model.fc.weight.data})
        with pytest.raises(KeyError):
            load_model(model, path)
