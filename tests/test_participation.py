"""Tests for partial client participation (FedAvg client sampling)."""

import numpy as np
import pytest

from repro.core import FedTiny, FedTinyConfig
from repro.data import SyntheticSpec, generate
from repro.fl import FederatedContext, FLConfig
from repro.nn.models import build_model
from repro.pruning import PruningSchedule


@pytest.fixture(scope="module")
def setup():
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=240, num_test=60,
            image_size=8, noise=0.4, modes_per_class=1, seed=41,
        )
    )
    public, federated = train.split(0.2, np.random.default_rng(3))
    return public, federated, test


def _ctx(setup, participation=1.0, rounds=2, clients=6):
    public, federated, test = setup
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=5
    )
    config = FLConfig(
        num_clients=clients, rounds=rounds, local_epochs=1, batch_size=16,
        lr=0.05, participation_fraction=participation, seed=0,
    )
    return (
        FederatedContext(model, federated, test, config,
                         dataset_name="unit", model_name="resnet18"),
        public,
    )


class TestSampling:
    def test_full_participation_default(self, setup):
        ctx, _ = _ctx(setup)
        assert ctx.sample_participants() == list(ctx.clients)

    def test_half_participation_size(self, setup):
        ctx, _ = _ctx(setup, participation=0.5)
        participants = ctx.sample_participants()
        assert len(participants) == 3

    def test_at_least_one_client(self, setup):
        ctx, _ = _ctx(setup, participation=0.01)
        assert len(ctx.sample_participants()) == 1

    def test_sampling_varies_across_rounds(self, setup):
        ctx, _ = _ctx(setup, participation=0.5)
        draws = {
            tuple(c.client_id for c in ctx.sample_participants())
            for _ in range(10)
        }
        assert len(draws) > 1

    def test_round_trains_only_participants(self, setup):
        ctx, _ = _ctx(setup, participation=0.5)
        states = ctx.run_fedavg_round()
        assert len(states) == len(ctx.last_participants) == 3

    def test_comm_scales_with_participation(self, setup):
        full_ctx, _ = _ctx(setup, participation=1.0)
        full_ctx.run_fedavg_round()
        half_ctx, _ = _ctx(setup, participation=0.5)
        half_ctx.run_fedavg_round()
        assert half_ctx.comm.total_bytes < full_ctx.comm.total_bytes

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLConfig(participation_fraction=0.0)
        with pytest.raises(ValueError):
            FLConfig(participation_fraction=1.5)


class TestMethodsUnderPartialParticipation:
    def test_fedtiny_runs_with_sampling(self, setup):
        ctx, public = _ctx(setup, participation=0.5, rounds=3)
        config = FedTinyConfig(
            target_density=0.1, pool_size=2,
            schedule=PruningSchedule(delta_rounds=1, stop_round=3),
            pretrain_epochs=1,
        )
        result = FedTiny(config).run(ctx, public)
        assert result.final_density <= 0.1 * 1.001
        assert len(result.rounds) == 3

    def test_prunefl_runs_with_sampling(self, setup):
        from repro.baselines import PruneFLBaseline

        ctx, public = _ctx(setup, participation=0.5, rounds=2)
        result = PruneFLBaseline(
            0.1, schedule=PruningSchedule(delta_rounds=1, stop_round=2),
            pretrain_epochs=1,
        ).run(ctx, public)
        assert result.final_density == pytest.approx(0.1, rel=0.06)
