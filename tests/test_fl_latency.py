"""Tests for the device latency / straggler model."""

import numpy as np
import pytest

from repro.fl.latency import (
    DeviceProfile,
    heterogeneous_fleet,
    round_latency,
    straggler_slowdown,
)


class TestDeviceProfile:
    def test_time_decomposition(self):
        device = DeviceProfile(0, 1e9, 1e6, 2e6)
        # 1e9 FLOPs at 1 GFLOP/s = 1s; 1e6 B up at 1 MB/s = 1s;
        # 2e6 B down at 2 MB/s = 1s.
        assert device.time_for(1e9, 1e6, 2e6) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            DeviceProfile(0, 1.0, -1.0, 1.0)
        device = DeviceProfile(0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            device.time_for(-1.0, 0.0, 0.0)


class TestFleet:
    def test_size_and_spread(self):
        fleet = heterogeneous_fleet(
            20, np.random.default_rng(0), speed_spread=4.0
        )
        assert len(fleet) == 20
        speeds = [d.flops_per_second for d in fleet]
        assert max(speeds) / min(speeds) <= 4.0 + 1e-6

    def test_spread_one_is_homogeneous(self):
        fleet = heterogeneous_fleet(
            5, np.random.default_rng(0), speed_spread=1.0
        )
        speeds = {round(d.flops_per_second) for d in fleet}
        assert len(speeds) == 1

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            heterogeneous_fleet(0, rng)
        with pytest.raises(ValueError):
            heterogeneous_fleet(3, rng, speed_spread=0.5)


class TestRoundLatency:
    def _fleet(self):
        return [
            DeviceProfile(0, 1e9, 1e6, 1e6),
            DeviceProfile(1, 2e9, 2e6, 2e6),
        ]

    def test_slowest_device_gates(self):
        latency = round_latency(self._fleet(), 1e9, 0.0, 0.0)
        assert latency == pytest.approx(1.0)  # the 1 GFLOP/s device

    def test_empty_fleet_raises(self):
        with pytest.raises(ValueError):
            round_latency([], 1.0, 1.0, 1.0)

    def test_straggler_slowdown_homogeneous_is_one(self):
        fleet = heterogeneous_fleet(
            8, np.random.default_rng(0), speed_spread=1.0
        )
        assert straggler_slowdown(fleet, 1e9, 1e5, 1e5) == pytest.approx(1.0)

    def test_straggler_slowdown_grows_with_spread(self):
        rng = np.random.default_rng(1)
        narrow = heterogeneous_fleet(16, rng, speed_spread=1.5)
        wide = heterogeneous_fleet(16, np.random.default_rng(1),
                                   speed_spread=8.0)
        work = (1e9, 1e5, 1e5)
        assert straggler_slowdown(wide, *work) > straggler_slowdown(
            narrow, *work
        )

    def test_straggler_slowdown_true_median_even_fleet(self):
        # Devices at 1/2/3/4 GFLOP/s -> round times 4, 2, 4/3, 1 s for
        # 4 GFLOPs of work. The true median is (2 + 4/3) / 2 = 5/3, not
        # the upper-middle element 2 the old len//2 indexing picked.
        fleet = [DeviceProfile(i, s * 1e9, 1e12, 1e12)
                 for i, s in enumerate([1.0, 2.0, 3.0, 4.0])]
        slowdown = straggler_slowdown(fleet, 4e9, 0.0, 0.0)
        assert slowdown == pytest.approx(4.0 / (5.0 / 3.0))

    def test_straggler_slowdown_true_median_odd_fleet(self):
        # Odd-sized fleet: the median is the middle element.
        fleet = [DeviceProfile(i, s * 1e9, 1e12, 1e12)
                 for i, s in enumerate([1.0, 2.0, 4.0])]
        slowdown = straggler_slowdown(fleet, 4e9, 0.0, 0.0)
        assert slowdown == pytest.approx(4.0 / 2.0)

    def test_dense_method_amplifies_stragglers_in_wall_clock(self):
        """The paper's straggling argument: a dense-compute method's
        round latency grows far faster than a sparse method's on the
        same heterogeneous fleet."""
        fleet = heterogeneous_fleet(
            10, np.random.default_rng(2), speed_spread=4.0
        )
        sparse_flops, dense_flops = 1e8, 1e10  # 1% density vs dense
        bytes_sparse, bytes_dense = 1e4, 1e6
        sparse_latency = round_latency(
            fleet, sparse_flops, bytes_sparse, bytes_sparse
        )
        dense_latency = round_latency(
            fleet, dense_flops, bytes_dense, bytes_dense
        )
        assert dense_latency > 10 * sparse_latency
