"""Tests for the fault-injection / recovery subsystem (PR 8).

Covers the deterministic fault schedule, the retry policy, wire damage
helpers, the server's ingest pipeline (dedup / stale-epoch / quarantine
with validation-before-write), the seeded chaos suite under both
executors, the streaming-round exception regression, context-manager
lifecycles, and crash-resumable checkpoints.
"""

import os
import shutil

import numpy as np
import pytest

from repro.data import SyntheticSpec, generate
from repro.experiments import run_experiment
from repro.fl import FLConfig, FederatedContext
from repro.fl.executor import SerialExecutor, build_executor
from repro.fl.faults import (
    FAULT_KINDS,
    FAULT_PRESETS,
    FaultSchedule,
    FaultSpec,
    RetryPolicy,
    corrupt_wire,
    truncate_wire,
)
from repro.fl.payload import PackedPayload, PayloadFormatError, pack_state
from repro.nn.models import build_model


def _make_context(**overrides):
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=160, num_test=48,
            image_size=8, noise=0.4, modes_per_class=1, seed=5,
        )
    )
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=2
    )
    kwargs = dict(
        num_clients=3, rounds=2, local_epochs=1, batch_size=16,
        lr=0.05, dirichlet_alpha=0.5, seed=0,
    )
    kwargs.update(overrides)
    return FederatedContext(
        model, train, test, FLConfig(**kwargs),
        dataset_name="unit", model_name="resnet18",
    )


def _server_fingerprint(server):
    """Bitwise snapshot of everything an upload could mutate."""
    state = {k: v.copy() for k, v in server.state.items()}
    masks = {k: v.copy() for k, v in server.masks.items()}
    return state, masks, server.mask_epoch


def _assert_fingerprint_unchanged(server, fingerprint):
    state, masks, epoch = fingerprint
    assert server.mask_epoch == epoch
    assert set(server.state) == set(state)
    for name, value in state.items():
        np.testing.assert_array_equal(server.state[name], value)
    for name, mask in masks.items():
        np.testing.assert_array_equal(server.masks[name], mask)


# ----------------------------------------------------------------------
# FaultSchedule / RetryPolicy
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_parse_pairs_roundtrip(self):
        schedule = FaultSchedule.parse(
            "corrupt_payload:0.1, client_timeout:0.05", seed=3
        )
        assert schedule.spec_string() == (
            "corrupt_payload:0.1,client_timeout:0.05"
        )
        reparsed = FaultSchedule.parse(schedule.spec_string(), seed=3)
        assert reparsed.spec_string() == schedule.spec_string()

    @pytest.mark.parametrize("preset", sorted(FAULT_PRESETS))
    def test_presets_parse(self, preset):
        schedule = FaultSchedule.parse(preset)
        assert schedule.specs

    @pytest.mark.parametrize(
        "bad",
        ["bogus:0.5", "corrupt_payload", "corrupt_payload:x",
         "corrupt_payload:1.5", "corrupt_payload:0.6,corrupt_payload:0.6",
         ""],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.parse(bad)

    def test_probabilities_must_not_exceed_one(self):
        with pytest.raises(ValueError, match="sum"):
            FaultSchedule(
                [FaultSpec("corrupt_payload", 0.7),
                 FaultSpec("client_timeout", 0.7)]
            )

    def test_draws_are_deterministic_and_coordinate_local(self):
        a = FaultSchedule.parse("chaos", seed=0)
        b = FaultSchedule.parse("chaos", seed=0)
        coords = [
            (r, c, t) for r in (1, 2, 7) for c in (0, 3, 11)
            for t in (0, 1, 2)
        ]
        draws = [a.draw(*coord) for coord in coords]
        assert draws == [b.draw(*coord) for coord in coords]
        # Querying one coordinate never shifts another (counter-based,
        # not stream-based): re-query in reverse order.
        assert draws[::-1] == [a.draw(*c) for c in coords[::-1]]

    def test_different_seeds_differ(self):
        a = FaultSchedule.parse("chaos", seed=0)
        b = FaultSchedule.parse("chaos", seed=1)
        coords = [(r, c, t) for r in range(8) for c in range(8)
                  for t in range(3)]
        assert [a.draw(*c) for c in coords] != [b.draw(*c) for c in coords]

    def test_draw_respects_probability_zero_and_one(self):
        never = FaultSchedule([FaultSpec("stale_epoch", 0.0)])
        always = FaultSchedule([FaultSpec("stale_epoch", 1.0)])
        for coord in [(1, 0, 0), (5, 2, 1)]:
            assert never.draw(*coord) is None
            assert always.draw(*coord) == "stale_epoch"

    def test_catalog_is_closed(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind, 0.1)  # every catalog entry is constructible
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_ray", 0.1)


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_grows(self):
        policy = RetryPolicy(backoff_seconds=0.5, backoff_factor=2.0)
        first = policy.backoff(0, 1, 2, 0)
        again = policy.backoff(0, 1, 2, 0)
        later = policy.backoff(0, 1, 2, 1)
        assert first == again
        assert later > first
        assert 0.5 <= first <= 0.5 * 1.1  # jitter_fraction=0.1

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_attempts": 0}, {"backoff_seconds": -1.0},
         {"backoff_factor": 0.5}, {"jitter_fraction": 2.0},
         {"timeout_seconds": -1.0}, {"pool_failure_limit": 0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# Wire damage + ingest pipeline (validation before write)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ingest_setup():
    ctx = _make_context()
    try:
        # A sparse mask so the packed payload exercises the sparse
        # encoding (indices + values) the tampering tests target.
        from repro.pruning import magnitude_mask_uniform

        ctx.install_masks(magnitude_mask_uniform(ctx.model, 0.2))
        results = ctx.executor.run_clients(ctx, ctx.last_participants)
        state = results[0].resolve_state()
        wire = bytes(pack_state(state, ctx.server.masks).to_wire())
        yield ctx, wire
    finally:
        ctx.close()


class TestWireDamage:
    def test_corrupt_wire_always_detected(self, ingest_setup):
        _, wire = ingest_setup
        for seed in range(24):
            rng = np.random.default_rng(seed)
            damaged = corrupt_wire(wire, rng)
            assert damaged != wire
            with pytest.raises(PayloadFormatError):
                PackedPayload.from_bytes(damaged, validate=True)

    def test_truncate_wire_always_detected(self, ingest_setup):
        _, wire = ingest_setup
        for seed in range(24):
            rng = np.random.default_rng(seed)
            damaged = truncate_wire(wire, rng)
            assert len(damaged) < len(wire)
            with pytest.raises(PayloadFormatError):
                PackedPayload.from_bytes(damaged, validate=True)


class TestRoundIngest:
    def test_accept_then_duplicate(self, ingest_setup):
        ctx, _ = ingest_setup
        ingest = ctx.server.begin_ingest(1)
        epoch = ctx.server.mask_epoch
        assert ingest.submit(0, 0, mask_epoch=epoch) == "accepted"
        assert ingest.submit(0, 1, mask_epoch=epoch) == "duplicate"
        assert ingest.accepted_clients == [0]
        assert [r.action for r in ingest.records] == ["deduplicated"]

    def test_stale_epoch_rejected(self, ingest_setup):
        ctx, _ = ingest_setup
        ingest = ctx.server.begin_ingest(1)
        epoch = ctx.server.mask_epoch
        assert ingest.submit(1, 0, mask_epoch=epoch - 1) == "rejected_stale"
        assert ingest.submit(1, 0, mask_epoch=epoch + 3) == "rejected_stale"
        assert ingest.accepted_clients == []
        assert {r.kind for r in ingest.records} == {"stale_epoch"}

    def test_valid_wire_accepted(self, ingest_setup):
        ctx, wire = ingest_setup
        ingest = ctx.server.begin_ingest(1)
        status = ingest.submit(
            2, 0, mask_epoch=ctx.server.mask_epoch, wire=wire
        )
        assert status == "accepted"

    def test_rejections_never_mutate_server_state(self, ingest_setup):
        """Property: arbitrary wire damage is quarantined (or, if the
        damage is structurally invisible, accepted) and the server is
        bitwise unchanged either way — ingest validates before any
        write."""
        ctx, wire = ingest_setup
        fingerprint = _server_fingerprint(ctx.server)
        epoch = ctx.server.mask_epoch
        statuses = set()
        for seed in range(40):
            rng = np.random.default_rng(seed)
            mode = seed % 4
            damaged = bytearray(wire)
            if mode == 0:  # random single-bit flip anywhere
                pos = int(rng.integers(0, len(damaged)))
                damaged[pos] ^= 1 << int(rng.integers(0, 8))
            elif mode == 1:  # truncation
                damaged = damaged[: int(rng.integers(0, len(damaged)))]
            elif mode == 2:  # oversized offset/garbage header
                damaged = bytearray(corrupt_wire(wire, rng))
            else:  # scribble over a whole span
                start = int(rng.integers(0, len(damaged) - 64))
                for k in range(start, start + 64):
                    damaged[k] ^= 0xA5
            ingest = ctx.server.begin_ingest(1)
            status = ingest.submit(
                0, 0, mask_epoch=epoch, wire=bytes(damaged)
            )
            statuses.add(status)
            # A flipped bit inside a float value segment is invisible
            # to structural validation — acceptance is fine; *any*
            # mutation of server state is not.
            assert status in ("accepted", "quarantined")
            _assert_fingerprint_unchanged(ctx.server, fingerprint)
        assert "quarantined" in statuses

    def test_tampered_payload_fails_validation_before_aggregation(
        self, ingest_setup
    ):
        """Bad sparse indices / oversized offsets: the validator
        rejects the payload, and an aggregation attempt that slips
        past it raises before the commit — committed state is
        untouched both ways."""
        ctx, wire = ingest_setup
        fingerprint = _server_fingerprint(ctx.server)
        payload = PackedPayload.from_bytes(wire, copy=True)
        sparse_specs = [
            s for s in payload.specs if s.encoding == "sparse"
        ]
        assert sparse_specs, "fixture payload should have sparse tensors"
        spec = sparse_specs[0]
        # Point the first index far out of range.
        start = spec.offset
        np.frombuffer(
            payload.buffer, dtype=np.int32, count=1, offset=start
        ).flags  # (sanity: the view is addressable)
        payload.buffer[start:start + 4] = np.frombuffer(
            np.int32(2 ** 30).tobytes(), dtype=np.uint8
        )
        with pytest.raises(PayloadFormatError):
            payload.validate()
        with pytest.raises(Exception):
            ctx.server.aggregate_packed([payload], [10])
        _assert_fingerprint_unchanged(ctx.server, fingerprint)


class TestUploadIdempotency:
    def test_permuted_duplicated_uploads_commit_identically(self):
        """Property: the committed state is a pure function of the
        round's accepted payloads. At-least-once delivery means a
        transport may present a round's uploads in any arrival order
        with any prefix replayed; the ingest must dedup the replays,
        accept each client exactly once, and — because the caller
        aggregates accepted payloads in canonical participant order,
        never arrival order — commit bitwise-identical state with
        identical accounting every time."""
        ctx = _make_context()
        try:
            participants = ctx.last_participants
            results = ctx.executor.run_clients(ctx, participants)
            wires = {}
            counts = {}
            for client, result in zip(participants, results):
                wires[client.client_id] = bytes(
                    pack_state(
                        result.resolve_state(), ctx.server.masks
                    ).to_wire()
                )
                counts[client.client_id] = result.num_samples
            canonical = [c.client_id for c in participants]
            epoch = ctx.server.mask_epoch
            saved = {k: v.copy() for k, v in ctx.server.state.items()}
            reference = None
            for trial in range(10):
                rng = np.random.default_rng(trial)
                order = list(canonical)
                rng.shuffle(order)
                dup_count = int(rng.integers(0, len(order) + 1))
                arrivals = order + order[:dup_count]
                ingest = ctx.server.begin_ingest(1)
                statuses = [
                    ingest.submit(
                        cid, attempt, mask_epoch=epoch, wire=wires[cid]
                    )
                    for attempt, cid in enumerate(arrivals)
                ]
                assert statuses.count("accepted") == len(order)
                assert statuses.count("duplicate") == dup_count
                assert sorted(ingest.accepted_clients) == sorted(
                    canonical
                )
                assert len(ingest.records) == dup_count
                assert all(
                    r.action == "deduplicated" for r in ingest.records
                )
                payloads = [
                    ingest.accepted_payload(cid) for cid in canonical
                ]
                assert all(p is not None for p in payloads)
                ctx.server.aggregate_packed(
                    payloads, [counts[cid] for cid in canonical]
                )
                committed = {
                    k: v.copy() for k, v in ctx.server.state.items()
                }
                if reference is None:
                    reference = committed
                else:
                    assert set(committed) == set(reference)
                    for name in reference:
                        np.testing.assert_array_equal(
                            committed[name], reference[name], err_msg=name
                        )
                # Rewind for the next trial.
                ctx.server.commit_state(
                    {k: v.copy() for k, v in saved.items()}
                )
        finally:
            ctx.close()


# ----------------------------------------------------------------------
# The seeded chaos suite (both executors)
# ----------------------------------------------------------------------
_CHAOS_COMMON = dict(scale="tiny", seed=0)


@pytest.fixture(scope="module")
def chaos_baseline():
    return run_experiment(
        "fedavg", "resnet18", "cifar10", 1.0, **_CHAOS_COMMON
    )


def _metric_fields(result):
    """Per-round fields that must survive recovery bitwise (the
    simulated clock absorbs backoff and the recovery accounting is
    executor-dependent, so both are excluded)."""
    skip = ("sim_time_seconds", "recovery_actions")
    return [
        {k: v for k, v in vars(r).items() if k not in skip}
        for r in result.rounds
    ]


def _fault_free_fields(result):
    skip = (
        "sim_time_seconds", "recovery_actions", "faults_injected",
        "retries", "quarantined_uploads", "dropped_clients",
    )
    return [
        {k: v for k, v in vars(r).items() if k not in skip}
        for r in result.rounds
    ]


class TestChaosSuite:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    @pytest.mark.parametrize(
        "preset", ["chaos", "bad_transport", "flaky_clients"]
    )
    def test_recovery_invariants(self, chaos_baseline, executor, preset):
        faulted = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            faults=preset, executor=executor, **_CHAOS_COMMON,
        )
        baseline = chaos_baseline
        # 1. Every round completed.
        assert len(faulted.rounds) == len(baseline.rounds)
        assert faulted.total_faults_injected > 0
        # 2. Accounting: quarantines and exclusions all carry records.
        quarantined = [
            f for f in faulted.failures if f.action == "quarantined"
        ]
        excluded = [
            f for f in faulted.failures if f.action == "excluded"
        ]
        assert len(quarantined) == faulted.total_quarantined_uploads
        assert (
            faulted.total_dropped_clients
            - baseline.total_dropped_clients
            == len(excluded)
        )
        # 3. Recovery: with no exclusions the faulted run is bitwise
        # equal to the fault-free baseline (modulo the clock); with
        # exclusions the partial cohorts are accounted as dropped.
        if not excluded:
            assert _fault_free_fields(faulted) == _fault_free_fields(
                baseline
            )
        # 4. The simulated clock absorbed backoff/timeouts.
        assert (
            faulted.sim_time_seconds > baseline.sim_time_seconds
        )

    def test_faulted_runs_identical_across_executors(
        self,
    ):
        serial = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            faults="chaos", **_CHAOS_COMMON,
        )
        process = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            faults="chaos", executor="process", **_CHAOS_COMMON,
        )
        assert _metric_fields(serial) == _metric_fields(process)

    def test_whole_cohort_lost_round_carries_state_over(self):
        result = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            rounds=1, faults="corrupt_payload:1.0", **_CHAOS_COMMON,
        )
        assert len(result.rounds) == 1
        record = result.rounds[0]
        excluded = [f for f in result.failures if f.action == "excluded"]
        assert record.dropped_clients == len(excluded)
        assert record.quarantined_uploads > 0

    def test_worker_crash_respawns_and_degrades(self):
        result = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            faults="worker_crash:0.4", executor="process",
            **_CHAOS_COMMON,
        )
        actions = {f.action for f in result.failures}
        assert "respawned_pool" in actions
        assert "degraded_executor" in actions
        # Degradation is graceful: the run still matches the serial
        # twin bitwise.
        serial = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            faults="worker_crash:0.4", **_CHAOS_COMMON,
        )
        assert _metric_fields(result) == _metric_fields(serial)


# ----------------------------------------------------------------------
# Satellite 1: streaming round exception safety
# ----------------------------------------------------------------------
class TestStreamingRoundExceptionSafety:
    def test_mid_round_failure_restores_everything(self, monkeypatch):
        ctx = _make_context(client_backend="virtual")
        try:
            fingerprint = _server_fingerprint(ctx.server)
            from repro.fl.client import Client

            calls = {"n": 0}
            original = Client.train

            def explode_on_second(self, *args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise RuntimeError("client died mid-round")
                return original(self, *args, **kwargs)

            monkeypatch.setattr(Client, "train", explode_on_second)
            with pytest.raises(RuntimeError, match="mid-round"):
                ctx.run_streaming_sync_round()
            # Committed state, masks and epoch are untouched.
            _assert_fingerprint_unchanged(ctx.server, fingerprint)
            # Every client was released: the directory can materialize
            # the whole fleet again.
            for client_id in range(ctx.config.num_clients):
                client = ctx.directory.materialize(client_id)
                assert client.client_id == client_id
                ctx.directory.release(client_id)
            # And the next (un-sabotaged) round runs to completion
            # exactly like a fresh context's first round would.
            monkeypatch.setattr(Client, "train", original)
            info = ctx.run_streaming_sync_round()
            assert info.aggregated_ids == tuple(
                range(ctx.config.num_clients)
            )
        finally:
            ctx.close()

    def test_failed_round_is_bitwise_replayable(self, monkeypatch):
        """A crashed round leaves no trace: replaying it produces the
        same committed state as a run that never crashed."""
        from repro.fl.client import Client

        original = Client.train

        def run(sabotage_first):
            ctx = _make_context(client_backend="virtual")
            try:
                calls = {"n": 0}

                def maybe_explode(self, *args, **kwargs):
                    calls["n"] += 1
                    if sabotage_first and calls["n"] == 2:
                        raise RuntimeError("boom")
                    return original(self, *args, **kwargs)

                monkeypatch.setattr(Client, "train", maybe_explode)
                if sabotage_first:
                    with pytest.raises(RuntimeError):
                        ctx.run_streaming_sync_round()
                    calls["n"] = 10**9  # no more sabotage
                ctx.run_streaming_sync_round()
                state = {
                    k: v.copy() for k, v in ctx.server.state.items()
                }
                comm = (ctx.comm.upload_bytes, ctx.comm.download_bytes)
                return state, comm
            finally:
                monkeypatch.setattr(Client, "train", original)
                ctx.close()

        clean, clean_comm = run(sabotage_first=False)
        replayed, replayed_comm = run(sabotage_first=True)
        assert clean_comm == replayed_comm
        assert set(clean) == set(replayed)
        for name in clean:
            np.testing.assert_array_equal(clean[name], replayed[name])


# ----------------------------------------------------------------------
# Satellite 2: context-manager lifecycles
# ----------------------------------------------------------------------
class TestContextManagers:
    def test_federated_context_closes_on_exit(self):
        with _make_context() as ctx:
            assert ctx.executor is not None
        # close() is idempotent and was called by __exit__.
        ctx.close()

    def test_executor_context_manager(self):
        executor = build_executor("serial")
        with executor as entered:
            assert entered is executor
        executor.close()

    def test_degrade_executor_swaps_to_serial(self):
        with _make_context(executor="process") as ctx:
            assert ctx.executor.name == "process"
            assert ctx.degrade_executor() is True
            assert isinstance(ctx.executor, SerialExecutor)
            # Already serial: no further degradation possible.
            assert ctx.degrade_executor() is False


# ----------------------------------------------------------------------
# Crash-resumable runs
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_killed_run_resumes_bit_for_bit(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        common = dict(scale="tiny", seed=0, checkpoint_dir=ckpt)
        full = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            pool_size=2, **common,
        )
        shutil.rmtree(ckpt)
        os.makedirs(ckpt)
        # "Kill" the run after round 2 by only running 2 rounds...
        run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            pool_size=2, rounds=2, **common,
        )
        # ...then resume to the full length.
        resumed = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            pool_size=2, resume=True, **common,
        )
        assert [vars(r) for r in full.rounds] == [
            vars(r) for r in resumed.rounds
        ]
        assert resumed.final_accuracy == full.final_accuracy
        assert (
            resumed.memory_footprint_bytes == full.memory_footprint_bytes
        )
        assert resumed.metadata == full.metadata

    def test_resume_under_faults_is_bit_for_bit(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        common = dict(
            scale="tiny", seed=0, faults="bad_transport",
            checkpoint_dir=ckpt,
        )
        full = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, **common
        )
        shutil.rmtree(ckpt)
        os.makedirs(ckpt)
        run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, rounds=2, **common
        )
        resumed = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, resume=True, **common
        )
        assert [vars(r) for r in full.rounds] == [
            vars(r) for r in resumed.rounds
        ]
        assert [vars(f) for f in full.failures] == [
            vars(f) for f in resumed.failures
        ]

    def test_mismatched_checkpoint_is_rejected(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            scale="tiny", seed=0, rounds=1, checkpoint_dir=ckpt,
        )
        with pytest.raises(ValueError, match="different run"):
            run_experiment(
                "fedavg", "resnet18", "cifar10", 1.0,
                scale="tiny", seed=0, local_epochs=2,
                checkpoint_dir=ckpt, resume=True,
            )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="resume"):
            FLConfig(num_clients=2, rounds=1, resume=True)
        with pytest.raises(ValueError, match="async"):
            FLConfig(
                num_clients=2, rounds=1, round_policy="async",
                checkpoint_dir="/tmp/x",
            )
        with pytest.raises(ValueError):
            FLConfig(num_clients=2, rounds=1, faults="nope:1")
        with pytest.raises(ValueError):
            FLConfig(num_clients=2, rounds=1, retry_max_attempts=0)
