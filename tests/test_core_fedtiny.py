"""Integration tests for adaptive BN selection and the FedTiny pipeline."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveBNSelection,
    FedTiny,
    FedTinyConfig,
    ProgressivePruner,
    optimal_pool_size,
)
from repro.data import SyntheticSpec, generate
from repro.fl import FLConfig, FederatedContext
from repro.nn.models import build_model
from repro.pruning import (
    PruningSchedule,
    generate_candidate_pool,
    model_blocks,
)


@pytest.fixture(scope="module")
def shared_setup():
    """One dataset/model pair reused across this module (read-only)."""
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=240, num_test=80,
            image_size=8, noise=0.4, modes_per_class=1, seed=11,
        )
    )
    rng = np.random.default_rng(0)
    public, federated = train.split(0.2, rng)
    return public, federated, test


def _make_ctx(shared_setup, rounds=4, seed=0):
    public, federated, test = shared_setup
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=3
    )
    config = FLConfig(
        num_clients=3, rounds=rounds, local_epochs=1, batch_size=16,
        lr=0.05, seed=seed,
    )
    ctx = FederatedContext(model, federated, test, config,
                           dataset_name="unit", model_name="resnet18")
    return ctx, public


class TestOptimalPoolSize:
    def test_rule(self):
        assert optimal_pool_size(0.01) == 10
        assert optimal_pool_size(0.005) == 20
        assert optimal_pool_size(0.001) == 50  # clamped at 50

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_pool_size(0.0)


class TestAdaptiveBNSelection:
    def test_selects_lowest_loss_candidate(self, shared_setup):
        ctx, public = _make_ctx(shared_setup)
        from repro.fl.training import server_pretrain
        from repro.fl.state import get_state

        server_pretrain(ctx.model, public, epochs=1, batch_size=16)
        ctx.server.commit_state(get_state(ctx.model))
        pool = generate_candidate_pool(
            ctx.model, 0.1, 4, np.random.default_rng(0)
        )
        selector = AdaptiveBNSelection(batch_size=16)
        chosen, report = selector.select(ctx, pool)
        assert report.selected_index == int(
            np.argmin(report.candidate_losses)
        )
        assert chosen is pool[report.selected_index]
        assert len(report.candidate_losses) == 4
        assert report.comm_bytes > 0
        assert report.flops_per_device > 0

    def test_vanilla_selection_skips_recalibration(self, shared_setup):
        ctx, public = _make_ctx(shared_setup)
        pool = generate_candidate_pool(
            ctx.model, 0.1, 3, np.random.default_rng(0)
        )
        selector = AdaptiveBNSelection(
            use_bn_recalibration=False, batch_size=16
        )
        _, report = selector.select(ctx, pool)
        assert not report.used_bn_recalibration
        assert len(report.candidate_losses) == 3

    def test_selection_leaves_server_state_clean(self, shared_setup):
        ctx, public = _make_ctx(shared_setup)
        before = {k: v.copy() for k, v in ctx.server.state.items()}
        pool = generate_candidate_pool(
            ctx.model, 0.1, 2, np.random.default_rng(0)
        )
        AdaptiveBNSelection(batch_size=16).select(ctx, pool)
        for key in before:
            np.testing.assert_array_equal(ctx.server.state[key], before[key])
        assert ctx.server.masks.density == 1.0

    def test_empty_pool_raises(self, shared_setup):
        ctx, _ = _make_ctx(shared_setup)
        with pytest.raises(ValueError):
            AdaptiveBNSelection().select(ctx, [])


class TestFedTinyPipeline:
    def test_end_to_end_density_and_learning(self, shared_setup):
        ctx, public = _make_ctx(shared_setup, rounds=5)
        config = FedTinyConfig(
            target_density=0.1,
            pool_size=3,
            schedule=PruningSchedule(delta_rounds=2, stop_round=4),
            pretrain_epochs=1,
        )
        result = FedTiny(config).run(ctx, public)
        # Density never exceeds the target in any recorded round.
        for record in result.rounds:
            assert record.density <= 0.1 * 1.001
        # It learns something on this easy task.
        assert result.final_accuracy > 0.4
        assert result.memory_footprint_bytes > 0
        assert result.selection_comm_bytes > 0
        assert result.metadata["pool_size"] == 3

    def test_progressive_changes_masks(self, shared_setup):
        ctx, public = _make_ctx(shared_setup, rounds=3)
        config = FedTinyConfig(
            target_density=0.1,
            pool_size=2,
            schedule=PruningSchedule(delta_rounds=1, stop_round=3),
            pretrain_epochs=1,
        )
        initial_masks = None
        method = FedTiny(config)
        # Capture masks right after selection via a tiny subclass hook.
        result = method.run(ctx, public)
        densities = result.metadata["final_layer_densities"]
        # Layer densities are no longer the uniform split everywhere.
        assert len(set(np.round(list(densities.values()), 8))) > 1

    def test_ablation_method_names(self):
        base = FedTinyConfig(target_density=0.1)
        assert FedTiny(base).method_name == "fedtiny"
        assert (
            FedTiny(base.with_ablation(False, False)).method_name
            == "vanilla"
        )
        assert (
            FedTiny(base.with_ablation(True, False)).method_name
            == "adaptive_bn_only"
        )
        assert (
            FedTiny(base.with_ablation(False, True)).method_name
            == "vanilla+progressive"
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FedTinyConfig(target_density=0.0)
        with pytest.raises(ValueError):
            FedTinyConfig(target_density=0.1, pool_size=0)

    def test_no_progressive_keeps_selected_masks(self, shared_setup):
        ctx, public = _make_ctx(shared_setup, rounds=2)
        config = FedTinyConfig(
            target_density=0.1, pool_size=2,
            use_progressive=False, pretrain_epochs=1,
        )
        result = FedTiny(config).run(ctx, public)
        densities = [r.density for r in result.rounds]
        assert len(set(np.round(densities, 9))) == 1


class TestProgressiveWithinContext:
    def test_adjustment_round_preserves_global_density(self, shared_setup):
        ctx, public = _make_ctx(shared_setup, rounds=1)
        from repro.pruning import magnitude_mask_uniform

        ctx.install_masks(magnitude_mask_uniform(ctx.model, 0.1))
        pruner = ProgressivePruner(
            PruningSchedule(delta_rounds=1, stop_round=10),
            model_blocks(ctx.model),
            grad_batch_size=16,
        )
        density_before = ctx.server.masks.density
        states = ctx.run_fedavg_round()
        report = pruner.maybe_adjust(ctx, 1, states)
        assert report is not None
        assert ctx.server.masks.density == pytest.approx(
            density_before, abs=1e-9
        )
        assert report.upload_bytes > 0
        assert pruner.max_buffer_entries_seen > 0

    def test_non_pruning_round_returns_none(self, shared_setup):
        ctx, _ = _make_ctx(shared_setup, rounds=1)
        from repro.pruning import magnitude_mask_uniform

        ctx.install_masks(magnitude_mask_uniform(ctx.model, 0.1))
        pruner = ProgressivePruner(
            PruningSchedule(delta_rounds=5, stop_round=10),
            model_blocks(ctx.model),
        )
        assert pruner.maybe_adjust(ctx, 1, []) is None
