"""Tests for the sparsity-aware compute engine.

Covers the four engine pillars: bit-identity of the vectorized lowering
against the pre-engine reference, version-tagged effective-weight
caching, density-aware row dispatch (exact where guaranteed, tightly
close elsewhere), and the inference / masked-weight-grad fast paths.
"""

import numpy as np
import pytest

from repro.nn import engine
from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.optim import SGD
from repro.nn.parameter import Parameter
from repro.sparse.mask import structured_row_mask


@pytest.fixture(autouse=True)
def _reset_engine():
    saved = engine.get_config().density_threshold
    yield
    engine.configure(density_threshold=saved)


def _sparse_dispatch():
    engine.configure(density_threshold=1.0)


# ----------------------------------------------------------------------
# Lowering bit-identity
# ----------------------------------------------------------------------
LOWERING_CASES = [
    # (n, c, h, w, kernel, stride, pad) spanning the 1x1 shortcut, the
    # loop construction (small C*k*k) and the vectorized one (large).
    (2, 3, 8, 8, 3, 1, 1),
    (2, 3, 9, 9, 3, 2, 1),
    (1, 4, 7, 7, 2, 1, 0),
    (2, 8, 8, 8, 1, 1, 0),
    (2, 8, 8, 8, 1, 2, 0),
    (1, 64, 10, 10, 3, 1, 1),
    (1, 64, 11, 11, 3, 2, 0),
]


class TestLoweringBitIdentity:
    @pytest.mark.parametrize("case", LOWERING_CASES)
    def test_im2col_matches_reference_exactly(self, rng, case):
        n, c, h, w, k, s, p = case
        x = rng.normal(size=(n, c, h, w)).astype(np.float32)
        got = F.im2col(x, k, k, s, p)
        want = F.im2col_reference(x, k, k, s, p)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("case", LOWERING_CASES)
    def test_col2im_matches_reference_exactly(self, rng, case):
        n, c, h, w, k, s, p = case
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)
        col = rng.normal(size=(n * out_h * out_w, c * k * k)).astype(
            np.float32
        )
        got = F.col2im(col, (n, c, h, w), k, k, s, p)
        want = F.col2im_reference(col, (n, c, h, w), k, k, s, p)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("case", LOWERING_CASES)
    def test_kernel_major_layouts_hold_the_same_patches(self, rng, case):
        n, c, h, w, k, s, p = case
        x = rng.normal(size=(n, c, h, w)).astype(np.float32)
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)
        km = F.im2col_kernel_major(x, k, k, s, p)
        pm = F.im2col(x, k, k, s, p)
        # (N, K, L) -> (N, L, K) -> (M, K) is the patch-major layout.
        relayout = km.transpose(0, 2, 1).reshape(n * out_h * out_w, -1)
        assert np.array_equal(relayout, pm)

    @pytest.mark.parametrize("case", LOWERING_CASES)
    def test_col2im_kernel_major_is_the_same_adjoint(self, rng, case):
        n, c, h, w, k, s, p = case
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)
        km = rng.normal(size=(n, c * k * k, out_h * out_w)).astype(
            np.float32
        )
        pm = km.transpose(0, 2, 1).reshape(n * out_h * out_w, -1)
        got = F.col2im_kernel_major(km, (n, c, h, w), k, k, s, p)
        want = F.col2im_reference(pm, (n, c, h, w), k, k, s, p)
        assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Effective-weight caching
# ----------------------------------------------------------------------
class TestEffectiveCaching:
    def test_cached_product_is_reused_until_mutation(self, rng):
        param = Parameter(
            rng.normal(size=(4, 4)).astype(np.float32), prunable=True
        )
        param.set_mask(rng.integers(0, 2, size=(4, 4)))
        first = param.effective
        assert param.effective is first  # cache hit, same array object
        np.testing.assert_array_equal(first, param.data * param.mask)

    def test_data_assignment_invalidates(self, rng):
        param = Parameter(np.ones((3, 3), dtype=np.float32))
        param.set_mask(np.eye(3))
        before = param.effective.copy()
        param.data = np.full((3, 3), 2.0, dtype=np.float32)
        np.testing.assert_array_equal(param.effective, 2.0 * np.eye(3))
        assert not np.array_equal(param.effective, before)

    def test_augmented_assignment_invalidates(self):
        param = Parameter(np.ones((2, 2), dtype=np.float32))
        param.set_mask(np.ones((2, 2)))
        assert param.effective.sum() == 4.0
        param.data -= 0.5
        assert param.effective.sum() == 2.0

    def test_mask_assignment_invalidates(self):
        param = Parameter(np.ones((2, 2), dtype=np.float32))
        param.set_mask(np.ones((2, 2)))
        assert param.effective.sum() == 4.0
        param.mask = np.zeros((2, 2), dtype=np.float32)
        assert param.effective.sum() == 0.0
        param.mask = None
        assert param.effective is param.data

    def test_in_place_view_edit_needs_bump(self):
        param = Parameter(np.ones((2, 2), dtype=np.float32))
        param.set_mask(np.ones((2, 2)))
        stale = param.effective
        param.data.reshape(-1)[0] = 5.0  # invisible to the setter
        assert param.effective is stale
        param.bump_version()
        assert param.effective[0, 0] == 5.0

    def test_optimizer_step_invalidates(self, rng):
        layer = Linear(4, 3, rng=rng)
        layer.weight.set_mask(np.ones(layer.weight.shape))
        optimizer = SGD(layer, lr=0.1)
        x = rng.normal(size=(2, 4)).astype(np.float32)
        layer(x)
        layer.backward(np.ones((2, 3), dtype=np.float32))
        before = layer.weight.effective.copy()
        optimizer.step()
        assert not np.array_equal(layer.weight.effective, before)
        np.testing.assert_array_equal(
            layer.weight.effective, layer.weight.data * layer.weight.mask
        )

    def test_active_output_rows_tracks_mask(self):
        param = Parameter(np.ones((4, 6), dtype=np.float32), prunable=True)
        assert param.active_output_rows() is None
        mask = np.zeros((4, 6))
        mask[1, 2] = mask[3, 0] = 1
        param.set_mask(mask)
        np.testing.assert_array_equal(param.active_output_rows(), [1, 3])
        param.set_mask(np.ones((4, 6)))
        assert param.active_output_rows().size == 4


# ----------------------------------------------------------------------
# Density-aware dispatch
# ----------------------------------------------------------------------
def _masked_conv(rng, density, out_channels=8):
    conv = Conv2d(4, out_channels, 3, padding=1, rng=rng)
    mask = structured_row_mask(
        conv.weight.shape, density, np.random.default_rng(3)
    )
    conv.weight.set_mask(mask)
    conv.weight.apply_mask()
    return conv


def _run_step(layer, x, grad_out):
    out = layer(x)
    layer.zero_grad()
    grad_in = layer.backward(grad_out)
    grads = {
        name: p.grad.copy() for name, p in layer.named_parameters()
    }
    return out.copy(), grad_in.copy(), grads


class TestDensityDispatch:
    @pytest.mark.parametrize("density", [0.0, 1.0])
    def test_edge_densities_are_bit_identical(self, rng, density):
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        grad = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
        conv = _masked_conv(np.random.default_rng(1), density)
        engine.configure(density_threshold=0.0)
        dense = _run_step(conv, x, grad)
        _sparse_dispatch()
        sparse = _run_step(conv, x, grad)
        # Outputs and input gradients are exact: at 100% the dispatch
        # falls back to the identical dense kernels, and at 0% both
        # paths produce exact zeros / pure bias.
        assert np.array_equal(dense[0], sparse[0])
        assert np.array_equal(dense[1], sparse[1])
        for name in dense[2]:
            if density == 1.0:
                assert np.array_equal(dense[2][name], sparse[2][name]), name
            else:
                # At 0% the (dense, growth-signal) weight gradient is
                # computed through the batched kernel-major GEMM — the
                # same sums associated differently.
                np.testing.assert_allclose(
                    dense[2][name], sparse[2][name], rtol=1e-5,
                    atol=1e-6, err_msg=name,
                )

    @pytest.mark.parametrize("density", [0.1, 0.25, 0.5])
    def test_intermediate_densities_match_tightly(self, rng, density):
        # Dropping exactly-zero rows is mathematically exact, but the
        # smaller GEMM shapes may re-associate partial sums, so the
        # guarantee at intermediate densities is ULP-level closeness,
        # not byte equality (which is why dispatch is opt-in).
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        grad = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
        conv = _masked_conv(np.random.default_rng(1), density)
        engine.configure(density_threshold=0.0)
        dense = _run_step(conv, x, grad)
        _sparse_dispatch()
        sparse = _run_step(conv, x, grad)
        np.testing.assert_allclose(dense[0], sparse[0], rtol=1e-5,
                                   atol=1e-6)
        np.testing.assert_allclose(dense[1], sparse[1], rtol=1e-5,
                                   atol=1e-6)
        for name in dense[2]:
            np.testing.assert_allclose(
                dense[2][name], sparse[2][name], rtol=1e-5, atol=1e-6,
                err_msg=name,
            )

    def test_pruned_channels_output_exactly_bias(self, rng):
        conv = _masked_conv(np.random.default_rng(1), 0.25)
        conv.bias.data = rng.normal(size=(8,)).astype(np.float32)
        _sparse_dispatch()
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        out = conv(x)
        active = set(conv.weight.active_output_rows().tolist())
        for channel in range(8):
            if channel not in active:
                np.testing.assert_array_equal(
                    out[:, channel], conv.bias.data[channel]
                )

    def test_linear_dispatch_matches_dense(self, rng):
        layer = Linear(6, 5, rng=np.random.default_rng(1))
        mask = structured_row_mask(layer.weight.shape, 0.4,
                                   np.random.default_rng(3))
        layer.weight.set_mask(mask)
        layer.weight.apply_mask()
        x = rng.normal(size=(3, 6)).astype(np.float32)
        grad = rng.normal(size=(3, 5)).astype(np.float32)
        engine.configure(density_threshold=0.0)
        dense = _run_step(layer, x, grad)
        _sparse_dispatch()
        sparse = _run_step(layer, x, grad)
        np.testing.assert_allclose(dense[0], sparse[0], rtol=1e-5,
                                   atol=1e-6)
        np.testing.assert_allclose(dense[1], sparse[1], rtol=1e-5,
                                   atol=1e-6)
        for name in dense[2]:
            np.testing.assert_allclose(
                dense[2][name], sparse[2][name], rtol=1e-5, atol=1e-6,
                err_msg=name,
            )

    def test_growth_signal_survives_full_pruning_by_default(self, rng):
        # Paper Eq. 6: gradients at pruned positions are the growth
        # signal; the dispatch must keep them dense unless the caller
        # opted into masked weight grads.
        _sparse_dispatch()
        conv = _masked_conv(np.random.default_rng(1), 0.0)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        out = conv(x)
        conv.backward(np.ones_like(out))
        assert np.abs(conv.weight.grad).sum() > 0.0

    def test_masked_weight_grads_skip_pruned_rows_only(self, rng):
        _sparse_dispatch()
        conv = _masked_conv(np.random.default_rng(1), 0.5)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        grad = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
        dense = _run_step(conv, x, grad)
        with engine.masked_weight_grads():
            masked = _run_step(conv, x, grad)
        active = conv.weight.active_output_rows()
        pruned = np.setdiff1d(np.arange(8), active)
        assert np.array_equal(
            masked[2]["weight"][pruned], np.zeros_like(
                masked[2]["weight"][pruned])
        )
        np.testing.assert_allclose(
            masked[2]["weight"][active], dense[2]["weight"][active],
            rtol=1e-5, atol=1e-6,
        )
        # Inputs gradients and outputs are untouched by the grad mode.
        np.testing.assert_array_equal(masked[0], dense[0])
        np.testing.assert_array_equal(masked[1], dense[1])

    def test_masked_updates_match_dense_training(self, rng):
        # The masked SGD update (Eq. 5) discards pruned-row gradients,
        # so a training step under masked_weight_grads must produce the
        # same weights as one with dense gradients.
        def train(masked_mode):
            layer = Linear(6, 5, rng=np.random.default_rng(1))
            mask = structured_row_mask(layer.weight.shape, 0.4,
                                       np.random.default_rng(3))
            layer.weight.set_mask(mask)
            layer.weight.apply_mask()
            optimizer = SGD(layer, lr=0.1, momentum=0.9)
            x = np.random.default_rng(5).normal(size=(3, 6)).astype(
                np.float32)
            grad = np.ones((3, 5), dtype=np.float32)
            for _ in range(3):
                if masked_mode:
                    with engine.masked_weight_grads():
                        layer(x)
                        layer.zero_grad()
                        layer.backward(grad)
                else:
                    layer(x)
                    layer.zero_grad()
                    layer.backward(grad)
                optimizer.step()
            return layer.weight.data.copy()

        _sparse_dispatch()
        np.testing.assert_allclose(
            train(True), train(False), rtol=1e-6, atol=1e-7
        )


# ----------------------------------------------------------------------
# Inference fast path and cache lifecycle
# ----------------------------------------------------------------------
def _layer_zoo(rng):
    return [
        (Conv2d(2, 3, 3, padding=1, rng=rng), (2, 2, 6, 6), (2, 3, 6, 6)),
        (Linear(4, 3, rng=rng), (2, 4), (2, 3)),
        (MaxPool2d(2), (2, 2, 6, 6), (2, 2, 3, 3)),
        (AvgPool2d(2), (2, 2, 6, 6), (2, 2, 3, 3)),
        (BatchNorm2d(2), (2, 2, 6, 6), (2, 2, 6, 6)),
        (ReLU(), (2, 2, 6, 6), (2, 2, 6, 6)),
    ]


class TestInferenceAndCaches:
    def test_inference_mode_skips_caches_and_preserves_values(self, rng):
        for layer, in_shape, _ in _layer_zoo(np.random.default_rng(2)):
            x = rng.normal(size=in_shape).astype(np.float32)
            layer.eval()
            reference = layer(x)
            layer.free_caches()
            with engine.inference_mode():
                fast = layer(x)
            np.testing.assert_array_equal(reference, fast)

    def test_backward_after_inference_forward_raises(self, rng):
        for layer, in_shape, out_shape in _layer_zoo(
            np.random.default_rng(2)
        ):
            x = rng.normal(size=in_shape).astype(np.float32)
            with engine.inference_mode():
                layer(x)
            with pytest.raises(RuntimeError):
                layer.backward(np.ones(out_shape, dtype=np.float32))

    def test_second_backward_without_forward_raises(self, rng):
        # Backward must free its cache (peak-memory regression guard).
        for layer, in_shape, out_shape in _layer_zoo(
            np.random.default_rng(2)
        ):
            x = rng.normal(size=in_shape).astype(np.float32)
            layer(x)
            layer.backward(np.ones(out_shape, dtype=np.float32))
            with pytest.raises(RuntimeError):
                layer.backward(np.ones(out_shape, dtype=np.float32))

    def test_free_caches_drops_pending_backward(self, rng):
        for layer, in_shape, out_shape in _layer_zoo(
            np.random.default_rng(2)
        ):
            x = rng.normal(size=in_shape).astype(np.float32)
            layer(x)
            layer.free_caches()
            with pytest.raises(RuntimeError):
                layer.backward(np.ones(out_shape, dtype=np.float32))

    def test_sparse_dispatch_respects_inference_mode(self, rng):
        _sparse_dispatch()
        conv = _masked_conv(np.random.default_rng(1), 0.25)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        with engine.inference_mode():
            conv(x)
        with pytest.raises(RuntimeError):
            conv.backward(np.ones((2, 8, 6, 6), dtype=np.float32))


class TestEngineConfig:
    def test_configure_validates_threshold(self):
        with pytest.raises(ValueError):
            engine.configure(density_threshold=1.5)
        with pytest.raises(ValueError):
            engine.configure(density_threshold=-0.1)

    def test_default_is_dispatch_off(self):
        assert engine.EngineConfig().density_threshold == 0.0

    def test_contexts_nest(self):
        assert engine.caching_enabled()
        with engine.inference_mode():
            with engine.inference_mode():
                assert not engine.caching_enabled()
            assert not engine.caching_enabled()
        assert engine.caching_enabled()
        assert not engine.weight_grads_masked()
        with engine.masked_weight_grads():
            assert engine.weight_grads_masked()
        assert not engine.weight_grads_masked()


class TestEndToEndDispatch:
    def test_density_sweep_run_matches_default_engine(self):
        """A fedtiny run with sparse dispatch enabled must agree with the
        byte-identical default engine on everything discrete (densities,
        byte counters, FLOPs) and track its metrics to float precision.

        The seed-0 byte-identity of the *default* engine against the
        pre-change substrate is pinned separately by
        test_determinism_golden.py.
        """
        from repro.experiments import run_experiment

        kwargs = dict(scale="tiny", pool_size=2, seed=0, rounds=2)
        baseline = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1, **kwargs
        )
        engine.configure(density_threshold=1.0)
        dispatched = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1, **kwargs
        )
        for base_round, disp_round in zip(
            baseline.rounds, dispatched.rounds
        ):
            assert base_round.density == disp_round.density
            assert base_round.upload_bytes == disp_round.upload_bytes
            assert base_round.download_bytes == disp_round.download_bytes
            assert base_round.train_flops == disp_round.train_flops
            # ULP-level kernel differences compound through SGD, so
            # losses agree only to a small band, not to float precision.
            assert base_round.test_loss == pytest.approx(
                disp_round.test_loss, rel=2e-2
            )
        assert baseline.final_density == dispatched.final_density
        assert baseline.total_comm_bytes == dispatched.total_comm_bytes


class TestMaskedForwardUnmaskedBackward:
    def test_fully_pruned_conv_survives_context_exit(self, rng):
        """The masked-grads decision is recorded at forward time, so a
        backward outside the context must not expect a column matrix the
        forward never built."""
        _sparse_dispatch()
        conv = _masked_conv(np.random.default_rng(1), 0.0)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        with engine.masked_weight_grads():
            out = conv(x)
        grad_in = conv.backward(np.ones_like(out))  # outside the context
        np.testing.assert_array_equal(grad_in, 0.0)
        # The forward skipped the column matrix, so no weight gradient
        # was produced — growth signals require forward outside the
        # masked context.
        np.testing.assert_array_equal(conv.weight.grad, 0.0)
