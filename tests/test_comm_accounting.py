"""Tests for end-to-end communication accounting."""

import numpy as np
import pytest

from repro.core import FedTiny, FedTinyConfig
from repro.data import SyntheticSpec, generate
from repro.fl import FederatedContext, FLConfig
from repro.nn.models import build_model
from repro.pruning import PruningSchedule


@pytest.fixture(scope="module")
def setup():
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=200, num_test=60,
            image_size=8, noise=0.4, modes_per_class=1, seed=31,
        )
    )
    public, federated = train.split(0.2, np.random.default_rng(2))
    return public, federated, test


def _ctx(setup, rounds=3):
    public, federated, test = setup
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=5
    )
    config = FLConfig(
        num_clients=3, rounds=rounds, local_epochs=1, batch_size=16,
        lr=0.05, seed=0,
    )
    return (
        FederatedContext(model, federated, test, config,
                         dataset_name="unit", model_name="resnet18"),
        public,
    )


class TestRoundDeltas:
    def test_round_records_hold_deltas_not_cumulative(self, setup):
        ctx, public = _ctx(setup)
        result = ctx.new_result("probe", 1.0)
        for round_index in range(1, 4):
            ctx.run_fedavg_round()
            ctx.record_round(result, round_index, train_flops=1.0)
        # Every round moves the same dense model, so the deltas are all
        # equal — cumulative recording would make them grow.
        uploads = [r.upload_bytes for r in result.rounds]
        assert len(set(uploads)) == 1
        assert uploads[0] > 0

    def test_totals_match_tracker(self, setup):
        ctx, public = _ctx(setup)
        result = ctx.new_result("probe", 1.0)
        for round_index in range(1, 4):
            ctx.run_fedavg_round()
            ctx.record_round(result, round_index, train_flops=1.0)
        assert result.total_upload_bytes == ctx.comm.upload_bytes
        assert result.total_download_bytes == ctx.comm.download_bytes

    def test_sync_comm_baseline_excludes_prior_traffic(self, setup):
        ctx, public = _ctx(setup)
        ctx.comm.record_download(12345, phase="selection")
        ctx.sync_comm_baseline()
        result = ctx.new_result("probe", 1.0)
        ctx.run_fedavg_round()
        ctx.record_round(result, 1, train_flops=1.0)
        assert result.total_download_bytes == (
            ctx.comm.download_bytes - 12345
        )


class TestFedTinyCommSplit:
    def test_selection_bytes_not_double_counted(self, setup):
        ctx, public = _ctx(setup, rounds=2)
        config = FedTinyConfig(
            target_density=0.1, pool_size=2,
            schedule=PruningSchedule(delta_rounds=1, stop_round=2),
            pretrain_epochs=1,
        )
        result = FedTiny(config).run(ctx, public)
        training = (
            result.total_upload_bytes + result.total_download_bytes
        )
        # total_comm = training rounds + one-off selection, and the
        # tracker's grand total matches exactly.
        assert result.total_comm_bytes == (
            training + result.selection_comm_bytes
        )
        assert result.total_comm_bytes == ctx.comm.total_bytes

    def test_sparse_training_cheaper_than_dense(self, setup):
        ctx, public = _ctx(setup, rounds=2)
        config = FedTinyConfig(
            target_density=0.05, pool_size=2,
            schedule=PruningSchedule(delta_rounds=1, stop_round=2),
            pretrain_epochs=1,
        )
        result = FedTiny(config).run(ctx, public)
        dense_ctx, dense_public = _ctx(setup, rounds=2)
        from repro.baselines import FedAvgBaseline

        dense = FedAvgBaseline(pretrain_epochs=1).run(
            dense_ctx, dense_public
        )
        sparse_per_round = result.rounds[-1].upload_bytes
        dense_per_round = dense.rounds[-1].upload_bytes
        assert sparse_per_round < 0.5 * dense_per_round
