"""Tests for end-to-end communication accounting."""

import numpy as np
import pytest

from repro.core import FedTiny, FedTinyConfig
from repro.data import SyntheticSpec, generate
from repro.fl import FederatedContext, FLConfig
from repro.fl.payload import pack_model_state, pack_state, packed_nbytes
from repro.nn.models import build_model
from repro.pruning import PruningSchedule
from repro.sparse.mask import MaskSet
from repro.sparse.storage import dense_bytes, sparse_bytes


@pytest.fixture(scope="module")
def setup():
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=200, num_test=60,
            image_size=8, noise=0.4, modes_per_class=1, seed=31,
        )
    )
    public, federated = train.split(0.2, np.random.default_rng(2))
    return public, federated, test


def _ctx(setup, rounds=3):
    public, federated, test = setup
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=5
    )
    config = FLConfig(
        num_clients=3, rounds=rounds, local_epochs=1, batch_size=16,
        lr=0.05, seed=0,
    )
    return (
        FederatedContext(model, federated, test, config,
                         dataset_name="unit", model_name="resnet18"),
        public,
    )


class TestRoundDeltas:
    def test_round_records_hold_deltas_not_cumulative(self, setup):
        ctx, public = _ctx(setup)
        result = ctx.new_result("probe", 1.0)
        for round_index in range(1, 4):
            ctx.run_fedavg_round()
            ctx.record_round(result, round_index, train_flops=1.0)
        # Every round moves the same dense model, so the deltas are all
        # equal — cumulative recording would make them grow.
        uploads = [r.upload_bytes for r in result.rounds]
        assert len(set(uploads)) == 1
        assert uploads[0] > 0

    def test_totals_match_tracker(self, setup):
        ctx, public = _ctx(setup)
        result = ctx.new_result("probe", 1.0)
        for round_index in range(1, 4):
            ctx.run_fedavg_round()
            ctx.record_round(result, round_index, train_flops=1.0)
        assert result.total_upload_bytes == ctx.comm.upload_bytes
        assert result.total_download_bytes == ctx.comm.download_bytes

    def test_sync_comm_baseline_excludes_prior_traffic(self, setup):
        ctx, public = _ctx(setup)
        ctx.comm.record_download(12345, phase="selection")
        ctx.sync_comm_baseline()
        result = ctx.new_result("probe", 1.0)
        ctx.run_fedavg_round()
        ctx.record_round(result, 1, train_flops=1.0)
        assert result.total_download_bytes == (
            ctx.comm.download_bytes - 12345
        )


class TestFedTinyCommSplit:
    def test_selection_bytes_not_double_counted(self, setup):
        ctx, public = _ctx(setup, rounds=2)
        config = FedTinyConfig(
            target_density=0.1, pool_size=2,
            schedule=PruningSchedule(delta_rounds=1, stop_round=2),
            pretrain_epochs=1,
        )
        result = FedTiny(config).run(ctx, public)
        training = (
            result.total_upload_bytes + result.total_download_bytes
        )
        # total_comm = training rounds + one-off selection, and the
        # tracker's grand total matches exactly.
        assert result.total_comm_bytes == (
            training + result.selection_comm_bytes
        )
        assert result.total_comm_bytes == ctx.comm.total_bytes

    def test_selection_traffic_split_by_direction(self, setup):
        """Selection records uploads through the upload channel.

        Candidate masks and aggregated BN statistics travel down; the
        per-device BN statistics and scalar losses travel up. Both land
        under the "selection" phase and their sum is the report total.
        """
        ctx, public = _ctx(setup, rounds=2)
        config = FedTinyConfig(
            target_density=0.1, pool_size=2,
            schedule=PruningSchedule(delta_rounds=1, stop_round=2),
            pretrain_epochs=1,
        )
        upload_before = ctx.comm.upload_bytes
        download_before = ctx.comm.download_bytes
        result = FedTiny(config).run(ctx, public)
        # Per-round deltas exclude selection, so the tracker's totals
        # minus the recorded round deltas leave exactly the selection
        # split on each channel.
        selection_upload = (
            ctx.comm.upload_bytes - upload_before
            - result.total_upload_bytes
        )
        selection_download = (
            ctx.comm.download_bytes - download_before
            - result.total_download_bytes
        )
        assert selection_upload > 0
        assert selection_download > 0
        assert selection_upload + selection_download == (
            result.selection_comm_bytes
        )
        assert ctx.comm.phase_bytes("selection") == (
            result.selection_comm_bytes
        )

    def test_sparse_training_cheaper_than_dense(self, setup):
        ctx, public = _ctx(setup, rounds=2)
        config = FedTinyConfig(
            target_density=0.05, pool_size=2,
            schedule=PruningSchedule(delta_rounds=1, stop_round=2),
            pretrain_epochs=1,
        )
        result = FedTiny(config).run(ctx, public)
        dense_ctx, dense_public = _ctx(setup, rounds=2)
        from repro.baselines import FedAvgBaseline

        dense = FedAvgBaseline(pretrain_epochs=1).run(
            dense_ctx, dense_public
        )
        sparse_per_round = result.rounds[-1].upload_bytes
        dense_per_round = dense.rounds[-1].upload_bytes
        assert sparse_per_round < 0.5 * dense_per_round


class TestPackedPayloadReconciliation:
    """Tracker bytes == measured packed size == storage.py prediction.

    The three byte counts — what :class:`CommTracker` records per
    exchange, what the transport codec actually packs, and what the
    ``storage.py`` COO-vs-dense model predicts — must agree exactly at
    every density, including both sides of the 50% crossover where the
    codec switches from sparse to dense encoding.
    """

    def _masked_ctx(self, setup, density):
        ctx, public = _ctx(setup, rounds=1)
        if density >= 1.0:
            masks = MaskSet.dense(ctx.model)
        else:
            rng = np.random.default_rng(17)
            masks = {}
            for name, param in ctx.model.named_parameters():
                if not param.prunable:
                    continue
                masks[name] = rng.random(param.shape) < density
            masks = MaskSet(masks)
        ctx.install_masks(masks)
        return ctx

    def _storage_prediction(self, ctx):
        masks = ctx.server.masks
        total = 0
        for name, param in ctx.model.named_parameters():
            if name in masks:
                total += sparse_bytes(masks.layer_active(name), param.size)
            else:
                total += dense_bytes(param.size)
        for _, buf in ctx.model.named_buffers():
            total += dense_bytes(int(buf.size))
        return total

    @pytest.mark.parametrize("density", [0.0, 0.1, 0.5, 1.0])
    def test_three_way_agreement(self, setup, density):
        ctx = self._masked_ctx(setup, density)
        # Measured: actually pack the state the server would broadcast.
        ctx.server.load_into_model()
        measured = pack_model_state(ctx.model, ctx.server.masks).nbytes
        assert measured == pack_state(
            ctx.server.state, ctx.server.masks
        ).nbytes
        # Modeled: the storage.py COO/dense prediction.
        predicted = self._storage_prediction(ctx)
        assert measured == predicted
        assert packed_nbytes(ctx.model, ctx.server.masks) == predicted
        # Recorded: run one round and check the tracker charged exactly
        # the packed size per client per direction.
        ctx.comm.reset()
        ctx.run_fedavg_round()
        clients = ctx.config.num_clients
        assert ctx.comm.upload_bytes == clients * measured
        assert ctx.comm.download_bytes == clients * measured

    def test_crossover_boundary_tensors(self):
        # At exactly 50% density COO costs the same as dense and the
        # codec must fall back to dense; just below it stays sparse.
        assert sparse_bytes(50, 100) == dense_bytes(100)
        assert sparse_bytes(49, 100) == 49 * 8
        model = build_model(
            "resnet18", num_classes=4, width_multiplier=0.125, seed=5
        )
        for name, param in model.named_parameters():
            if param.prunable and param.size % 2 == 0:
                half = np.zeros(param.size, dtype=bool)
                half[: param.size // 2] = True
                masks = MaskSet({name: half.reshape(param.shape)})
                payload = pack_state(
                    {name: param.data * half.reshape(param.shape)}, masks
                )
                spec = payload.specs[0]
                assert spec.encoding == "dense"
                assert spec.nbytes == dense_bytes(param.size)
                break

    def test_process_backend_upload_payload_matches_accounting(self, setup):
        ctx, _ = _ctx(setup, rounds=1)
        from repro.fl.executor import build_executor

        ctx.executor.close()
        ctx.executor = build_executor("process", max_workers=2)
        try:
            results = ctx.executor.run_clients(ctx, list(ctx.clients))
            expected = ctx.model_exchange_bytes()
            for result in results:
                assert result.payload is not None
                assert result.payload.nbytes == expected
        finally:
            ctx.close()
