"""Equivalence and unit tests for the candidate-selection fast path.

The selection engine must be *byte-identical* to the reference
per-(candidate, client) loop in every reported output: candidate
losses, selected index, comm bytes (split by direction), and FLOP
accounting — across pool sizes, with BN recalibration on and off, and
under both execution backends. A second suite covers the packed
synchronous aggregation fast path and the engine's lowering cache.
"""

import numpy as np
import pytest

from repro.core.adaptive_bn import AdaptiveBNSelection
from repro.core.selection_engine import CandidateInstaller
from repro.data.synthetic import build_dataset
from repro.fl.simulation import FederatedContext, FLConfig
from repro.fl.state import get_state
from repro.nn import engine
from repro.nn.models import build_model
from repro.pruning.candidate_pool import generate_candidate_pool


@pytest.fixture(scope="module")
def splits():
    train, test = build_dataset(
        "cifar10", num_train=260, num_test=40, image_size=16, seed=3
    )
    _, federated = train.split(0.2, np.random.default_rng(9))
    return federated, test


def _make_ctx(splits, executor="serial", clients=4):
    federated, test = splits
    model = build_model(
        "resnet18", num_classes=10, width_multiplier=0.125,
        image_size=16, seed=1,
    )
    config = FLConfig(
        num_clients=clients, rounds=1, local_epochs=1, batch_size=16,
        executor=executor, executor_workers=2, seed=0,
    )
    return FederatedContext(model, federated, test, config)


def _make_pool(ctx, pool_size):
    return generate_candidate_pool(
        ctx.model, 0.1, pool_size, np.random.default_rng(17), noise=0.9
    )


def _report_tuple(report):
    return (
        report.candidate_losses,
        report.selected_index,
        report.comm_bytes,
        report.download_bytes,
        report.upload_bytes,
        report.flops_per_device,
        report.pool_size,
        report.used_bn_recalibration,
    )


class TestFastPathEquivalence:
    @pytest.mark.parametrize("pool_size", [1, 3])
    @pytest.mark.parametrize("use_bn", [True, False])
    def test_fast_path_matches_reference(self, splits, pool_size, use_bn):
        ctx = _make_ctx(splits)
        pool = _make_pool(ctx, pool_size)
        selector = AdaptiveBNSelection(
            use_bn_recalibration=use_bn, batch_size=16
        )
        chosen_ref, ref = selector.select_reference(ctx, pool)
        state_ref = get_state(ctx.model)
        chosen_fast, fast = selector.select(ctx, pool)
        state_fast = get_state(ctx.model)
        assert _report_tuple(fast) == _report_tuple(ref)
        assert chosen_fast is chosen_ref
        # Both paths must leave the shared model in the server state.
        for name in state_ref:
            np.testing.assert_array_equal(
                state_fast[name], state_ref[name], err_msg=name
            )

    def test_selection_comm_split_by_direction(self, splits):
        ctx = _make_ctx(splits)
        pool = _make_pool(ctx, 2)
        selector = AdaptiveBNSelection(batch_size=16)
        _, report = selector.select(ctx, pool)
        assert report.download_bytes > 0
        assert report.upload_bytes > 0
        assert report.comm_bytes == (
            report.download_bytes + report.upload_bytes
        )
        # The tracker recorded the same split under the selection phase.
        assert ctx.comm.download_bytes == report.download_bytes
        assert ctx.comm.upload_bytes == report.upload_bytes
        assert ctx.comm.phase_bytes("selection") == report.comm_bytes

    def test_process_executor_matches_serial(self, splits):
        serial_ctx = _make_ctx(splits, executor="serial")
        process_ctx = _make_ctx(splits, executor="process")
        selector = AdaptiveBNSelection(batch_size=16)
        try:
            pool = _make_pool(serial_ctx, 2)
            _, serial = selector.select(serial_ctx, pool)
            _, process = selector.select(
                process_ctx, _make_pool(process_ctx, 2)
            )
            assert _report_tuple(process) == _report_tuple(serial)
        finally:
            serial_ctx.close()
            process_ctx.close()

    def test_repeated_selection_is_deterministic(self, splits):
        ctx = _make_ctx(splits)
        pool = _make_pool(ctx, 2)
        selector = AdaptiveBNSelection(batch_size=16)
        _, first = selector.select(ctx, pool)
        _, second = selector.select(ctx, pool)
        assert first.candidate_losses == second.candidate_losses
        assert first.selected_index == second.selected_index

    def test_empty_pool_raises(self, splits):
        ctx = _make_ctx(splits)
        with pytest.raises(ValueError):
            AdaptiveBNSelection().select(ctx, [])


class TestCandidateInstaller:
    def test_install_matches_reference_install(self, splits):
        ctx = _make_ctx(splits)
        pool = _make_pool(ctx, 2)
        selector = AdaptiveBNSelection(batch_size=16)
        installer = CandidateInstaller(ctx, pool)
        for index, candidate in enumerate(pool):
            selector._install_candidate(ctx, candidate)
            reference = {
                k: v.view(np.uint32)
                for k, v in get_state(ctx.model).items()
            }
            reference_masks = {
                name: param.mask.copy()
                for name, param in ctx.model.named_parameters()
                if param.mask is not None
            }
            installer.install(index)
            fast = get_state(ctx.model)
            for name in reference:
                assert (
                    fast[name].view(np.uint32) == reference[name]
                ).all(), name
            for name, param in ctx.model.named_parameters():
                if name in reference_masks:
                    np.testing.assert_array_equal(
                        param.mask, reference_masks[name], err_msg=name
                    )


class TestLoweringCache:
    def test_unregistered_inputs_bypass_the_cache(self):
        cache = engine.LoweringCache()
        calls = []
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        out = cache.lowering(object(), x, ("k",), lambda: calls.append(1))
        assert calls == [1]
        assert cache.hits == 0 and cache.misses == 0

    def test_registered_inputs_memoize_by_identity(self):
        cache = engine.LoweringCache()
        layer = object()
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        cache.register_source(x, ("client", 0))
        first = cache.lowering(layer, x, ("k",), lambda: np.arange(3))
        second = cache.lowering(
            layer, x, ("k",), lambda: pytest.fail("must not recompute")
        )
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)
        # An equal-valued but distinct array is not the registered
        # source: the cache must not serve the memoized lowering.
        other = x.copy()
        computed = cache.lowering(layer, other, ("k",), lambda: "fresh")
        assert computed == "fresh"

    def test_conv_forward_with_cache_is_bit_identical(self, splits):
        federated, _ = splits
        model = build_model(
            "small_cnn", num_classes=10, image_size=16, seed=1
        )
        images = federated.images[:4]
        with engine.inference_mode():
            reference = model(images)
            cache = engine.LoweringCache()
            cache.register_source(images, ("batch", 0))
            with engine.lowering_cache(cache):
                primed = model(images)  # miss: primes the cache
                served = model(images)  # hit: served from the cache
        assert cache.hits > 0
        assert (reference.view(np.uint32) == primed.view(np.uint32)).all()
        assert (reference.view(np.uint32) == served.view(np.uint32)).all()


class TestPackedSyncAggregation:
    def test_packed_round_matches_dense_decode(self, splits):
        """need_states=False + process uploads must commit the same
        global state bytes as the dict-decoding path."""
        dense_ctx = _make_ctx(splits, executor="process")
        packed_ctx = _make_ctx(splits, executor="process")
        try:
            dense_ctx.run_fedavg_round(need_states=True)
            packed_ctx.run_fedavg_round(need_states=False)
            for name, value in dense_ctx.server.state.items():
                assert (
                    value.view(np.uint32)
                    == packed_ctx.server.state[name].view(np.uint32)
                ).all(), name
        finally:
            dense_ctx.close()
            packed_ctx.close()

    def test_packed_round_returns_no_states(self, splits):
        ctx = _make_ctx(splits, executor="process")
        try:
            states = ctx.run_fedavg_round(need_states=False)
            assert states == []
            assert len(ctx.last_participants) == len(ctx.clients)
        finally:
            ctx.close()

    def test_serial_round_ignores_need_states_flag(self, splits):
        # Serial uploads are plain dicts; the packed fast path must not
        # engage and the round still aggregates every participant.
        ctx = _make_ctx(splits, executor="serial")
        before = {k: v.copy() for k, v in ctx.server.state.items()}
        ctx.run_fedavg_round(need_states=False)
        changed = any(
            not np.array_equal(ctx.server.state[k], before[k])
            for k in before
        )
        assert changed
