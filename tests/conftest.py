"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, SyntheticSpec, generate
from repro.nn.models import build_model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_resnet():
    """A width-0.125 ResNet-18 (fast enough for gradient work)."""
    return build_model("resnet18", num_classes=10, width_multiplier=0.125,
                       seed=7)


@pytest.fixture
def tiny_vgg():
    return build_model(
        "vgg11", num_classes=10, width_multiplier=0.125, image_size=16,
        classifier_hidden=(32,), seed=7,
    )


@pytest.fixture
def tiny_dataset() -> tuple[Dataset, Dataset]:
    """A small, learnable synthetic dataset (train, test)."""
    spec = SyntheticSpec(
        name="unit",
        num_classes=4,
        num_train=160,
        num_test=80,
        image_size=8,
        noise=0.4,
        modes_per_class=1,
        seed=3,
    )
    return generate(spec)


@pytest.fixture
def small_batch(rng) -> tuple[np.ndarray, np.ndarray]:
    images = rng.normal(size=(6, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 4, size=6)
    return images, labels
