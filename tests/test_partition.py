"""Tests for federated data partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Dataset,
    dirichlet_partition,
    iid_partition,
    partition_dataset,
)


def _labels(n=200, classes=5, seed=0):
    return np.random.default_rng(seed).integers(0, classes, size=n)


class TestDirichletPartition:
    def test_covers_every_sample_exactly_once(self):
        labels = _labels()
        parts = dirichlet_partition(
            labels, 5, alpha=0.5, rng=np.random.default_rng(0)
        )
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(len(labels)))

    def test_min_samples_respected(self):
        labels = _labels()
        parts = dirichlet_partition(
            labels, 8, alpha=0.3, rng=np.random.default_rng(1),
            min_samples=3,
        )
        assert all(len(p) >= 3 for p in parts)

    def test_low_alpha_more_heterogeneous(self):
        """Lower alpha concentrates classes on fewer clients."""
        labels = _labels(n=2000, classes=10, seed=2)

        def mean_entropy(alpha):
            parts = dirichlet_partition(
                labels, 10, alpha, rng=np.random.default_rng(3)
            )
            entropies = []
            for part in parts:
                counts = np.bincount(labels[part], minlength=10)
                p = counts / counts.sum()
                p = p[p > 0]
                entropies.append(-(p * np.log(p)).sum())
            return float(np.mean(entropies))

        assert mean_entropy(0.1) < mean_entropy(10.0)

    def test_validation(self):
        labels = _labels(n=10)
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 0, 0.5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 2, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 20, 0.5, np.random.default_rng(0))

    @settings(max_examples=15, deadline=None)
    @given(
        num_clients=st.integers(2, 6),
        alpha=st.floats(0.1, 10.0),
        seed=st.integers(0, 100),
    )
    def test_partition_property(self, num_clients, alpha, seed):
        labels = _labels(n=300, classes=4, seed=seed)
        parts = dirichlet_partition(
            labels, num_clients, alpha, np.random.default_rng(seed)
        )
        assert len(parts) == num_clients
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(300))


class TestIidPartition:
    def test_equal_sizes(self):
        parts = iid_partition(100, 4, np.random.default_rng(0))
        assert [len(p) for p in parts] == [25, 25, 25, 25]

    def test_covers_everything(self):
        parts = iid_partition(103, 4, np.random.default_rng(0))
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(103))

    def test_validation(self):
        with pytest.raises(ValueError):
            iid_partition(3, 5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            iid_partition(10, 0, np.random.default_rng(0))


class TestPartitionDataset:
    def _dataset(self, n=120):
        rng = np.random.default_rng(0)
        return Dataset(
            rng.normal(size=(n, 1, 2, 2)).astype(np.float32),
            rng.integers(0, 4, size=n),
        )

    def test_dirichlet_mode(self):
        shards = partition_dataset(
            self._dataset(), 4, alpha=0.5, rng=np.random.default_rng(0)
        )
        assert len(shards) == 4
        assert sum(len(s) for s in shards) == 120

    def test_iid_mode(self):
        shards = partition_dataset(
            self._dataset(), 4, alpha=None, rng=np.random.default_rng(0)
        )
        assert [len(s) for s in shards] == [30, 30, 30, 30]
