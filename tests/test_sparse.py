"""Tests for the sparsity substrate: MaskSet, TopKBuffer, storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Linear, Sequential, ReLU
from repro.sparse import (
    MaskSet,
    TopKBuffer,
    bytes_to_mb,
    dense_bytes,
    mask_set_bytes,
    model_parameter_bytes,
    sparse_bytes,
)


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))


class TestMaskSet:
    def test_dense_masks(self):
        model = _model()
        masks = MaskSet.dense(model)
        assert masks.density == 1.0
        assert masks.total == 6 * 8 + 8 * 4
        assert set(masks.layer_names()) == {"m0.weight", "m2.weight"}

    def test_density_accounting(self):
        model = _model()
        masks = MaskSet.dense(model)
        m = np.zeros((8, 6), dtype=bool)
        m[0, :3] = True
        masks["m0.weight"] = m
        assert masks.num_active == 3 + 32
        assert masks.layer_density("m0.weight") == pytest.approx(3 / 48)

    def test_apply_zeroes_weights(self):
        model = _model()
        masks = MaskSet.dense(model)
        masks["m0.weight"] = np.zeros((8, 6), dtype=bool)
        masks.apply(model)
        np.testing.assert_array_equal(model[0].weight.data, 0.0)
        assert model[0].weight.mask is not None

    def test_apply_unknown_layer_raises(self):
        model = _model()
        masks = MaskSet({"nope": np.ones((2, 2), dtype=bool)})
        with pytest.raises(KeyError):
            masks.apply(model)

    def test_from_model_roundtrip(self):
        model = _model()
        original = MaskSet.dense(model)
        original["m2.weight"] = np.zeros((4, 8), dtype=bool)
        original.apply(model)
        recovered = MaskSet.from_model(model)
        assert recovered.difference_count(original) == 0

    def test_matches_model(self):
        model = _model()
        assert MaskSet.dense(model).matches_model(model)
        assert not MaskSet({"x": np.ones(3, dtype=bool)}).matches_model(model)

    def test_shape_mismatch_on_setitem_raises(self):
        masks = MaskSet({"a": np.ones((2, 2), dtype=bool)})
        with pytest.raises(ValueError):
            masks["a"] = np.ones((3, 3), dtype=bool)

    def test_union_intersection(self):
        a = MaskSet({"w": np.array([True, False, True, False])})
        b = MaskSet({"w": np.array([True, True, False, False])})
        np.testing.assert_array_equal(
            a.union(b)["w"], [True, True, True, False]
        )
        np.testing.assert_array_equal(
            a.intersection(b)["w"], [True, False, False, False]
        )
        assert a.difference_count(b) == 2

    def test_incompatible_combination_raises(self):
        a = MaskSet({"w": np.ones(3, dtype=bool)})
        b = MaskSet({"v": np.ones(3, dtype=bool)})
        with pytest.raises(ValueError):
            a.union(b)

    def test_copy_is_independent(self):
        a = MaskSet({"w": np.ones(4, dtype=bool)})
        b = a.copy()
        b["w"] = np.zeros(4, dtype=bool)
        assert a.num_active == 4

    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), size=st.integers(1, 64))
    def test_density_in_unit_interval(self, data, size):
        bits = data.draw(
            st.lists(st.booleans(), min_size=size, max_size=size)
        )
        masks = MaskSet({"w": np.array(bits, dtype=bool)})
        assert 0.0 <= masks.density <= 1.0
        assert masks.num_active == sum(bits)


class TestTopKBuffer:
    def test_keeps_largest_magnitudes(self):
        buf = TopKBuffer(2)
        for index, value in enumerate([0.1, -5.0, 3.0, 0.2]):
            buf.push(index, value)
        indices, values = buf.items()
        assert set(indices) == {1, 2}
        assert abs(values[0]) >= abs(values[1])

    def test_capacity_zero(self):
        buf = TopKBuffer(0)
        buf.push(0, 1.0)
        indices, values = buf.items()
        assert len(indices) == 0

    def test_memory_bound(self):
        buf = TopKBuffer(5)
        for i in range(1000):
            buf.push(i, float(i))
        assert buf.memory_entries() == 5
        assert buf.num_pushed == 1000

    def test_min_magnitude_tracks_weakest(self):
        buf = TopKBuffer(2)
        buf.push(0, 1.0)
        buf.push(1, 3.0)
        assert buf.min_magnitude == pytest.approx(1.0)
        buf.push(2, 2.0)
        assert buf.min_magnitude == pytest.approx(2.0)

    def test_push_chunk_matches_scalar_pushes(self, rng):
        values = rng.normal(size=200)
        indices = np.arange(200)
        scalar = TopKBuffer(10)
        for i, v in zip(indices, values):
            scalar.push(i, v)
        chunked = TopKBuffer(10)
        for start in range(0, 200, 37):
            chunked.push_chunk(
                indices[start : start + 37], values[start : start + 37]
            )
        s_idx, s_val = scalar.items()
        c_idx, c_val = chunked.items()
        np.testing.assert_array_equal(np.sort(s_idx), np.sort(c_idx))
        np.testing.assert_allclose(np.sort(s_val), np.sort(c_val), rtol=1e-6)

    def test_chunk_length_mismatch_raises(self):
        buf = TopKBuffer(3)
        with pytest.raises(ValueError):
            buf.push_chunk(np.arange(3), np.zeros(4))

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            TopKBuffer(-1)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=100,
        ),
        capacity=st.integers(1, 20),
    )
    def test_equals_full_topk(self, values, capacity):
        """Streaming result == top-k of the full array by |value|."""
        buf = TopKBuffer(capacity)
        arr = np.array(values, dtype=np.float64)
        for i, v in enumerate(arr):
            buf.push(i, v)
        _, got = buf.items()
        k = min(capacity, len(arr))
        expected = np.sort(np.abs(arr))[::-1][:k]
        np.testing.assert_allclose(
            np.sort(np.abs(got))[::-1],
            expected.astype(np.float32),
            rtol=1e-6,
        )


class TestStorage:
    def test_dense_bytes(self):
        assert dense_bytes(100) == 400

    def test_sparse_bytes_coo(self):
        assert sparse_bytes(10, 1000) == 80

    def test_sparse_falls_back_to_dense(self):
        # At >50% density COO costs more than dense.
        assert sparse_bytes(900, 1000) == dense_bytes(1000)

    def test_sparse_bytes_validation(self):
        with pytest.raises(ValueError):
            sparse_bytes(10, 5)
        with pytest.raises(ValueError):
            sparse_bytes(-1, 5)
        with pytest.raises(ValueError):
            dense_bytes(-1)

    def test_mask_set_bytes(self):
        masks = MaskSet({"w": np.array([True] * 5 + [False] * 95)})
        assert mask_set_bytes(masks) == 5 * 8

    def test_model_parameter_bytes(self):
        model = _model()
        dense_total = model_parameter_bytes(model)
        assert dense_total == 4 * model.num_parameters()
        masks = MaskSet.dense(model)
        masks["m0.weight"] = np.zeros((8, 6), dtype=bool)
        masks.apply(model)
        assert model_parameter_bytes(model) < dense_total

    def test_bytes_to_mb(self):
        assert bytes_to_mb(2_000_000) == pytest.approx(2.0)
