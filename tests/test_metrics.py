"""Tests for FLOPs, memory and evaluation metrics."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.metrics import (
    RoundRecord,
    RunResult,
    bn_update_flops_per_sample,
    device_memory_footprint,
    evaluate,
    forward_flops,
    profile_model,
    training_flops_per_sample,
)
from repro.nn import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.nn.layers import Flatten, GlobalAvgPool2d
from repro.pruning import magnitude_mask_uniform
from repro.sparse import MaskSet


def _simple_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(1, 2, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(2),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(2, 3, rng=rng),
    )


class TestProfileModel:
    def test_conv_macs_by_hand(self):
        model = _simple_model()
        profile = profile_model(model, (1, 4, 4))
        conv = profile.layer("m0")
        # 3x3 kernel, 1 in, 2 out, 4x4 output positions.
        assert conv.forward_macs == 3 * 3 * 1 * 2 * 4 * 4

    def test_linear_macs(self):
        model = _simple_model()
        profile = profile_model(model, (1, 4, 4))
        assert profile.layer("m4").forward_macs == 2 * 3

    def test_all_leaves_profiled(self):
        model = _simple_model()
        profile = profile_model(model, (1, 4, 4))
        kinds = [l.kind for l in profile.layers]
        assert kinds == ["conv", "batchnorm", "relu", "gap", "linear"]

    def test_probing_does_not_break_forward(self, rng):
        model = _simple_model()
        profile_model(model, (1, 4, 4))
        out = model(rng.normal(size=(2, 1, 4, 4)).astype(np.float32))
        assert out.shape == (2, 3)

    def test_resnet_profile_runs(self, tiny_resnet):
        profile = profile_model(tiny_resnet, (3, 16, 16))
        assert profile.dense_forward_flops() > 0
        assert len(profile.weighted_layers()) == len(
            [l for l in profile.layers if l.kind in ("conv", "linear")]
        )


class TestFlopsScaling:
    def test_dense_equals_no_mask(self, tiny_resnet):
        profile = profile_model(tiny_resnet, (3, 16, 16))
        dense = forward_flops(profile, None)
        with_dense_mask = forward_flops(profile, MaskSet.dense(tiny_resnet))
        assert dense == pytest.approx(with_dense_mask)

    def test_sparse_cheaper(self, tiny_resnet):
        profile = profile_model(tiny_resnet, (3, 16, 16))
        masks = magnitude_mask_uniform(tiny_resnet, 0.05)
        assert forward_flops(profile, masks) < forward_flops(profile, None)

    def test_training_flops_is_three_passes_dense(self, tiny_resnet):
        profile = profile_model(tiny_resnet, (3, 16, 16))
        assert training_flops_per_sample(profile, None) == pytest.approx(
            3 * forward_flops(profile, None)
        )

    def test_dense_grad_layers_increase_cost(self, tiny_resnet):
        profile = profile_model(tiny_resnet, (3, 16, 16))
        masks = magnitude_mask_uniform(tiny_resnet, 0.05)
        sparse_cost = training_flops_per_sample(profile, masks)
        all_layers = {l.weight_name for l in profile.weighted_layers()}
        dense_grad_cost = training_flops_per_sample(
            profile, masks, dense_grad_layers=all_layers
        )
        assert dense_grad_cost > sparse_cost
        # Roughly forward(sparse)*2 + forward(dense) when very sparse.
        dense_fwd = forward_flops(profile, None)
        assert dense_grad_cost > dense_fwd

    def test_bn_update_is_forward_only(self, tiny_resnet):
        profile = profile_model(tiny_resnet, (3, 16, 16))
        masks = magnitude_mask_uniform(tiny_resnet, 0.1)
        assert bn_update_flops_per_sample(profile, masks) == pytest.approx(
            forward_flops(profile, masks)
        )

    def test_prunefl_cost_ratio_shape(self, tiny_resnet):
        """At ultra-low density the dense-grad pass dominates: the ratio
        to dense training approaches 1/3 (paper's PruneFL ~0.34x)."""
        profile = profile_model(tiny_resnet, (3, 16, 16))
        masks = magnitude_mask_uniform(tiny_resnet, 0.001)
        all_layers = {l.weight_name for l in profile.weighted_layers()}
        prunefl = training_flops_per_sample(
            profile, masks, dense_grad_layers=all_layers
        )
        dense = training_flops_per_sample(profile, None)
        assert 0.25 < prunefl / dense < 0.5


class TestMemoryFootprint:
    def test_dense_footprint(self, tiny_resnet):
        footprint = device_memory_footprint(tiny_resnet)
        # params + grads, 4 bytes each, plus BN buffers.
        assert footprint.total_bytes >= 2 * 4 * tiny_resnet.num_parameters()

    def test_sparse_much_smaller(self, tiny_resnet):
        masks = magnitude_mask_uniform(tiny_resnet, 0.01)
        masks.apply(tiny_resnet)
        sparse = device_memory_footprint(tiny_resnet, masks)
        dense = device_memory_footprint(
            tiny_resnet, MaskSet.dense(tiny_resnet)
        )
        assert sparse.total_bytes < 0.2 * dense.total_bytes

    def test_dense_importance_scores_dominate(self, tiny_resnet):
        masks = magnitude_mask_uniform(tiny_resnet, 0.01)
        with_scores = device_memory_footprint(
            tiny_resnet, masks, dense_importance_scores=True
        )
        without = device_memory_footprint(tiny_resnet, masks)
        prunable = tiny_resnet.num_parameters(prunable_only=True)
        assert with_scores.total_bytes - without.total_bytes == 4 * prunable

    def test_topk_buffer_is_tiny(self, tiny_resnet):
        masks = magnitude_mask_uniform(tiny_resnet, 0.01)
        with_buffer = device_memory_footprint(
            tiny_resnet, masks, topk_buffer_entries=100
        )
        without = device_memory_footprint(tiny_resnet, masks)
        assert with_buffer.total_bytes - without.total_bytes == 800

    def test_per_layer_dense_grad(self, tiny_resnet):
        masks = magnitude_mask_uniform(tiny_resnet, 0.01)
        with_grad = device_memory_footprint(
            tiny_resnet, masks, per_layer_dense_grad=True
        )
        without = device_memory_footprint(tiny_resnet, masks)
        largest = max(
            p.size for p in tiny_resnet.parameters() if p.prunable
        )
        assert with_grad.total_bytes - without.total_bytes == 4 * largest

    def test_fedtiny_cheaper_than_prunefl(self, tiny_resnet):
        """The paper's core memory claim, from the model itself."""
        masks = magnitude_mask_uniform(tiny_resnet, 0.01)
        fedtiny = device_memory_footprint(
            tiny_resnet, masks, topk_buffer_entries=500
        )
        prunefl = device_memory_footprint(
            tiny_resnet, masks, dense_importance_scores=True
        )
        assert fedtiny.total_bytes < 0.5 * prunefl.total_bytes


class TestEvaluate:
    def test_perfect_model(self):
        class Oracle:
            training = False

            def train(self, mode=True):
                return self

            def eval(self):
                return self

            def __call__(self, images):
                # Label is encoded in pixel (0,0,0).
                labels = images[:, 0, 0, 0].astype(int)
                logits = np.full((len(images), 3), -10.0, dtype=np.float32)
                logits[np.arange(len(images)), labels] = 10.0
                return logits

        images = np.zeros((6, 1, 2, 2), dtype=np.float32)
        labels = np.array([0, 1, 2, 0, 1, 2])
        images[:, 0, 0, 0] = labels
        result = evaluate(Oracle(), Dataset(images, labels), batch_size=4)
        assert result.accuracy == 1.0
        assert result.loss < 1e-6

    def test_empty_dataset_raises(self, tiny_resnet):
        empty = Dataset(
            np.zeros((0, 3, 8, 8), dtype=np.float32),
            np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            evaluate(tiny_resnet, empty)

    def test_restores_training_mode(self, tiny_resnet, rng):
        data = Dataset(
            rng.normal(size=(8, 3, 8, 8)).astype(np.float32),
            rng.integers(0, 10, size=8),
        )
        tiny_resnet.train(True)
        evaluate(tiny_resnet, data)
        assert tiny_resnet.training


class TestRunResult:
    def _record(self, i, acc):
        return RoundRecord(
            round_index=i, test_accuracy=acc, test_loss=1.0 - acc,
            density=0.1, upload_bytes=10, download_bytes=20,
            train_flops=float(i),
        )

    def test_final_and_best(self):
        result = RunResult("m", "d", "model", 0.1)
        result.record_round(self._record(1, 0.5))
        result.record_round(self._record(2, 0.8))
        result.record_round(self._record(3, 0.7))
        assert result.final_accuracy == 0.7
        assert result.best_accuracy == 0.8
        assert result.max_training_flops_per_round == 3.0

    def test_empty_raises(self):
        result = RunResult("m", "d", "model", 0.1)
        with pytest.raises(ValueError):
            _ = result.final_accuracy

    def test_comm_totals(self):
        result = RunResult("m", "d", "model", 0.1)
        result.record_round(self._record(1, 0.5))
        result.selection_comm_bytes = 5
        assert result.total_comm_bytes == 35

    def test_to_dict(self):
        result = RunResult("m", "d", "model", 0.1)
        result.record_round(self._record(1, 0.5))
        out = result.to_dict()
        assert out["method"] == "m"
        assert out["final_accuracy"] == 0.5
        assert out["num_rounds"] == 1
