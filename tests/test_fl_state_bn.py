"""Tests for state exchange and BN recalibration."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.fl import (
    bn_layers,
    get_bn_statistics,
    get_buffers,
    get_parameters,
    get_state,
    recalibrate_bn_statistics,
    set_bn_statistics,
    set_parameters,
    set_state,
    zeros_like_state,
)
from repro.nn import BatchNorm2d, Conv2d, ReLU, Sequential


def _bn_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(4),
        ReLU(),
        Conv2d(4, 4, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(4),
    )


class TestStateExchange:
    def test_parameters_roundtrip(self):
        model = _bn_model()
        params = get_parameters(model)
        for param in model.parameters():
            param.data += 1.0
        set_parameters(model, params)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, params[name])

    def test_set_parameters_respects_masks(self):
        model = _bn_model()
        mask = np.zeros_like(model[0].weight.data)
        model[0].weight.set_mask(mask)
        set_parameters(model, {"m0.weight": np.ones_like(mask)})
        np.testing.assert_array_equal(model[0].weight.data, 0.0)

    def test_unknown_parameter_raises(self):
        model = _bn_model()
        with pytest.raises(KeyError):
            set_parameters(model, {"nope": np.zeros(1)})

    def test_shape_mismatch_raises(self):
        model = _bn_model()
        with pytest.raises(ValueError):
            set_parameters(model, {"m0.weight": np.zeros((1, 1))})

    def test_buffers_roundtrip(self, rng):
        model = _bn_model()
        model(rng.normal(size=(4, 3, 6, 6)).astype(np.float32))
        buffers = get_buffers(model)
        other = _bn_model()
        from repro.fl import set_buffers

        set_buffers(other, buffers)
        for name, buf in other.named_buffers():
            np.testing.assert_array_equal(buf, buffers[name])

    def test_full_state_roundtrip(self, rng):
        model = _bn_model()
        model(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        state = get_state(model)
        other = _bn_model(seed=99)
        set_state(other, state)
        np.testing.assert_array_equal(
            other[1].running_mean, model[1].running_mean
        )
        np.testing.assert_array_equal(
            other[0].weight.data, model[0].weight.data
        )

    def test_zeros_like_state(self):
        state = {"a": np.ones((2, 2)), "b": np.ones(3)}
        zeros = zeros_like_state(state)
        assert set(zeros) == {"a", "b"}
        np.testing.assert_array_equal(zeros["a"], 0.0)


class TestBNStatistics:
    def test_bn_layers_found(self):
        model = _bn_model()
        names = [name for name, _ in bn_layers(model)]
        assert names == ["m1", "m4"]

    def test_get_set_roundtrip(self):
        model = _bn_model()
        stats = get_bn_statistics(model)
        stats = {
            name: (mean + 1.0, var * 2.0)
            for name, (mean, var) in stats.items()
        }
        set_bn_statistics(model, stats)
        out = get_bn_statistics(model)
        np.testing.assert_allclose(out["m1"][0], 1.0)
        np.testing.assert_allclose(out["m1"][1], 2.0)

    def test_unknown_layer_raises(self):
        model = _bn_model()
        with pytest.raises(KeyError):
            set_bn_statistics(
                model, {"zzz": (np.zeros(4), np.ones(4))}
            )

    def test_recalibration_estimates_input_stats(self, rng):
        """After recalibration the first BN's mean tracks conv output."""
        model = _bn_model()
        images = rng.normal(loc=2.0, size=(64, 3, 6, 6)).astype(np.float32)
        dataset = Dataset(images, np.zeros(64, dtype=np.int64))
        stats = recalibrate_bn_statistics(model, dataset, batch_size=16)
        model.eval()
        conv_out = model[0](images)
        expected_mean = conv_out.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(
            stats["m1"][0], expected_mean, rtol=0.1, atol=0.1
        )

    def test_recalibration_restores_momentum_and_mode(self, rng):
        model = _bn_model()
        model.eval()
        original_momentum = model[1].momentum
        dataset = Dataset(
            rng.normal(size=(8, 3, 6, 6)).astype(np.float32),
            np.zeros(8, dtype=np.int64),
        )
        recalibrate_bn_statistics(model, dataset, batch_size=4)
        assert model[1].momentum == original_momentum
        assert not model.training

    def test_recalibration_independent_of_previous_stats(self, rng):
        model = _bn_model()
        dataset = Dataset(
            rng.normal(size=(16, 3, 6, 6)).astype(np.float32),
            np.zeros(16, dtype=np.int64),
        )
        first = recalibrate_bn_statistics(model, dataset, batch_size=8)
        # Poison the stats, recalibrate again: result must match.
        set_bn_statistics(
            model, {"m1": (np.full(4, 99.0), np.full(4, 99.0)),
                    "m4": (np.full(4, 99.0), np.full(4, 99.0))}
        )
        second = recalibrate_bn_statistics(model, dataset, batch_size=8)
        np.testing.assert_allclose(first["m1"][0], second["m1"][0],
                                   rtol=1e-5)

    def test_empty_dataset_raises(self):
        model = _bn_model()
        empty = Dataset(
            np.zeros((0, 3, 6, 6), dtype=np.float32),
            np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            recalibrate_bn_statistics(model, empty)
