"""Tests for the ``repro.analysis`` static analyzer.

Each rule is pinned by a failing and a passing fixture under
``tests/lint_fixtures/``: deleting a rule's implementation makes its
failing-fixture test error (unknown rule id), and weakening one makes
it fail (no findings). The suppression grammar, the JSON report schema,
the exit-code contract, and the CLI wiring are covered separately, and
the repo's own ``src/`` tree must lint clean (self-hosting).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import (
    JSON_SCHEMA_ID,
    SuppressionIndex,
    render_human,
    render_json,
    rule_ids,
    run_lint,
)
from repro.analysis.diagnostics import SUPPRESSION_RULE_ID
from repro.analysis.linter import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_SRC = Path(__file__).parent.parent / "src"

#: rule id -> (failing fixture, passing fixture).
RULE_FIXTURES = {
    "determinism": ("determinism_fail.py", "determinism_pass.py"),
    "cache-coherence": (
        "cache_coherence_fail.py", "cache_coherence_pass.py",
    ),
    "shm-lifecycle": ("shm_lifecycle_fail.py", "shm_lifecycle_pass.py"),
    "registry-completeness": (
        "registry_completeness_fail.py", "registry_completeness_pass.py",
    ),
    "float-accumulation": (
        "float_accumulation_fail.py", "float_accumulation_pass.py",
    ),
    "engine-mode": ("engine_mode_fail.py", "engine_mode_pass.py"),
    "silent-except": (
        "silent_except_fail.py", "silent_except_pass.py",
    ),
}


def lint_fixture(name: str, rule: str | None = None):
    rules = None if rule is None else [rule]
    return run_lint([FIXTURES / name], rule_ids=rules, root=FIXTURES)


# ----------------------------------------------------------------------
# Per-rule fixture corpus
# ----------------------------------------------------------------------

def test_every_rule_has_fixtures():
    assert set(RULE_FIXTURES) == set(rule_ids())


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_failing_fixture_triggers_rule(rule):
    fail_name, _ = RULE_FIXTURES[rule]
    result = lint_fixture(fail_name, rule)
    assert result.exit_code == EXIT_FINDINGS
    assert not result.errors
    assert {d.rule for d in result.diagnostics} == {rule}
    assert all(d.path == fail_name for d in result.diagnostics)
    assert all(d.line > 0 for d in result.diagnostics)


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_passing_fixture_is_clean(rule):
    _, pass_name = RULE_FIXTURES[rule]
    result = lint_fixture(pass_name, rule)
    assert result.exit_code == EXIT_CLEAN
    assert result.diagnostics == []
    assert result.errors == []


def test_determinism_covers_each_pattern():
    result = lint_fixture("determinism_fail.py", "determinism")
    messages = " | ".join(d.message for d in result.diagnostics)
    assert "numpy.random.rand" in messages  # global stream
    assert "without a seed" in messages  # entropy-seeded
    assert "time.time_ns" in messages  # time-seeded
    assert "random.shuffle" in messages  # stdlib global RNG
    assert "iterating a set" in messages  # set iteration


def test_cache_coherence_flags_every_write_shape():
    result = lint_fixture("cache_coherence_fail.py", "cache-coherence")
    messages = " | ".join(d.message for d in result.diagnostics)
    assert "subscript store" in messages
    assert "out=<param>.data" in messages
    assert ".mask.fill(...)" in messages
    assert "numpy.copyto" in messages
    assert len(result.diagnostics) == 4


def test_shm_distinguishes_leak_from_unsafe_release():
    result = lint_fixture("shm_lifecycle_fail.py", "shm-lifecycle")
    messages = [d.message for d in result.diagnostics]
    assert any("never released" in m for m in messages)
    assert any("not in a finally block" in m for m in messages)
    assert any("class LeakyArena" in m for m in messages)
    assert len(result.diagnostics) == 3


def test_registry_flags_orphan_and_duplicate():
    result = lint_fixture(
        "registry_completeness_fail.py", "registry-completeness"
    )
    messages = [d.message for d in result.diagnostics]
    assert any("OrphanExecutor" in m for m in messages)
    assert any("registered twice" in m for m in messages)
    # The duplicated classes themselves are registered, not flagged.
    assert not any("FirstExecutor" in m for m in messages)
    assert not any("SecondExecutor" in m for m in messages)


def test_float_accumulation_flags_all_three_targets():
    result = lint_fixture(
        "float_accumulation_fail.py", "float-accumulation"
    )
    flagged = {d.message.split("(")[0] for d in result.diagnostics}
    assert flagged == {"sum", "numpy.sum", "math.fsum"}


def test_float_accumulation_ignores_unguarded_modules():
    # Same sum() calls, but the module carries no golden-guarded marker
    # and is not in the known float-critical set.
    result = lint_fixture("engine_mode_fail.py", "float-accumulation")
    assert result.diagnostics == []


def test_engine_mode_names_the_function():
    result = lint_fixture("engine_mode_fail.py", "engine-mode")
    names = {d.message.split("(")[0] for d in result.diagnostics}
    assert names == {"evaluate_accuracy", "recalibrate_bn_stats"}


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def test_valid_suppressions_silence_and_record():
    result = lint_fixture("suppression_ok.py", "determinism")
    assert result.exit_code == EXIT_CLEAN
    assert result.diagnostics == []
    assert len(result.suppressed) == 2
    assert {d.rule for d in result.suppressed} == {"determinism"}


def test_reasonless_suppression_is_a_finding_and_silences_nothing():
    result = lint_fixture("suppression_missing_reason.py", "determinism")
    assert result.exit_code == EXIT_FINDINGS
    rules = [d.rule for d in result.diagnostics]
    assert "determinism" in rules  # the original finding survives
    assert SUPPRESSION_RULE_ID in rules  # plus the framework finding
    assert result.suppressed == []


def test_suppression_parsing_inline_and_standalone():
    index = SuppressionIndex.parse([
        "x = thing()  # repro-lint: allow[rule-a, rule-b] -- both safe",
        "# repro-lint: allow[rule-c] -- next-line form",
        "",
        "# unrelated comment",
        "y = other()",
    ])
    inline, standalone = index.entries
    assert inline.target_line == 1
    assert inline.rules == ("rule-a", "rule-b")
    assert inline.reason == "both safe"
    assert standalone.target_line == 5  # skips blanks and comments
    assert index.is_suppressed("rule-b", 1)
    assert index.is_suppressed("rule-c", 5)
    assert not index.is_suppressed("rule-a", 5)
    assert index.invalid() == []


def test_suppression_without_reason_or_rules_is_invalid():
    index = SuppressionIndex.parse([
        "x = thing()  # repro-lint: allow[rule-a]",
        "y = thing()  # repro-lint: allow[] -- no rule named",
    ])
    assert len(index.invalid()) == 2
    assert not index.is_suppressed("rule-a", 1)


def test_suppression_examples_in_docstrings_are_inert():
    # allow[...] text is only live in real comment tokens; the analyzer's
    # own docs quote the syntax without creating suppressions.
    index = SuppressionIndex.parse([
        '"""Docs.',
        "",
        "    x = thing()  # repro-lint: allow[rule-a] -- quoted example",
        '"""',
        "y = 1  # repro-lint: allow[rule-b] -- real comment",
    ])
    assert [entry.rules for entry in index.entries] == [("rule-b",)]


def test_suppression_above_decorated_def_covers_the_header():
    src = "\n".join([
        "import functools",
        "",
        "# repro-lint: allow[rule-x] -- annotated above the decorators",
        "@functools.lru_cache(",
        "    maxsize=None,",
        ")",
        "def cached():",
        "    return 1",
    ])
    index = SuppressionIndex.parse(src.splitlines(), ast.parse(src))
    assert index.is_suppressed("rule-x", 7)  # the ``def`` line
    assert index.is_suppressed("rule-x", 4)  # the decorator call
    assert not index.is_suppressed("rule-x", 8)  # not the body


def test_suppression_above_decorated_class_reaches_class_line(tmp_path):
    # registry-completeness anchors at the ``class`` line; an annotation
    # above the decorators must still apply.
    target = tmp_path / "decorated.py"
    target.write_text("\n".join([
        "from dataclasses import dataclass",
        "",
        "# repro-lint: allow[registry-completeness] -- wired in next PR",
        "@dataclass",
        "class PendingExecutor(ClientExecutor):",
        "    pass",
        "",
    ]), encoding="utf-8")
    result = run_lint(
        [target], rule_ids=["registry-completeness"], root=tmp_path
    )
    assert result.diagnostics == []
    assert len(result.suppressed) == 1
    assert result.exit_code == EXIT_CLEAN


def test_stale_suppression_is_a_finding(tmp_path):
    stale = tmp_path / "stale.py"
    stale.write_text(
        "x = 1  # repro-lint: allow[determinism] -- nothing risky left\n",
        encoding="utf-8",
    )
    result = run_lint([stale], root=tmp_path)
    assert result.exit_code == EXIT_FINDINGS
    assert [d.rule for d in result.diagnostics] == [SUPPRESSION_RULE_ID]
    assert "matched no finding" in result.diagnostics[0].message


def test_stale_suppression_ignored_when_its_rule_is_not_run(tmp_path):
    # Under --rule selection an unchecked rule may legitimately leave
    # its suppressions unconsulted; only fully-checked entries count.
    stale = tmp_path / "stale.py"
    stale.write_text(
        "x = 1  # repro-lint: allow[determinism] -- nothing risky left\n",
        encoding="utf-8",
    )
    result = run_lint([stale], rule_ids=["shm-lifecycle"], root=tmp_path)
    assert result.diagnostics == []
    assert result.exit_code == EXIT_CLEAN


# ----------------------------------------------------------------------
# Report formats and exit codes
# ----------------------------------------------------------------------

def test_json_report_schema():
    result = lint_fixture("determinism_fail.py")
    document = json.loads(render_json(result))
    assert document["schema"] == JSON_SCHEMA_ID
    assert set(document["rules"]) == set(rule_ids())
    summary = document["summary"]
    assert summary["files_checked"] == 1
    assert summary["findings"] == len(document["diagnostics"])
    assert summary["exit_code"] == EXIT_FINDINGS
    assert summary["by_rule"]["determinism"] == summary["findings"]
    first = document["diagnostics"][0]
    assert set(first) == {"rule", "path", "line", "col", "message"}


def test_human_report_lists_findings_and_summary():
    result = lint_fixture("determinism_fail.py", "determinism")
    text = render_human(result)
    assert "determinism_fail.py:" in text
    assert "[determinism]" in text
    assert "1 file checked" in text


def test_exit_codes():
    assert lint_fixture("determinism_pass.py").exit_code == EXIT_CLEAN
    assert lint_fixture("determinism_fail.py").exit_code == EXIT_FINDINGS
    missing = run_lint([FIXTURES / "no_such_file.py"])
    assert missing.exit_code == EXIT_ERROR
    assert missing.errors


def test_syntax_error_is_an_analysis_error(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    result = run_lint([bad], root=tmp_path)
    assert result.exit_code == EXIT_ERROR
    assert any("syntax error" in e for e in result.errors)


def test_unknown_rule_raises():
    with pytest.raises(KeyError):
        run_lint([FIXTURES / "determinism_pass.py"], rule_ids=["nope"])


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

def test_cli_lint_json(capsys):
    code = cli.main([
        "lint", str(FIXTURES / "determinism_fail.py"),
        "--rule", "determinism", "--format", "json",
    ])
    assert code == EXIT_FINDINGS
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == JSON_SCHEMA_ID
    assert document["summary"]["findings"] > 0


def test_cli_lint_clean_human(capsys):
    code = cli.main(["lint", str(FIXTURES / "determinism_pass.py")])
    assert code == EXIT_CLEAN
    assert "0 findings" in capsys.readouterr().out


def test_cli_lint_unknown_rule(capsys):
    code = cli.main([
        "lint", str(FIXTURES / "determinism_pass.py"), "--rule", "nope",
    ])
    assert code == EXIT_ERROR
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    code = cli.main(["lint", "--list-rules"])
    assert code == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule in rule_ids():
        assert rule in out


# ----------------------------------------------------------------------
# Self-hosting: the repo's own source tree stays clean
# ----------------------------------------------------------------------

def test_repo_source_tree_lints_clean():
    result = run_lint([REPO_SRC], root=REPO_SRC.parent)
    assert result.errors == []
    rendered = "\n".join(d.render() for d in result.diagnostics)
    assert result.diagnostics == [], f"unsuppressed findings:\n{rendered}"
    # Every suppression in the tree carries its written justification
    # (a reasonless one would have surfaced as a `suppression` finding).
    assert result.exit_code == EXIT_CLEAN
