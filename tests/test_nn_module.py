"""Tests for the Module base class: registration, traversal, state."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential


class _Composite(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.act = ReLU()
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.ones(1, dtype=np.float32))
        self.register_buffer("counter", np.zeros(1, dtype=np.float32))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x))) * self.scale.data

    def backward(self, grad):
        grad = grad * self.scale.data
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))


class TestRegistration:
    def test_named_parameters_covers_tree(self):
        model = _Composite()
        names = {name for name, _ in model.named_parameters()}
        assert names == {
            "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "scale",
        }

    def test_named_buffers(self):
        model = _Composite()
        names = {name for name, _ in model.named_buffers()}
        assert names == {"counter"}

    def test_reassignment_replaces_registration(self):
        model = _Composite()
        model.fc1 = Linear(4, 8, rng=np.random.default_rng(2))
        names = [name for name, _ in model.named_parameters()]
        assert names.count("fc1.weight") == 1

    def test_named_modules_includes_self_and_children(self):
        model = _Composite()
        names = {name for name, _ in model.named_modules()}
        assert "" in names
        assert "fc1" in names and "fc2" in names and "act" in names

    def test_assign_before_init_raises(self):
        class Broken(Module):
            def __init__(self):
                self.w = Parameter(np.zeros(1))  # missing super().__init__()

        with pytest.raises(RuntimeError):
            Broken()


class TestModes:
    def test_train_eval_propagates(self):
        model = Sequential(_Composite(), _Composite())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = _Composite()
        for param in model.parameters():
            param.grad += 1.0
        model.zero_grad()
        for param in model.parameters():
            np.testing.assert_array_equal(param.grad, 0.0)


class TestCounting:
    def test_num_parameters(self):
        model = _Composite()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
        assert model.num_parameters() == expected

    def test_prunable_only(self):
        model = _Composite()
        assert model.num_parameters(prunable_only=True) == 4 * 8 + 8 * 2

    def test_density_after_masking(self):
        model = _Composite()
        mask = np.zeros_like(model.fc1.weight.data)
        mask.reshape(-1)[:16] = 1.0
        model.fc1.weight.set_mask(mask)
        active = 16 + 8 * 2
        assert model.density() == pytest.approx(active / (32 + 16))


class TestStateDict:
    def test_roundtrip(self):
        model = _Composite()
        state = model.state_dict()
        other = _Composite()
        # Perturb then restore.
        for param in other.parameters():
            param.data += 1.0
        other.load_state_dict(state)
        for (_, p1), (_, p2) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_masks_serialize(self):
        model = _Composite()
        model.fc1.weight.set_mask(
            np.ones_like(model.fc1.weight.data)
        )
        state = model.state_dict()
        assert "fc1.weight.__mask__" in state
        other = _Composite()
        other.load_state_dict(state)
        assert other.fc1.weight.mask is not None

    def test_buffers_serialize(self):
        model = _Composite()
        model._set_buffer("counter", np.array([5.0], dtype=np.float32))
        state = model.state_dict()
        other = _Composite()
        other.load_state_dict(state)
        np.testing.assert_array_equal(other.counter, [5.0])

    def test_unknown_key_raises(self):
        model = _Composite()
        with pytest.raises(KeyError):
            model.load_state_dict({"nope": np.zeros(1)})

    def test_shape_mismatch_raises(self):
        model = _Composite()
        with pytest.raises(ValueError):
            model.load_state_dict({"scale": np.zeros(3)})


class TestParameter:
    def test_effective_with_mask(self):
        param = Parameter(np.array([1.0, -2.0, 3.0]), prunable=True)
        param.set_mask(np.array([1.0, 0.0, 1.0]))
        np.testing.assert_array_equal(param.effective, [1.0, 0.0, 3.0])

    def test_apply_mask_zeroes_data(self):
        param = Parameter(np.array([1.0, -2.0]), prunable=True)
        param.set_mask(np.array([0.0, 1.0]))
        param.apply_mask()
        np.testing.assert_array_equal(param.data, [0.0, -2.0])

    def test_density(self):
        param = Parameter(np.ones(10), prunable=True)
        assert param.density == 1.0
        mask = np.zeros(10)
        mask[:3] = 1
        param.set_mask(mask)
        assert param.density == pytest.approx(0.3)
        assert param.num_active == 3

    def test_mask_shape_mismatch_raises(self):
        param = Parameter(np.ones(4))
        with pytest.raises(ValueError):
            param.set_mask(np.ones(5))

    def test_set_mask_none_removes(self):
        param = Parameter(np.ones(4))
        param.set_mask(np.zeros(4))
        param.set_mask(None)
        assert param.mask is None
        assert param.density == 1.0
