"""Gradient checks through composite structures (residual blocks etc.).

Layer-level gradients are checked in test_nn_layers; these verify the
hand-written backward of the composite modules — the residual add in
BasicBlock and deep Sequential stacks — against numerical gradients.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    MaxPool2d,
    ReLU,
    Sequential,
    check_module_gradients,
    numerical_gradient,
)
from repro.nn.models.resnet import BasicBlock


class TestBasicBlockGradients:
    def test_identity_shortcut(self, rng):
        block = BasicBlock(4, 4, stride=1, rng=rng)
        block.eval()  # eval-mode BN keeps the numeric check well-posed
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        # Loose tolerances: internal ReLU kinks make central differences
        # inexact at a handful of positions.
        check_module_gradients(block, x, rng, atol=5e-2, rtol=5e-2)

    def test_projection_shortcut(self, rng):
        block = BasicBlock(3, 6, stride=2, rng=rng)
        block.eval()
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        check_module_gradients(block, x, rng)

    def test_training_mode_backward_runs(self, rng):
        block = BasicBlock(4, 8, stride=2, rng=rng)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        out = block(x)
        grad_in = block.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert np.abs(block.conv1.weight.grad).sum() > 0
        assert np.abs(block.shortcut[0].weight.grad).sum() > 0


class TestDeepStackGradients:
    def test_conv_bn_relu_pool_stack(self, rng):
        stack = Sequential(
            Conv2d(2, 4, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(4),
            ReLU(),
            MaxPool2d(2, 2),
            Conv2d(4, 4, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(4),
            ReLU(),
        )
        stack.eval()
        for _, module in stack.named_modules():
            if isinstance(module, BatchNorm2d):
                module.set_stats(
                    rng.normal(size=module.num_features).astype(np.float32),
                    (rng.random(module.num_features) + 0.5).astype(
                        np.float32
                    ),
                )
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
        check_module_gradients(stack, x, rng)

    def test_end_to_end_loss_gradient(self, rng):
        """Numeric check of dLoss/dWeight through a full mini-model."""
        from repro.nn import GlobalAvgPool2d, Linear

        model = Sequential(
            Conv2d(1, 3, 3, padding=1, bias=False, rng=rng),
            ReLU(),
            GlobalAvgPool2d(),
            Linear(3, 3, rng=rng),
        )
        x = rng.normal(size=(4, 1, 5, 5)).astype(np.float32)
        labels = np.array([0, 1, 2, 0])
        loss_fn = CrossEntropyLoss()

        def objective():
            return loss_fn(model(x), labels)

        model.zero_grad()
        objective()
        model.backward(loss_fn.backward())
        conv_weight = model[0].weight
        analytic = conv_weight.grad.copy()
        numeric = numerical_gradient(objective, conv_weight.data, eps=1e-3)
        np.testing.assert_allclose(analytic, numeric, atol=2e-3, rtol=2e-2)


class TestMaskedCompositeGradients:
    def test_masked_block_gradients_flow_to_pruned_weights(self, rng):
        block = BasicBlock(4, 4, stride=1, rng=rng)
        mask = np.zeros_like(block.conv1.weight.data)
        mask.reshape(-1)[::3] = 1.0
        block.conv1.weight.set_mask(mask)
        block.conv1.weight.apply_mask()
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        out = block(x)
        block.zero_grad()
        block.backward(np.ones_like(out))
        pruned_grads = block.conv1.weight.grad[mask == 0]
        assert np.abs(pruned_grads).sum() > 0.0
