"""Tests for the systems-realism simulation layer.

Covers fleet specs, device assignment, the simulated wall clock, each
round policy's completion semantics, the staleness-discounted
aggregation path, and the empty-dataset guard in centralized training.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.data import Dataset
from repro.experiments import get_scale, make_context, run_experiment
from repro.fl import (
    BufferedAsyncPolicy,
    DeadlinePolicy,
    DropoutPolicy,
    FLConfig,
    SynchronousPolicy,
    available_policies,
    build_fleet,
    build_policy,
    parse_fleet_spec,
    register_policy,
    train_centralized,
    uniform_fleet,
    weighted_average_states,
)
from repro.fl.aggregation import staleness_weighted_average_states
from repro.fl.policies import _POLICIES, RoundPlan


class TestFleetSpecs:
    def test_parse_uniform(self):
        assert parse_fleet_spec("uniform") == ("uniform", None)

    def test_parse_heterogeneous_with_spread(self):
        assert parse_fleet_spec("heterogeneous:16") == ("heterogeneous", 16.0)

    def test_parse_heterogeneous_default(self):
        assert parse_fleet_spec("heterogeneous") == ("heterogeneous", None)

    @pytest.mark.parametrize(
        "spec",
        ["warp-drive", "uniform:2", "heterogeneous:0.5", "heterogeneous:x"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_fleet_spec(spec)

    def test_uniform_fleet_is_homogeneous(self):
        fleet = uniform_fleet(5)
        assert len(fleet) == 5
        assert len({d.flops_per_second for d in fleet}) == 1

    def test_build_fleet_spread_respected(self):
        fleet = build_fleet("heterogeneous:16", 32, seed=0)
        speeds = [d.flops_per_second for d in fleet]
        assert max(speeds) / min(speeds) <= 16.0 + 1e-6
        assert max(speeds) / min(speeds) > 4.0  # actually spread out

    def test_build_fleet_deterministic_in_seed(self):
        one = build_fleet("heterogeneous:4", 8, seed=3)
        two = build_fleet("heterogeneous:4", 8, seed=3)
        other = build_fleet("heterogeneous:4", 8, seed=4)
        assert [d.flops_per_second for d in one] == [
            d.flops_per_second for d in two
        ]
        assert [d.flops_per_second for d in one] != [
            d.flops_per_second for d in other
        ]


class TestFLConfigValidation:
    def test_fleet_spec_validated(self):
        with pytest.raises(ValueError):
            FLConfig(fleet="warp-drive")

    def test_round_policy_validated(self):
        with pytest.raises(ValueError):
            FLConfig(round_policy="vibes")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_fraction": 0.0},
            {"deadline_over_select": 0.5},
            {"dropout_rate": 1.0},
            {"dropout_rate": -0.1},
            {"async_buffer_fraction": 0.0},
            {"staleness_discount": 0.0},
            {"staleness_discount": 1.5},
        ],
    )
    def test_parameter_ranges(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)

    def test_defaults_accepted(self):
        cfg = FLConfig()
        assert cfg.fleet == "uniform"
        assert cfg.round_policy == "sync"


class TestPolicyRegistry:
    def test_builtins_available(self):
        for name in ("sync", "deadline", "dropout", "async"):
            assert name in available_policies()

    def test_build_by_name(self):
        cfg = FLConfig()
        assert isinstance(build_policy("sync", cfg), SynchronousPolicy)
        assert isinstance(build_policy("deadline", cfg), DeadlinePolicy)
        assert isinstance(build_policy("dropout", cfg), DropoutPolicy)
        assert isinstance(build_policy("async", cfg), BufferedAsyncPolicy)

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            build_policy("vibes", FLConfig())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_policy("sync", SynchronousPolicy)

    def test_custom_policy_registration(self):
        class _Probe(SynchronousPolicy):
            name = "probe"

        try:
            register_policy("probe", _Probe)
            assert "probe" in available_policies()
            assert FLConfig(round_policy="probe").round_policy == "probe"
        finally:
            _POLICIES.pop("probe", None)


def _stub_ctx(config, seed=0):
    """The slice of FederatedContext a policy's plan() touches."""
    return SimpleNamespace(
        config=config, sim_rng=np.random.default_rng(seed)
    )


class TestRoundPlans:
    def test_sync_waits_for_everyone(self):
        policy = SynchronousPolicy(FLConfig())
        plan = policy.plan(_stub_ctx(FLConfig()), [None] * 4,
                           [1.0, 3.0, 2.0, 4.0])
        assert plan.trained == (0, 1, 2, 3)
        assert plan.on_time == (0, 1, 2, 3)
        assert plan.dropped == ()
        assert plan.elapsed_seconds == 4.0

    def test_deadline_cuts_stragglers_at_budget(self):
        cfg = FLConfig(round_policy="deadline", deadline_fraction=1.5)
        policy = DeadlinePolicy(cfg)
        times = [1.0, 1.0, 1.0, 10.0]  # median 1.0 -> budget 1.5
        plan = policy.plan(_stub_ctx(cfg), [None] * 4, times)
        assert plan.trained == (0, 1, 2)
        assert plan.dropped == (3,)
        assert plan.elapsed_seconds == pytest.approx(1.5)
        assert plan.dropped_received_broadcast

    def test_deadline_no_stragglers_closes_at_last_arrival(self):
        cfg = FLConfig(round_policy="deadline", deadline_fraction=2.0)
        policy = DeadlinePolicy(cfg)
        plan = policy.plan(_stub_ctx(cfg), [None] * 3, [1.0, 1.2, 1.4])
        assert plan.dropped == ()
        assert plan.elapsed_seconds == pytest.approx(1.4)

    def test_deadline_keeps_at_least_the_fastest(self):
        cfg = FLConfig(round_policy="deadline", deadline_fraction=0.01)
        policy = DeadlinePolicy(cfg)
        plan = policy.plan(_stub_ctx(cfg), [None] * 3, [5.0, 2.0, 9.0])
        assert plan.trained == (1,)
        assert set(plan.dropped) == {0, 2}
        # The clock waits for the lone survivor's upload, not just the
        # (already expired) budget.
        assert plan.elapsed_seconds == pytest.approx(2.0)

    def test_dropout_draws_from_sim_rng(self):
        cfg = FLConfig(round_policy="dropout", dropout_rate=0.5)
        policy = DropoutPolicy(cfg)
        ctx = _stub_ctx(cfg, seed=7)
        expected_draws = np.random.default_rng(7).random(6)
        plan = policy.plan(ctx, [None] * 6, [1.0] * 6)
        alive = tuple(np.flatnonzero(expected_draws >= 0.5))
        assert plan.trained == alive
        assert not plan.dropped_received_broadcast
        assert len(plan.trained) + len(plan.dropped) == 6

    def test_dropout_keeps_someone_online(self):
        cfg = FLConfig(round_policy="dropout", dropout_rate=0.999)
        policy = DropoutPolicy(cfg)
        for seed in range(5):
            plan = policy.plan(_stub_ctx(cfg, seed), [None] * 4, [1.0] * 4)
            assert len(plan.trained) >= 1

    def test_async_closes_on_kth_arrival(self):
        cfg = FLConfig(round_policy="async", async_buffer_fraction=0.5)
        policy = BufferedAsyncPolicy(cfg)
        times = [4.0, 1.0, 3.0, 2.0]
        plan = policy.plan(_stub_ctx(cfg), [None] * 4, times)
        assert plan.trained == (0, 1, 2, 3)  # everyone still trains
        assert plan.on_time == (1, 3)  # two fastest
        assert plan.dropped == ()
        assert plan.elapsed_seconds == pytest.approx(2.0)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            RoundPlan(trained=(0,), on_time=(1,), dropped=(),
                      elapsed_seconds=1.0)
        with pytest.raises(ValueError):
            RoundPlan(trained=(0,), on_time=(0,), dropped=(),
                      elapsed_seconds=-1.0)


class TestStalenessAggregation:
    def _states(self, values):
        return [{"w": np.full(3, v, dtype=np.float32)} for v in values]

    def test_zero_staleness_matches_fedavg(self):
        states = self._states([1.0, 2.0, 3.0])
        counts = [10, 20, 30]
        plain = weighted_average_states(states, counts)
        stale = staleness_weighted_average_states(
            states, counts, [0, 0, 0], discount=0.5
        )
        np.testing.assert_array_equal(plain["w"], stale["w"])

    def test_stale_uploads_are_discounted(self):
        states = self._states([0.0, 1.0])
        # Equal samples; the second upload is one round stale at 0.5
        # discount -> weights 2/3 and 1/3.
        merged = staleness_weighted_average_states(
            states, [10, 10], [0, 1], discount=0.5
        )
        np.testing.assert_allclose(merged["w"], np.full(3, 1.0 / 3.0),
                                   rtol=1e-6)

    def test_validation(self):
        states = self._states([1.0, 2.0])
        with pytest.raises(ValueError):
            staleness_weighted_average_states(states, [1, 1], [0, 1],
                                              discount=0.0)
        with pytest.raises(ValueError):
            staleness_weighted_average_states(states, [1, 1], [0],
                                              discount=0.5)
        with pytest.raises(ValueError):
            staleness_weighted_average_states(states, [1, 1], [0, -1],
                                              discount=0.5)


class TestSimulatedRounds:
    """End-to-end: policies drive real rounds on a real context."""

    def _context(self, **overrides):
        scale = get_scale("tiny")
        ctx, _ = make_context(
            "resnet18", "cifar10", scale, seed=0, rounds=3, **overrides
        )
        return ctx

    def test_devices_assigned_from_fleet(self):
        ctx = self._context(fleet="heterogeneous:4")
        try:
            assert all(c.device is not None for c in ctx.clients)
            speeds = {c.device.flops_per_second for c in ctx.clients}
            assert len(speeds) > 1
        finally:
            ctx.close()

    def test_clock_accumulates_monotonically(self):
        ctx = self._context(fleet="heterogeneous:4")
        try:
            assert ctx.sim_time == 0.0
            ctx.run_fedavg_round()
            first = ctx.sim_time
            ctx.run_fedavg_round()
            assert first > 0.0
            assert ctx.sim_time > first
            info = ctx.last_round_info
            assert info is not None
            assert info.elapsed_seconds > 0.0
            assert info.selected_ids == tuple(range(len(ctx.clients)))
        finally:
            ctx.close()

    def test_sync_clock_charges_slowest_device(self):
        ctx = self._context(fleet="heterogeneous:4")
        try:
            times = ctx.participant_round_times(ctx.clients)
            ctx.run_fedavg_round()
            assert ctx.sim_time == pytest.approx(max(times))
        finally:
            ctx.close()

    def test_deadline_round_drops_and_still_aggregates(self):
        ctx = self._context(
            fleet="heterogeneous:16", round_policy="deadline",
            deadline_fraction=1.0,
        )
        try:
            states = ctx.run_fedavg_round()
            info = ctx.last_round_info
            assert len(states) == len(ctx.last_participants)
            assert len(states) + info.dropped_count == len(ctx.clients)
            assert info.dropped_count > 0
        finally:
            ctx.close()

    def test_dropout_round_skips_offline_clients(self):
        ctx = self._context(
            round_policy="dropout", dropout_rate=0.45,
        )
        try:
            dropped = 0
            for _ in range(3):
                states = ctx.run_fedavg_round()
                info = ctx.last_round_info
                dropped += info.dropped_count
                assert len(states) == len(ctx.clients) - info.dropped_count
            assert dropped > 0  # seed-0 draws do fail at 45%
        finally:
            ctx.close()

    def test_async_round_buffers_and_applies_stale_uploads(self):
        ctx = self._context(
            fleet="heterogeneous:8", round_policy="async",
        )
        try:
            states = ctx.run_fedavg_round()
            first = ctx.last_round_info
            assert first.stale_applied == 0
            assert len(first.late_ids) > 0
            assert len(states) == len(ctx.clients) - len(first.late_ids)
            ctx.run_fedavg_round()
            second = ctx.last_round_info
            assert second.stale_applied == len(first.late_ids)
        finally:
            ctx.close()

    def test_deadline_over_selects_under_partial_participation(self):
        ctx = self._context(
            round_policy="deadline", participation_fraction=0.5,
        )
        try:
            # 4 clients at 0.5 participation -> 2; over-select 1.5x -> 3.
            selected = ctx.round_policy.select(ctx)
            assert len(selected) == 3
        finally:
            ctx.close()

    def test_policy_knobs_reach_the_config(self):
        ctx = self._context(
            round_policy="async", async_buffer_fraction=0.25,
            staleness_discount=0.9, deadline_over_select=2.0,
            deadline_fraction=1.1, dropout_rate=0.3,
        )
        try:
            cfg = ctx.config
            assert cfg.async_buffer_fraction == 0.25
            assert cfg.staleness_discount == 0.9
            assert cfg.deadline_over_select == 2.0
            assert cfg.deadline_fraction == 1.1
            assert cfg.dropout_rate == 0.3
        finally:
            ctx.close()

    def test_records_carry_sim_time_and_drops(self):
        result = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, scale="tiny",
            seed=0, rounds=3, fleet="heterogeneous:16",
            round_policy="deadline", deadline_fraction=1.0,
        )
        times = [r.sim_time_seconds for r in result.rounds]
        assert all(t > 0 for t in times)
        assert times == sorted(times)
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
        assert result.sim_time_seconds == times[-1]
        assert result.total_dropped_clients == sum(
            r.dropped_clients for r in result.rounds
        )
        out = result.to_dict()
        assert out["sim_time_seconds"] == times[-1]
        assert out["total_dropped_clients"] == result.total_dropped_clients
        curve = result.wall_clock_curve()
        assert [t for t, _ in curve] == times


class TestTrainCentralizedValidation:
    def test_empty_dataset_raises(self, tiny_resnet):
        empty = Dataset(
            np.zeros((0, 3, 8, 8), dtype=np.float32),
            np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="empty dataset"):
            train_centralized(tiny_resnet, empty, epochs=1)
