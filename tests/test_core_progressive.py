"""Tests for the progressive pruning module (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.core import ProgressivePruner
from repro.pruning import PruningSchedule
from repro.sparse import MaskSet


def _masks_and_state(size=20, active=8, seed=0):
    rng = np.random.default_rng(seed)
    mask = np.zeros(size, dtype=bool)
    mask[rng.choice(size, size=active, replace=False)] = True
    masks = MaskSet({"layer": mask})
    state = {"layer": rng.normal(size=size).astype(np.float32)}
    state["layer"][~mask] = 0.0
    return masks, state


class TestAdjustMasks:
    def test_density_preserved(self):
        masks, state = _masks_and_state()
        pruned = np.flatnonzero(~masks["layer"])
        grads = {"layer": (pruned[:4], np.array([4.0, 3.0, 2.0, 1.0]))}
        new_masks, grown, dropped = ProgressivePruner.adjust_masks(
            masks, state, {"layer": 3}, grads
        )
        assert new_masks.num_active == masks.num_active
        assert len(grown["layer"]) == 3
        assert len(dropped["layer"]) == 3

    def test_grows_largest_gradient_positions(self):
        masks, state = _masks_and_state()
        pruned = np.flatnonzero(~masks["layer"])
        values = np.linspace(1.0, 2.0, len(pruned)).astype(np.float32)
        grads = {"layer": (pruned, values)}
        new_masks, grown, _ = ProgressivePruner.adjust_masks(
            masks, state, {"layer": 2}, grads
        )
        # The two largest |values| are the last two pruned indices.
        assert set(grown["layer"]) == set(pruned[-2:])
        assert new_masks["layer"][pruned[-1]]

    def test_grow_by_magnitude_not_sign(self):
        masks, state = _masks_and_state()
        pruned = np.flatnonzero(~masks["layer"])
        values = np.ones(len(pruned), dtype=np.float32)
        values[0] = -100.0  # largest magnitude, negative sign
        grads = {"layer": (pruned, values)}
        _, grown, _ = ProgressivePruner.adjust_masks(
            masks, state, {"layer": 1}, grads
        )
        assert grown["layer"][0] == pruned[0]

    def test_drops_smallest_weights(self):
        masks, state = _masks_and_state()
        active = np.flatnonzero(masks["layer"])
        # Give one active weight a near-zero value.
        state["layer"][active[2]] = 1e-8
        pruned = np.flatnonzero(~masks["layer"])
        grads = {"layer": (pruned[:1], np.array([1.0]))}
        _, _, dropped = ProgressivePruner.adjust_masks(
            masks, state, {"layer": 1}, grads
        )
        assert dropped["layer"][0] == active[2]

    def test_grown_positions_not_dropped(self):
        """The paper excludes just-grown parameters from the drop set."""
        masks, state = _masks_and_state()
        pruned = np.flatnonzero(~masks["layer"])
        grads = {"layer": (pruned, np.ones(len(pruned), dtype=np.float32))}
        _, grown, dropped = ProgressivePruner.adjust_masks(
            masks, state, {"layer": 4}, grads
        )
        assert not set(grown["layer"]) & set(dropped["layer"])

    def test_no_gradient_report_no_change(self):
        masks, state = _masks_and_state()
        new_masks, grown, dropped = ProgressivePruner.adjust_masks(
            masks, state, {"layer": 3}, {}
        )
        assert new_masks.difference_count(masks) == 0
        assert len(grown["layer"]) == 0

    def test_only_pruned_positions_grown(self):
        masks, state = _masks_and_state()
        active = np.flatnonzero(masks["layer"])
        pruned = np.flatnonzero(~masks["layer"])
        # Maliciously report an active index with a huge gradient.
        indices = np.concatenate([active[:1], pruned[:2]])
        values = np.array([100.0, 1.0, 2.0], dtype=np.float32)
        _, grown, _ = ProgressivePruner.adjust_masks(
            masks, state, {"layer": 2}, {"layer": (indices, values)}
        )
        assert set(grown["layer"]) <= set(pruned)


class TestProgressivePrunerScheduling:
    def test_rejects_empty_blocks(self):
        with pytest.raises(ValueError):
            ProgressivePruner(PruningSchedule(), [])

    def test_rejects_fully_protected(self):
        with pytest.raises(ValueError):
            ProgressivePruner(
                PruningSchedule(), [["a"]], protected=frozenset({"a"})
            )

    def test_protected_layers_removed_from_blocks(self):
        pruner = ProgressivePruner(
            PruningSchedule(),
            [["a", "b"], ["c"]],
            protected=frozenset({"b"}),
        )
        assert pruner.blocks == [["a"], ["c"]]
