"""Tests for the crash-resumable sweep orchestrator.

The chaos suite here pins the ISSUE-10 acceptance invariant: a sweep
killed at any seeded point (including mid-journal-append) and resumed
must produce a results store byte-identical to the uninterrupted
sweep, with exactly-once execution per RunSpec. Fast cases drive the
orchestrator with an injected in-process runner (serial isolation);
a small number of slow cases exercise real child processes, the
watchdog, and a real ``kill -9`` of the CLI.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.journal import (
    SWEEP_SCOPE,
    JournalEntry,
    JournalError,
    SweepJournal,
    read_index,
    resolve_states,
    write_index,
)
from repro.experiments.specs import (
    RunSpec,
    expand_grid,
    parse_axis_value,
)
from repro.experiments.sweep import (
    GridScheduler,
    SweepKilled,
    SweepOrchestrator,
    available_schedulers,
    register_scheduler,
)
from repro.fl.faults import RetryPolicy
from repro.metrics.tracker import RoundRecord, RunResult

#: Same run-fault boundaries as CHAOS but without journal tears: the
#: byte-identity reference (tears *are* kills, so an "uninterrupted"
#: sweep by definition draws none).
RUN_FAULTS = "run_crash:0.12,run_hang:0.06"
CHAOS = "run_crash:0.12,run_hang:0.06,journal_torn_write:0.08"


def fake_runner(spec, config_extras):
    """Deterministic stand-in for a real federated run."""
    result = RunResult(
        method=spec.method, dataset=spec.dataset, model=spec.model,
        target_density=spec.target_density,
    )
    result.record_round(RoundRecord(
        0, 0.5 + spec.seed * 0.01 + spec.target_density,
        1.0 - spec.target_density, spec.target_density, 100, 200, 1e6,
    ))
    return result


def small_grid():
    return expand_grid(
        {"density": [0.05, 0.1], "seed": [0, 1]},
        {"method": "fedtiny", "scale": "tiny"},
    )


def run_to_completion(out, max_resumes=100, runner=fake_runner):
    """Resume a killed sweep until it completes; count the resumes."""
    for resumes in range(max_resumes):
        orchestrator = SweepOrchestrator(out, resume=True, runner=runner)
        try:
            return orchestrator.execute(), resumes
        except SweepKilled:
            continue
    raise AssertionError("sweep did not complete within the resume budget")


# ----------------------------------------------------------------------
# RunSpec / grid expansion
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_fingerprint_is_order_and_alias_stable(self):
        a = RunSpec("fedtiny", overrides=(("rounds", 3),
                                          ("quantize_bits", 8)))
        b = RunSpec("fedtiny", overrides=(("quantize_upload_bits", 8),
                                          ("rounds", 3)))
        assert a.fingerprint() == b.fingerprint()
        assert a == b

    def test_execution_only_keys_do_not_change_identity(self):
        plain = RunSpec("fedtiny")
        checkpointed = RunSpec("fedtiny", overrides=(
            ("checkpoint_dir", "/tmp/x"), ("checkpoint_every", 1),
            ("resume", True),
        ))
        assert plain.fingerprint() == checkpointed.fingerprint()

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown config override"):
            RunSpec("fedtiny", overrides=(("no_such_knob", 1),))

    def test_non_scalar_override_rejected(self):
        with pytest.raises(ValueError, match="JSON scalar"):
            RunSpec("fedtiny", overrides=(("rounds", [1, 2]),))

    def test_none_override_means_preset_default(self):
        spec = RunSpec("fedtiny", overrides=(("rounds", None),))
        assert spec.overrides == ()
        assert spec.fingerprint() == RunSpec("fedtiny").fingerprint()

    def test_dict_roundtrip(self):
        spec = RunSpec("snip", model="vgg11", target_density=0.1,
                       seed=3, overrides=(("rounds", 2),))
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_expand_grid_order_and_axis_mapping(self):
        specs = expand_grid(
            {"density": [0.05, 0.1], "rounds": [1, 2]},
            {"method": "fedtiny", "scale": "tiny"},
        )
        assert len(specs) == 4
        # Last axis varies fastest; non-core names become overrides.
        assert [s.target_density for s in specs] == [0.05, 0.05, 0.1, 0.1]
        assert [dict(s.overrides)["rounds"] for s in specs] == [1, 2, 1, 2]
        assert specs == expand_grid(
            {"density": [0.05, 0.1], "rounds": [1, 2]},
            {"method": "fedtiny", "scale": "tiny"},
        )

    def test_expand_grid_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown config override"):
            expand_grid({"bogus": [1]}, {"method": "fedtiny"})

    def test_expand_grid_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="no values"):
            expand_grid({"density": []}, {"method": "fedtiny"})

    def test_parse_axis_value(self):
        assert parse_axis_value("3") == 3
        assert parse_axis_value("0.5") == 0.5
        assert parse_axis_value("true") is True
        assert parse_axis_value("none") is None
        assert parse_axis_value("fedavg") == "fedavg"


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = SweepJournal.open(path)
        journal.append("r0", "running", attempt=0, detail="x")
        journal.append("r0", "done")
        journal.close()
        entries = SweepJournal.replay(path)
        assert [(e.run_id, e.state, e.seq) for e in entries] == [
            ("r0", "running", 0), ("r0", "done", 1),
        ]

    def test_torn_tail_ignored_and_repaired(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = SweepJournal.open(path)
        journal.append("r0", "running")
        journal.append("r0", "done", torn=True)  # simulated power cut
        journal.close()
        # Replay tolerates the torn tail without repairing it.
        assert [e.state for e in SweepJournal.replay(path)] == ["running"]
        # Reopening repairs: terminates the garbage and journals it.
        reopened = SweepJournal.open(path)
        assert reopened.repaired_tail
        assert reopened.repair_epoch == 1
        states = [e.state for e in reopened.entries]
        assert states == ["running", "torn_repaired"]
        reopened.append("r0", "done")
        reopened.close()
        assert [e.state for e in SweepJournal.replay(path)] == [
            "running", "torn_repaired", "done",
        ]

    def test_interior_damage_without_repair_marker_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = SweepJournal.open(path)
        journal.append("r0", "running")
        journal.close()
        text = path.read_text()
        path.write_text("garbage not json\n" + text)
        with pytest.raises(JournalError, match="damaged"):
            SweepJournal.replay(path)

    def test_seq_gap_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        entry = JournalEntry(seq=5, run_id="r0", state="running")
        path.write_text(entry.to_line())
        with pytest.raises(JournalError, match="seq"):
            SweepJournal.replay(path)

    def test_invalid_state_raises(self):
        with pytest.raises(JournalError, match="invalid state"):
            JournalEntry(seq=0, run_id="r0", state="exploded")
        with pytest.raises(JournalError, match="invalid state"):
            JournalEntry(seq=0, run_id=SWEEP_SCOPE, state="running")

    def test_duplicate_done_violates_exactly_once(self):
        entries = [
            JournalEntry(0, "r0", "running"),
            JournalEntry(1, "r0", "done"),
            JournalEntry(2, "r0", "done"),
        ]
        with pytest.raises(JournalError, match="exactly-once"):
            resolve_states(entries)

    def test_resolve_counts_failed_attempts(self):
        entries = [
            JournalEntry(0, "r0", "running", attempt=0),
            JournalEntry(1, "r0", "failed", attempt=0),
            JournalEntry(2, "r0", "running", attempt=1),
            JournalEntry(3, "r0", "failed", attempt=1),
        ]
        assert resolve_states(entries) == {"r0": ("failed", 2)}

    def test_index_version_check(self, tmp_path):
        path = tmp_path / "index.json"
        write_index(path, {"runs": []})
        assert read_index(path)["runs"] == []
        path.write_text('{"format_version": 99}')
        with pytest.raises(JournalError, match="version"):
            read_index(path)


# ----------------------------------------------------------------------
# Chaos: kill/resume byte-identity and exactly-once execution
# ----------------------------------------------------------------------
class TestSweepChaos:
    def test_kill_resume_byte_identity_over_seeded_points(self, tmp_path):
        specs = small_grid()
        reference = SweepOrchestrator(
            tmp_path / "ref", specs, runner=fake_runner,
            faults=RUN_FAULTS, sweep_seed=3,
        )
        reference.execute()
        golden = (tmp_path / "ref" / "results.json").read_bytes()

        killed = 0
        for kill_point in range(1, 13):
            out = tmp_path / f"kill{kill_point}"
            orchestrator = SweepOrchestrator(
                out, specs, runner=fake_runner,
                faults=CHAOS, sweep_seed=3,
                kill_after_events=kill_point,
            )
            try:
                orchestrator.execute()
            except SweepKilled:
                killed += 1
                run_to_completion(out)
            assert (out / "results.json").read_bytes() == golden, (
                f"store diverged after kill point {kill_point}"
            )
            # Exactly-once: every run journals done exactly once.
            entries = SweepJournal.replay(out / "sweep.journal")
            done = [e.run_id for e in entries if e.state == "done"]
            assert sorted(done) == sorted(set(done))
        assert killed >= 5, "chaos suite must cover >= 5 seeded kills"

    def test_completed_runs_never_reexecute_after_resume(self, tmp_path):
        specs = small_grid()
        out = tmp_path / "sweep"
        calls: list[str] = []

        def counting_runner(spec, config_extras):
            calls.append(spec.fingerprint())
            return fake_runner(spec, config_extras)

        orchestrator = SweepOrchestrator(
            out, specs, runner=counting_runner, kill_after_events=5,
        )
        with pytest.raises(SweepKilled):
            orchestrator.execute()
        done_before = {
            run_id for run_id, (state, _) in resolve_states(
                SweepJournal.replay(out / "sweep.journal")
            ).items() if state == "done"
        }
        assert done_before, "kill point must land after some completions"
        finished = {
            fp for fp, run_id in zip(
                (s.fingerprint() for s in specs),
                (f"{i:04d}-{s.fingerprint()[:12]}"
                 for i, s in enumerate(specs)),
            ) if run_id in done_before
        }
        calls.clear()
        run_to_completion(out, runner=counting_runner)
        assert not (set(calls) & finished), (
            "a journaled-done run was re-executed on resume"
        )

    def test_torn_journal_write_repairs_and_converges(self, tmp_path):
        specs = small_grid()
        reference = SweepOrchestrator(
            tmp_path / "ref", specs, runner=fake_runner,
        )
        reference.execute()
        golden = (tmp_path / "ref" / "results.json").read_bytes()

        out = tmp_path / "torn"
        orchestrator = SweepOrchestrator(
            out, specs, runner=fake_runner,
            faults="journal_torn_write:0.35", sweep_seed=11,
        )
        tears = 0
        try:
            orchestrator.execute()
        except SweepKilled:
            tears += 1
            _, resumes = run_to_completion(out)
            tears += resumes
        assert tears >= 1, "tear probability did not fire; reseed the test"
        entries = SweepJournal.replay(out / "sweep.journal")
        repairs = [e for e in entries
                   if e.run_id == SWEEP_SCOPE and e.state == "torn_repaired"]
        assert len(repairs) == tears
        # Journal tears never touch results: byte-identical store.
        assert (out / "results.json").read_bytes() == golden

    def test_random_scheduler_interleavings_assemble_identically(
        self, tmp_path
    ):
        specs = small_grid()
        SweepOrchestrator(
            tmp_path / "grid", specs, runner=fake_runner,
        ).execute()
        golden = (tmp_path / "grid" / "results.json").read_bytes()
        for seed in (1, 2, 3):
            out = tmp_path / f"random{seed}"
            SweepOrchestrator(
                out, specs, runner=fake_runner,
                scheduler="random", sweep_seed=seed,
            ).execute()
            # The store is assembled in grid order whatever order the
            # scheduler executed in, and every spec ran exactly once.
            assert (out / "results.json").read_bytes() == golden
            entries = SweepJournal.replay(out / "sweep.journal")
            done = [e.run_id for e in entries if e.state == "done"]
            assert len(done) == len(specs) == len(set(done))


# ----------------------------------------------------------------------
# Defenses: retry, quarantine, abort, degradation guards
# ----------------------------------------------------------------------
class TestSweepDefenses:
    def test_poisoned_config_quarantined_rest_completes(self, tmp_path):
        specs = small_grid()
        poisoned = specs[1].fingerprint()

        def sometimes_poisoned(spec, config_extras):
            if spec.fingerprint() == poisoned:
                raise RuntimeError("this config always explodes")
            return fake_runner(spec, config_extras)

        out = tmp_path / "sweep"
        report = SweepOrchestrator(
            out, specs, runner=sometimes_poisoned,
            retry=RetryPolicy(max_attempts=2),
        ).execute()
        assert report.done == len(specs) - 1
        assert report.quarantined == 1
        assert report.retries == 1  # one extra attempt before quarantine
        kinds = [(f.kind, f.action) for f in report.failures]
        assert kinds.count(("run_exception", "retried")) == 2
        assert ("retry_exhausted", "quarantined") in kinds
        # The quarantined run is excluded from the store; the rest ship.
        store = json.loads((out / "results.json").read_text())
        assert len(store["results"]) == len(specs) - 1

    def test_max_failures_aborts_cleanly(self, tmp_path):
        def always_broken(spec, config_extras):
            raise RuntimeError("environment is on fire")

        out = tmp_path / "sweep"
        report = SweepOrchestrator(
            out, small_grid(), runner=always_broken,
            retry=RetryPolicy(max_attempts=1), max_failures=0,
        ).execute()
        assert report.aborted
        assert report.quarantined == 1
        assert report.pending == 3
        assert report.store_path is None
        entries = SweepJournal.replay(out / "sweep.journal")
        assert any(e.state == "aborted" for e in entries)

    def test_fresh_sweep_refuses_existing_dir(self, tmp_path):
        out = tmp_path / "sweep"
        SweepOrchestrator(out, small_grid()[:1], runner=fake_runner).execute()
        with pytest.raises(JournalError, match="already holds a sweep"):
            SweepOrchestrator(
                out, small_grid()[:1], runner=fake_runner
            ).execute()

    def test_duplicate_specs_rejected(self, tmp_path):
        spec = RunSpec("fedtiny", scale="tiny")
        with pytest.raises(ValueError, match="duplicate"):
            SweepOrchestrator(
                tmp_path / "sweep", [spec, spec], runner=fake_runner
            ).execute()

    def test_resume_rejects_mismatched_grid(self, tmp_path):
        out = tmp_path / "sweep"
        specs = small_grid()
        with pytest.raises(SweepKilled):
            SweepOrchestrator(
                out, specs, runner=fake_runner, kill_after_events=2,
            ).execute()
        with pytest.raises(JournalError, match="does not match"):
            SweepOrchestrator(
                out, specs[:2], resume=True, runner=fake_runner,
            ).execute()

    def test_resume_restores_identity_knobs_from_index(self, tmp_path):
        out = tmp_path / "sweep"
        with pytest.raises(SweepKilled):
            SweepOrchestrator(
                out, small_grid(), runner=fake_runner,
                faults=RUN_FAULTS, sweep_seed=7, kill_after_events=2,
                retry=RetryPolicy(max_attempts=5),
            ).execute()
        resumed = SweepOrchestrator(
            out, resume=True, runner=fake_runner,
            faults="run_crash:0.9", sweep_seed=999,
        )
        resumed.execute()
        assert resumed.faults == RUN_FAULTS
        assert resumed.sweep_seed == 7
        assert resumed.retry.max_attempts == 5
        assert resumed.report.resumed

    def test_resume_requires_an_index(self, tmp_path):
        with pytest.raises(JournalError, match="nothing to resume"):
            SweepOrchestrator(
                tmp_path / "missing", resume=True, runner=fake_runner,
            ).execute()

    def test_done_run_with_missing_artifact_refuses_resume(self, tmp_path):
        out = tmp_path / "sweep"
        specs = small_grid()[:2]
        SweepOrchestrator(out, specs, runner=fake_runner).execute()
        victim = next((out / "runs").iterdir())
        victim.unlink()
        with pytest.raises(JournalError, match="missing"):
            SweepOrchestrator(
                out, resume=True, runner=fake_runner
            ).execute()

    def test_scheduler_registry(self, tmp_path):
        assert available_schedulers() == sorted(available_schedulers())
        assert "grid" in available_schedulers()
        assert "random" in available_schedulers()
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("grid", GridScheduler)
        with pytest.raises(ValueError, match="unknown scheduler"):
            SweepOrchestrator(
                tmp_path / "sweep", small_grid()[:1],
                runner=fake_runner, scheduler="bayesopt",
            ).execute()

    def test_report_json_roundtrips(self, tmp_path):
        report = SweepOrchestrator(
            tmp_path / "sweep", small_grid()[:1], runner=fake_runner,
        ).execute()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["done"] == 1
        assert payload["failures"] == []


# ----------------------------------------------------------------------
# Real child processes, the watchdog, and a real kill -9 of the CLI
# ----------------------------------------------------------------------
def _one_round_specs(count=2):
    return [
        RunSpec(method="fedavg", scale="tiny", seed=seed,
                overrides=(("rounds", 1),))
        for seed in range(count)
    ]


class TestSweepProcessIsolation:
    def test_process_isolation_matches_serial_bytes(self, tmp_path):
        specs = _one_round_specs()
        SweepOrchestrator(
            tmp_path / "proc", specs,
            isolation="process", watchdog_seconds=120,
        ).execute()
        SweepOrchestrator(
            tmp_path / "serial", specs, isolation="serial",
        ).execute()
        assert (tmp_path / "proc" / "results.json").read_bytes() == \
            (tmp_path / "serial" / "results.json").read_bytes()

    def test_injected_crash_kills_real_child_then_quarantines(
        self, tmp_path
    ):
        report = SweepOrchestrator(
            tmp_path / "sweep", _one_round_specs(1),
            faults="run_crash:1.0", retry=RetryPolicy(max_attempts=2),
            isolation="process", watchdog_seconds=60,
        ).execute()
        assert report.quarantined == 1
        crashes = [f for f in report.failures if f.kind == "run_crash"]
        assert len(crashes) == 2
        assert all("exited with code 41" in f.detail for f in crashes)

    def test_watchdog_kills_hung_child(self, tmp_path):
        start = time.monotonic()
        report = SweepOrchestrator(
            tmp_path / "sweep", _one_round_specs(1),
            faults="run_hang:1.0", retry=RetryPolicy(max_attempts=1),
            isolation="process", watchdog_seconds=2,
        ).execute()
        assert report.quarantined == 1
        (hang,) = [f for f in report.failures if f.kind == "run_hang"]
        assert "watchdog" in hang.detail
        assert time.monotonic() - start < 30

    def test_checkpointed_runs_stay_byte_identical(self, tmp_path):
        specs = _one_round_specs(1)
        SweepOrchestrator(
            tmp_path / "plain", specs, isolation="serial",
        ).execute()
        checkpointed = SweepOrchestrator(
            tmp_path / "ckpt", specs, isolation="serial",
            checkpoint_runs=True,
        )
        checkpointed.execute()
        assert (tmp_path / "ckpt" / "checkpoints").is_dir()
        assert (tmp_path / "plain" / "results.json").read_bytes() == \
            (tmp_path / "ckpt" / "results.json").read_bytes()


class TestSweepCLI:
    def _cli(self, *args):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", *args],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )

    def _run_cli(self, *args, timeout=600):
        proc = self._cli(*args)
        out, err = proc.communicate(timeout=timeout)
        return proc.returncode, out.decode(), err.decode()

    GRID = ("--grid", "seed=0,1", "--method", "fedavg",
            "--scale", "tiny", "--grid", "rounds=1",
            "--isolation", "serial")

    def test_cli_sigkill_resume_byte_identity(self, tmp_path):
        code, out, err = self._run_cli(
            "--out", str(tmp_path / "ref"), *self.GRID,
        )
        assert code == 0, err
        golden = (tmp_path / "ref" / "results.json").read_bytes()

        victim = tmp_path / "victim"
        proc = self._cli("--out", str(victim), *self.GRID)
        # Kill as soon as the journal proves the sweep is mid-flight.
        journal = victim / "sweep.journal"
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal.exists() and journal.stat().st_size > 0:
                break
            if proc.poll() is not None:
                break  # finished before we could kill it: still valid
            time.sleep(0.02)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.communicate(timeout=60)

        code, out, err = self._run_cli(
            "--out", str(victim), "--resume",
        )
        assert code == 0, err
        assert (victim / "results.json").read_bytes() == golden
        entries = SweepJournal.replay(victim / "sweep.journal")
        done = [e.run_id for e in entries if e.state == "done"]
        assert sorted(done) == sorted(set(done))

    def test_cli_rejects_malformed_grid(self, tmp_path):
        code, out, err = self._run_cli(
            "--out", str(tmp_path / "x"), "--grid", "nonsense",
        )
        assert code == 2
        assert "malformed --grid" in err

    def test_cli_injected_tear_exits_resumable(self, tmp_path):
        out_dir = tmp_path / "torn"
        # Tear probability 1 on the very first append: exits code 3
        # with resume instructions, holding only a repaired journal.
        code, out, err = self._run_cli(
            "--out", str(out_dir), *self.GRID,
            "--faults", "journal_torn_write:1.0",
        )
        assert code == 3
        assert "--resume" in err
