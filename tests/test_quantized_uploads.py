"""Tests for quantized uploads in the federated loop (FL-PQSU's Q stage)."""

import numpy as np
import pytest

from repro.data import SyntheticSpec, generate
from repro.fl import FederatedContext, FLConfig
from repro.nn.models import build_model


@pytest.fixture(scope="module")
def setup():
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=160, num_test=60,
            image_size=8, noise=0.4, modes_per_class=1, seed=61,
        )
    )
    public, federated = train.split(0.2, np.random.default_rng(4))
    return public, federated, test


def _ctx(setup, bits=None, rounds=2):
    public, federated, test = setup
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=5
    )
    config = FLConfig(
        num_clients=3, rounds=rounds, local_epochs=1, batch_size=16,
        lr=0.05, quantize_upload_bits=bits, seed=0,
    )
    return FederatedContext(model, federated, test, config,
                            dataset_name="unit", model_name="resnet18")


class TestQuantizedUploads:
    def test_upload_bytes_shrink(self, setup):
        dense = _ctx(setup)
        quantized = _ctx(setup, bits=8)
        assert (
            quantized.upload_bytes_per_client()
            < dense.upload_bytes_per_client()
        )
        # Download (server -> device) stays full precision.
        assert (
            quantized.model_exchange_bytes()
            == dense.model_exchange_bytes()
        )

    def test_round_still_learns(self, setup):
        # 12-bit uploads are effectively lossless for training; 8-bit
        # trades accuracy for bytes (covered by the closeness test).
        # Pretrain first (as every method does) so federated training
        # starts from calibrated BN statistics.
        public, _, _ = setup
        ctx = _ctx(setup, bits=12, rounds=3)
        from repro.fl import get_state, server_pretrain

        server_pretrain(ctx.model, public, epochs=2, batch_size=16)
        ctx.server.commit_state(get_state(ctx.model))
        acc_before, _ = ctx.evaluate_global()
        for _ in range(3):
            ctx.run_fedavg_round()
        acc_after, _ = ctx.evaluate_global()
        assert acc_after > acc_before

    def test_aggregate_close_to_unquantized(self, setup):
        full = _ctx(setup)
        lossy = _ctx(setup, bits=12)
        full.run_fedavg_round()
        lossy.run_fedavg_round()
        for key in full.server.state:
            if key.startswith("buffer::"):
                continue
            scale = np.abs(full.server.state[key]).max() + 1e-8
            gap = np.abs(
                full.server.state[key] - lossy.server.state[key]
            ).max()
            assert gap / scale < 0.05

    def test_comm_tracker_records_asymmetric_traffic(self, setup):
        ctx = _ctx(setup, bits=4)
        ctx.run_fedavg_round()
        assert ctx.comm.upload_bytes < ctx.comm.download_bytes

    def test_masked_quantized_uploads_stay_sparse(self, setup):
        from repro.pruning import magnitude_mask_uniform

        ctx = _ctx(setup, bits=8)
        masks = magnitude_mask_uniform(ctx.model, 0.1)
        ctx.install_masks(masks)
        states = ctx.run_fedavg_round()
        for name in masks:
            np.testing.assert_array_equal(
                ctx.server.state[name][~masks[name]], 0.0
            )
        del states

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLConfig(quantize_upload_bits=1)
        with pytest.raises(ValueError):
            FLConfig(quantize_upload_bits=32)


class TestNarrowCodeDtypes:
    """quantize_tensor must store codes in the narrowest integer dtype
    that fits, so pickled process-executor uploads shrink accordingly."""

    @pytest.mark.parametrize(
        "bits,expected",
        [(2, np.int8), (4, np.int8), (8, np.int8),
         (9, np.int16), (12, np.int16), (16, np.int16)],
    )
    def test_dtype_is_narrowest_fit(self, bits, expected):
        from repro.sparse import quantize_tensor

        values = np.linspace(-1.0, 1.0, 64, dtype=np.float32)
        quantized = quantize_tensor(values, bits=bits)
        assert quantized.codes.dtype == expected
        # Full code range must survive the dtype.
        max_code = (1 << (bits - 1)) - 1
        assert quantized.codes.max() == max_code
        assert quantized.codes.min() >= -max_code - 1

    def test_payload_bytes_unchanged_by_dtype(self):
        from repro.sparse import quantize_tensor

        values = np.linspace(-1.0, 1.0, 100, dtype=np.float32)
        for bits in (2, 8, 12, 16):
            quantized = quantize_tensor(values, bits=bits)
            # On-the-wire accounting is bit-packed + one float32 scale,
            # independent of the in-memory dtype.
            assert quantized.payload_bytes == (100 * bits + 7) // 8 + 4

    def test_roundtrip_unchanged(self):
        from repro.sparse import dequantize_tensor, quantize_tensor

        rng = np.random.default_rng(0)
        values = rng.normal(size=(7, 9)).astype(np.float32)
        for bits in (4, 8, 16):
            restored = dequantize_tensor(quantize_tensor(values, bits))
            assert restored.shape == values.shape
            assert np.abs(restored - values).max() <= 2.0 * (
                np.abs(values).max() / ((1 << (bits - 1)) - 1)
            )

    def test_pickles_shrink(self):
        import pickle

        from repro.sparse import quantize_tensor

        values = np.random.default_rng(1).normal(size=4096).astype(
            np.float32)
        int8_payload = pickle.dumps(quantize_tensor(values, bits=8))
        int16_payload = pickle.dumps(quantize_tensor(values, bits=16))
        raw_payload = pickle.dumps(values)
        assert len(int8_payload) < len(int16_payload) < len(raw_payload)
        # int8 codes: ~1 byte per element instead of 4.
        assert len(int8_payload) < len(raw_payload) // 3
