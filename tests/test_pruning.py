"""Tests for the pruning algorithms and budget arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticSpec, generate
from repro.pruning import (
    generate_candidate_pool,
    global_score_mask,
    io_layer_names,
    magnitude_mask_global,
    magnitude_mask_layerwise,
    magnitude_mask_uniform,
    random_mask_uniform,
    resolve_protected_layers,
    snip_mask,
    synflow_mask,
    topk_bool_mask,
    weight_magnitude_scores,
)
from repro.sparse import prunable_parameters


class TestTopKBoolMask:
    def test_keeps_largest(self):
        scores = np.array([3.0, 1.0, 2.0, 5.0])
        mask = topk_bool_mask(scores, 2)
        np.testing.assert_array_equal(mask, [True, False, False, True])

    def test_keep_zero_and_all(self):
        scores = np.ones(4)
        assert not topk_bool_mask(scores, 0).any()
        assert topk_bool_mask(scores, 4).all()
        assert topk_bool_mask(scores, 10).all()

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            topk_bool_mask(np.ones(3), -1)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 50),
        data=st.data(),
    )
    def test_exact_count(self, n, data):
        keep = data.draw(st.integers(0, n))
        rng = np.random.default_rng(0)
        scores = rng.normal(size=n)
        assert topk_bool_mask(scores, keep).sum() == keep


class TestMagnitudeMasks:
    def test_global_density(self, tiny_resnet):
        masks = magnitude_mask_global(tiny_resnet, 0.1)
        assert masks.density == pytest.approx(0.1, rel=0.01)

    def test_global_keeps_largest_weights(self, tiny_resnet):
        masks = magnitude_mask_global(tiny_resnet, 0.05)
        scores = weight_magnitude_scores(tiny_resnet)
        all_scores = np.concatenate([s.reshape(-1) for s in scores.values()])
        kept_scores = np.concatenate(
            [
                scores[name].reshape(-1)[masks[name].reshape(-1)]
                for name in masks
            ]
        )
        threshold = np.sort(all_scores)[-int(len(kept_scores))]
        assert kept_scores.min() >= threshold - 1e-6

    def test_uniform_layer_densities(self, tiny_resnet):
        masks = magnitude_mask_uniform(tiny_resnet, 0.2)
        for name in masks:
            assert masks.layer_density(name) == pytest.approx(0.2, abs=0.05)

    def test_uniform_never_disconnects_layers(self, tiny_resnet):
        masks = magnitude_mask_uniform(tiny_resnet, 1e-5)
        for name in masks:
            assert masks.layer_active(name) >= 1

    def test_layerwise_custom_densities(self, tiny_resnet):
        names = [n for n, _ in prunable_parameters(tiny_resnet)]
        densities = {name: 0.5 for name in names}
        densities[names[0]] = 1.0
        masks = magnitude_mask_layerwise(tiny_resnet, densities)
        assert masks.layer_density(names[0]) == 1.0

    def test_protected_layers_stay_dense(self, tiny_resnet):
        first, last = io_layer_names(tiny_resnet)
        masks = magnitude_mask_global(
            tiny_resnet, 0.05, protected=frozenset({first, last})
        )
        assert masks.layer_density(first) == 1.0
        assert masks.layer_density(last) == 1.0

    def test_random_mask_density(self, tiny_resnet):
        masks = random_mask_uniform(
            tiny_resnet, 0.3, np.random.default_rng(0)
        )
        assert masks.density == pytest.approx(0.3, abs=0.02)

    def test_invalid_density_raises(self, tiny_resnet):
        with pytest.raises(ValueError):
            magnitude_mask_global(tiny_resnet, 0.0)
        scores = weight_magnitude_scores(tiny_resnet)
        with pytest.raises(ValueError):
            magnitude_mask_layerwise(
                tiny_resnet,
                {n: 2.0 for n, _ in prunable_parameters(tiny_resnet)},
            )

    def test_missing_scores_raise(self, tiny_resnet):
        with pytest.raises(KeyError):
            global_score_mask(tiny_resnet, {}, 0.5)


class TestProtection:
    def test_io_layer_names(self, tiny_resnet):
        first, last = io_layer_names(tiny_resnet)
        assert first == "stem_conv.weight"
        assert last == "fc.weight"

    def test_protection_dropped_when_budget_too_small(self, tiny_resnet):
        # At width 0.125 the IO layers cannot fit in a 0.1% budget.
        assert resolve_protected_layers(tiny_resnet, 0.001) == frozenset()

    def test_protection_kept_with_generous_budget(self, tiny_resnet):
        protected = resolve_protected_layers(tiny_resnet, 0.5)
        assert protected == frozenset(io_layer_names(tiny_resnet))

    def test_protect_io_false(self, tiny_resnet):
        assert resolve_protected_layers(
            tiny_resnet, 0.5, protect_io=False
        ) == frozenset()


class TestSNIP:
    @pytest.fixture
    def small_data(self):
        train, _ = generate(
            SyntheticSpec(
                name="t", num_classes=4, num_train=64, num_test=8,
                image_size=8, seed=0,
            )
        )
        return train

    def test_density_and_validity(self, tiny_resnet, small_data):
        masks = snip_mask(tiny_resnet, small_data, 0.05, iterations=3)
        assert masks.density == pytest.approx(0.05, rel=0.05)
        assert masks.matches_model(tiny_resnet)

    def test_model_masks_restored(self, tiny_resnet, small_data):
        snip_mask(tiny_resnet, small_data, 0.1, iterations=2)
        for _, param in prunable_parameters(tiny_resnet):
            assert param.mask is None

    def test_sensitivity_based_not_magnitude(self, tiny_resnet, small_data):
        snip = snip_mask(tiny_resnet, small_data, 0.1, iterations=2)
        magnitude = magnitude_mask_global(tiny_resnet, 0.1)
        assert snip.difference_count(magnitude) > 0

    def test_invalid_iterations(self, tiny_resnet, small_data):
        with pytest.raises(ValueError):
            snip_mask(tiny_resnet, small_data, 0.1, iterations=0)


class TestSynFlow:
    def test_density_and_validity(self, tiny_resnet):
        masks = synflow_mask(tiny_resnet, (3, 16, 16), 0.05, iterations=5)
        assert masks.density == pytest.approx(0.05, rel=0.05)
        assert masks.matches_model(tiny_resnet)

    def test_weights_restored(self, tiny_resnet):
        before = {
            n: p.data.copy() for n, p in tiny_resnet.named_parameters()
        }
        synflow_mask(tiny_resnet, (3, 16, 16), 0.1, iterations=3)
        for name, param in tiny_resnet.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_avoids_layer_collapse_better_than_oneshot(self, tiny_resnet):
        """Iterative SynFlow must keep every layer connected at 1%."""
        masks = synflow_mask(tiny_resnet, (3, 16, 16), 0.01, iterations=10)
        disconnected = [
            name for name in masks if masks.layer_active(name) == 0
        ]
        assert not disconnected

    def test_data_free_deterministic(self, tiny_resnet):
        a = synflow_mask(tiny_resnet, (3, 16, 16), 0.1, iterations=3)
        b = synflow_mask(tiny_resnet, (3, 16, 16), 0.1, iterations=3)
        assert a.difference_count(b) == 0


class TestCandidatePool:
    def test_pool_size_and_budget(self, tiny_resnet):
        pool = generate_candidate_pool(
            tiny_resnet, 0.05, 6, np.random.default_rng(0)
        )
        assert len(pool) == 6
        for candidate in pool:
            assert candidate.density <= 0.05 * 1.001

    def test_first_candidate_is_uniform(self, tiny_resnet):
        pool = generate_candidate_pool(
            tiny_resnet, 0.05, 3, np.random.default_rng(0)
        )
        densities = list(pool[0].layer_densities.values())
        assert len(set(np.round(densities, 6))) == 1

    def test_candidates_differ(self, tiny_resnet):
        pool = generate_candidate_pool(
            tiny_resnet, 0.05, 4, np.random.default_rng(0), noise=0.9
        )
        assert pool[1].masks.difference_count(pool[2].masks) > 0

    def test_protected_layers_dense_in_all_candidates(self, tiny_resnet):
        first, last = io_layer_names(tiny_resnet)
        pool = generate_candidate_pool(
            tiny_resnet, 0.2, 3, np.random.default_rng(0),
            protected=frozenset({first, last}),
        )
        for candidate in pool:
            assert candidate.masks.layer_density(first) == 1.0
            assert candidate.masks.layer_density(last) == 1.0

    def test_validation(self, tiny_resnet):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_candidate_pool(tiny_resnet, 0.05, 0, rng)
        with pytest.raises(ValueError):
            generate_candidate_pool(tiny_resnet, 0.0, 3, rng)
        with pytest.raises(ValueError):
            generate_candidate_pool(tiny_resnet, 0.05, 3, rng, noise=2.0)
