"""Tests for the per-table/figure experiment functions (tiny subsets).

These exercise the same code paths as the benchmark harness but with
minimal grids so the test suite stays fast; the full grids run under
``pytest benchmarks/``.
"""

import pytest

from repro.experiments.paper import (
    fig2_block_partition,
    fig4_ablation,
    fig5_pool_size,
    fig6_noniid,
    table2_bn_overhead,
    table3_schedules,
    table5_small_model_densities,
)


class TestFig2:
    def test_partition_output(self):
        output = fig2_block_partition(scale="tiny")
        assert output.experiment_id == "fig2"
        assert "resnet18" in output.table
        assert "vgg11" in output.table
        assert len(output.data["rows"]) == 10


class TestTable2:
    def test_selection_overhead_rows(self):
        output = table2_bn_overhead(scale="tiny", densities=(0.05,))
        assert 0.05 in output.data
        row = output.data[0.05]
        assert row["selection_flops"] > 0
        assert row["train_flops_per_round"] > 0
        assert "Pool size" in output.table


class TestFig4:
    def test_single_density_all_arms(self):
        output = fig4_ablation(scale="tiny", densities=(0.1,))
        series = output.data["series"]
        assert set(series) == {
            "vanilla", "adaptive_bn_only", "vanilla+progressive", "fedtiny",
        }
        for per_density in series.values():
            assert 0.1 in per_density


class TestFig5:
    def test_pool_grid(self):
        output = fig5_pool_size(
            scale="tiny", densities=(0.1,), pool_sizes=(1, 2),
        )
        assert output.data["accuracy"][0.1].keys() == {1, 2}
        comm = output.data["comm_mb"][0.1]
        assert comm[1] <= comm[2]


class TestTable3:
    def test_strategy_labels(self):
        output = table3_schedules(scale="tiny", densities=(0.1,))
        assert {"layer", "layer (b)", "block", "block (b)", "entire"} <= set(
            output.data
        )


class TestFig6:
    def test_alpha_series(self):
        output = fig6_noniid(
            scale="tiny", alphas=(0.5, 10.0),
            methods=("synflow", "fedtiny"), density=0.1,
        )
        series = output.data["series"]
        assert set(series) == {"synflow", "fedtiny"}
        assert set(series["fedtiny"]) == {0.5, 10.0}


class TestTable5:
    def test_density_columns(self):
        output = table5_small_model_densities(
            scale="tiny", densities=(0.1, 0.05),
            methods=("small_model", "fedtiny"),
        )
        matrix = output.data["matrix"]
        assert set(matrix) == {"small_model", "fedtiny"}
        assert set(matrix["fedtiny"]) == {"0.1", "0.05"}


class TestFig3Tiny:
    def test_minimal_grid(self):
        from repro.experiments.paper import fig3_density_sweep

        output = fig3_density_sweep(
            scale="tiny", datasets=("svhn",), densities=(0.1,),
            methods=("fl-pqsu", "fedtiny"),
        )
        series = output.data["series"]["svhn"]
        assert set(series) == {"fl-pqsu", "fedtiny"}
        assert 0.1 in series["fedtiny"]
        assert "[svhn]" in output.table


class TestTable1Tiny:
    def test_minimal_grid(self):
        from repro.experiments.paper import table1_accuracy_and_cost

        output = table1_accuracy_and_cost(
            scale="tiny", models=("resnet18",), densities=(0.1,),
            methods=("fl-pqsu", "fedtiny"),
        )
        block = output.data["resnet18"]
        assert set(block) == {"1.0", "0.1"}
        dense = block["1.0"][0]
        assert dense["method"] == "fedavg"
        rows = {r["method"]: r for r in block["0.1"]}
        assert rows["fedtiny"]["max_training_flops_per_round"] < (
            dense["max_training_flops_per_round"]
        )


class TestTable4Tiny:
    def test_minimal_grid(self):
        from repro.experiments.paper import table4_small_model_datasets

        output = table4_small_model_datasets(
            scale="tiny", datasets=("svhn",), density=0.1,
            methods=("small_model", "fedtiny"),
        )
        matrix = output.data["matrix"]
        assert set(matrix) == {"small_model", "fedtiny"}
        assert "svhn" in matrix["fedtiny"]
