"""Tests for pruning schedules and model block partitions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning import (
    PruningSchedule,
    cosine_adjustment_count,
    even_blocks,
    model_blocks,
)
from repro.sparse import prunable_parameters


class TestCosineCount:
    def test_initial_value(self):
        # a_0 = 0.15 * (1 + cos 0) * n = 0.3 n
        assert cosine_adjustment_count(0, 100, 1000) == 300

    def test_end_value_zero(self):
        assert cosine_adjustment_count(100, 100, 1000) == 0

    def test_midpoint(self):
        assert cosine_adjustment_count(50, 100, 1000) == round(0.15 * 1000)

    def test_beyond_stop_is_zero(self):
        assert cosine_adjustment_count(101, 100, 1000) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            cosine_adjustment_count(0, 0, 10)
        with pytest.raises(ValueError):
            cosine_adjustment_count(-1, 10, 10)
        with pytest.raises(ValueError):
            cosine_adjustment_count(0, 10, -1)

    @settings(max_examples=50, deadline=None)
    @given(
        t=st.integers(0, 200),
        stop=st.integers(1, 200),
        n=st.integers(0, 10_000),
    )
    def test_monotone_decreasing_and_bounded(self, t, stop, n):
        count = cosine_adjustment_count(t, stop, n)
        assert 0 <= count <= math.ceil(0.3 * n)
        if t < stop:
            assert count >= cosine_adjustment_count(
                min(t + 1, stop), stop, n
            )


class TestPruningSchedule:
    def test_pruning_round_cadence(self):
        sched = PruningSchedule(delta_rounds=10, stop_round=100)
        assert sched.is_pruning_round(10)
        assert sched.is_pruning_round(100)
        assert not sched.is_pruning_round(5)
        assert not sched.is_pruning_round(110)

    def test_groups_block_backward(self):
        sched = PruningSchedule(granularity="block", backward_order=True)
        groups = sched.groups_for([["a"], ["b"], ["c"]])
        assert groups == [["c"], ["b"], ["a"]]

    def test_groups_layer_granularity(self):
        sched = PruningSchedule(granularity="layer", backward_order=False)
        groups = sched.groups_for([["a", "b"], ["c"]])
        assert groups == [["a"], ["b"], ["c"]]

    def test_groups_entire(self):
        sched = PruningSchedule(granularity="entire")
        groups = sched.groups_for([["a", "b"], ["c"]])
        assert groups == [["a", "b", "c"]]

    def test_group_cycling(self):
        sched = PruningSchedule(granularity="block", backward_order=True)
        blocks = [["a"], ["b"]]
        assert sched.group_for_pruning_round(0, blocks) == ["b"]
        assert sched.group_for_pruning_round(1, blocks) == ["a"]
        assert sched.group_for_pruning_round(2, blocks) == ["b"]

    def test_adjustment_count_scales_with_round(self):
        sched = PruningSchedule(delta_rounds=1, stop_round=100)
        early = sched.adjustment_count(0, 1, 1000)
        late = sched.adjustment_count(90, 1, 1000)
        assert early > late

    def test_validation(self):
        with pytest.raises(ValueError):
            PruningSchedule(delta_rounds=0)
        with pytest.raises(ValueError):
            PruningSchedule(stop_round=0)
        with pytest.raises(ValueError):
            PruningSchedule(granularity="half")
        with pytest.raises(ValueError):
            PruningSchedule(fraction=0.9)


class TestBlocks:
    def test_resnet_blocks_cover_all_layers_once(self, tiny_resnet):
        blocks = model_blocks(tiny_resnet)
        names = [n for n, _ in prunable_parameters(tiny_resnet)]
        flat = [name for block in blocks for name in block]
        assert sorted(flat) == sorted(names)
        assert len(flat) == len(set(flat))

    def test_resnet_has_five_blocks(self, tiny_resnet):
        assert len(model_blocks(tiny_resnet)) == 5

    def test_resnet_block_composition(self, tiny_resnet):
        blocks = model_blocks(tiny_resnet)
        assert any("stem_conv" in n for n in blocks[0])
        assert all(n.startswith("stage2") for n in blocks[1])
        assert any(n.startswith("fc") for n in blocks[4])

    def test_vgg_blocks_cover_all_layers_once(self, tiny_vgg):
        blocks = model_blocks(tiny_vgg)
        names = [n for n, _ in prunable_parameters(tiny_vgg)]
        flat = [name for block in blocks for name in block]
        assert sorted(flat) == sorted(names)

    def test_vgg_has_five_blocks_with_classifier_last(self, tiny_vgg):
        blocks = model_blocks(tiny_vgg)
        assert len(blocks) == 5
        assert any(n.startswith("classifier") for n in blocks[-1])

    def test_even_blocks_generic_model(self, tiny_resnet):
        blocks = even_blocks(tiny_resnet, 3)
        assert len(blocks) == 3
        flat = [n for b in blocks for n in b]
        assert len(flat) == len(
            [n for n, _ in prunable_parameters(tiny_resnet)]
        )

    def test_even_blocks_more_blocks_than_layers(self, tiny_resnet):
        names = [n for n, _ in prunable_parameters(tiny_resnet)]
        blocks = even_blocks(tiny_resnet, len(names) + 10)
        assert len(blocks) == len(names)

    def test_even_blocks_validation(self, tiny_resnet):
        with pytest.raises(ValueError):
            even_blocks(tiny_resnet, 0)
