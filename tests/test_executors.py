"""Tests for the pluggable client-execution backends."""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.fl import (
    ClientExecutor,
    FLConfig,
    ProcessPoolClientExecutor,
    SerialExecutor,
    available_executors,
    build_executor,
    register_executor,
)
from repro.fl.executor import _EXECUTORS


def _result_record(result):
    """Everything RunResult captures, in comparable plain-data form."""
    return {
        "rounds": [vars(r) for r in result.rounds],
        "summary": result.to_dict(),
    }


class TestExecutorRegistry:
    def test_builtins_available(self):
        assert "serial" in available_executors()
        assert "process" in available_executors()

    def test_build_by_name(self):
        assert isinstance(build_executor("serial"), SerialExecutor)
        executor = build_executor("process", max_workers=2)
        assert isinstance(executor, ProcessPoolClientExecutor)
        executor.close()

    def test_unknown_executor_raises(self):
        with pytest.raises(KeyError):
            build_executor("quantum")

    def test_flconfig_validates_executor_name(self):
        with pytest.raises(ValueError):
            FLConfig(executor="quantum")
        with pytest.raises(ValueError):
            FLConfig(executor_workers=0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_executor("serial", SerialExecutor)

    def test_custom_backend_registration(self):
        class _Probe(SerialExecutor):
            name = "probe"

        try:
            register_executor("probe", _Probe)
            assert "probe" in available_executors()
            assert isinstance(build_executor("probe"), _Probe)
            assert FLConfig(executor="probe").executor == "probe"
        finally:
            _EXECUTORS.pop("probe", None)


class TestSerialVsParallel:
    def test_identical_run_results_on_fixed_seed(self):
        serial = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            scale="tiny", pool_size=2, seed=0, rounds=2,
        )
        parallel = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            scale="tiny", pool_size=2, seed=0, rounds=2,
            executor="process",
        )
        a, b = _result_record(serial), _result_record(parallel)
        assert a["summary"] == b["summary"]
        for ra, rb in zip(a["rounds"], b["rounds"]):
            assert ra == rb

    def test_process_backend_restores_client_rng(self):
        # The parallel backend trains pickled client copies; the
        # original clients' RNG streams must still advance exactly as
        # under serial execution, otherwise round 2+ batches diverge
        # (covered end-to-end above; this checks the mechanism).
        from repro.experiments import make_context, get_scale

        ctx, _ = make_context(
            "resnet18", "cifar10", get_scale("tiny"), seed=0,
            executor="process",
        )
        before = [c.rng.bit_generator.state for c in ctx.clients]
        try:
            ctx.run_fedavg_round()
        finally:
            ctx.close()
        after = [c.rng.bit_generator.state for c in ctx.clients]
        assert before != after

    def test_executor_close_is_idempotent(self):
        executor = ProcessPoolClientExecutor(max_workers=1)
        executor.close()
        executor.close()


class TestExecutorContract:
    def test_abstract_base_requires_run_clients(self):
        with pytest.raises(TypeError):
            ClientExecutor()


def _state_bits(model):
    from repro.fl.state import get_state

    return {
        k: v.copy().view(np.uint32) for k, v in get_state(model).items()
    }


class TestSerialSnapshotRestore:
    """The flat-snapshot download must be bit-identical to reinstall."""

    def _ctx(self):
        from repro.experiments import make_context, get_scale

        ctx, _ = make_context(
            "resnet18", "cifar10", get_scale("tiny"), seed=0
        )
        return ctx

    def test_restore_matches_load_into_model(self):
        ctx = self._ctx()
        ctx.server.broadcast()
        reference = _state_bits(ctx.model)
        # Scribble over the model the way a client's local SGD would.
        for _, param in ctx.model.named_parameters():
            param.data = param.data + 0.25
        ctx.server.restore_broadcast()
        fast = _state_bits(ctx.model)
        ctx.server.load_into_model()
        canonical = _state_bits(ctx.model)
        for name in reference:
            assert (fast[name] == canonical[name]).all(), name
            assert (fast[name] == reference[name]).all(), name
        ctx.close()

    def test_restore_without_broadcast_falls_back(self):
        ctx = self._ctx()
        ctx.server.restore_broadcast()  # no prior broadcast: full install
        canonical = _state_bits(ctx.server.load_into_model())
        fast = _state_bits(ctx.model)
        for name in canonical:
            assert (fast[name] == canonical[name]).all(), name
        ctx.close()

    def test_commit_invalidates_snapshot(self):
        from repro.fl.state import get_state

        ctx = self._ctx()
        ctx.server.broadcast()
        new_state = {
            k: v + 1.0 for k, v in get_state(ctx.model).items()
        }
        ctx.server.commit_state(new_state)
        ctx.server.restore_broadcast()  # must re-capture, not reuse
        state = get_state(ctx.model)
        for name, value in ctx.server.state.items():
            np.testing.assert_array_equal(state[name], value, err_msg=name)
        ctx.close()


class TestWorkersSurviveMaskChanges:
    """Persistent shm workers must track FedTiny-style mask updates."""

    def test_mask_epoch_installs_new_masks_in_workers(self):
        from repro.experiments import make_context, get_scale
        from repro.sparse.mask import MaskSet

        ctx, _ = make_context(
            "resnet18", "cifar10", get_scale("tiny"), seed=0,
            executor="process",
        )
        try:
            ctx.run_fedavg_round()
            epoch_before = ctx.server.mask_epoch
            # Prune half of every prunable tensor mid-run, as FedTiny's
            # mask adjustment would between rounds.
            rng = np.random.default_rng(3)
            masks = {}
            for name, param in ctx.model.named_parameters():
                if param.prunable:
                    mask = rng.random(param.shape) < 0.5
                    mask.reshape(-1)[0] = True
                    masks[name] = mask
            ctx.install_masks(MaskSet(masks))
            assert ctx.server.mask_epoch == epoch_before + 1
            states = ctx.run_fedavg_round()
            # Workers trained under the new masks: every upload honors
            # them (pruned positions exactly zero).
            for state in states:
                for name, mask in masks.items():
                    np.testing.assert_array_equal(
                        state[name][~mask], 0.0, err_msg=name
                    )
        finally:
            ctx.close()

    def test_serial_process_parity_across_mask_change(self):
        # End-to-end fedtiny parity (pruning rounds change masks every
        # round) is covered by TestSerialVsParallel; this pins the
        # executor-level contract with an explicit mid-run mask swap.
        from repro.experiments import make_context, get_scale
        from repro.sparse.mask import MaskSet

        records = {}
        for executor in ("serial", "process"):
            ctx, _ = make_context(
                "resnet18", "cifar10", get_scale("tiny"), seed=0,
                executor=executor,
            )
            try:
                ctx.run_fedavg_round()
                rng = np.random.default_rng(7)
                masks = {}
                for name, param in ctx.model.named_parameters():
                    if param.prunable:
                        mask = rng.random(param.shape) < 0.3
                        mask.reshape(-1)[0] = True
                        masks[name] = mask
                ctx.install_masks(MaskSet(masks))
                ctx.run_fedavg_round()
                records[executor] = {
                    k: v.copy() for k, v in ctx.server.state.items()
                }
            finally:
                ctx.close()
        for name in records["serial"]:
            assert np.array_equal(
                records["serial"][name], records["process"][name]
            ), name


class TestWorkerRoundBodyInProcess:
    """Drive the shm worker path in-process against a real arena.

    The pool normally runs ``_train_client_shm`` in forked workers,
    which coverage cannot see; calling it here (with the worker caches
    initialized by hand) exercises the exact code path — arena attach,
    mask deserialization, binding restore, packed upload — and checks
    it against the serial reference.
    """

    def test_worker_body_matches_serial_training(self):
        import pickle

        from repro.experiments import make_context, get_scale
        from repro.fl import executor as ex
        from repro.fl.payload import PackedPayload, unpack_state

        ctx, _ = make_context(
            "resnet18", "cifar10", get_scale("tiny"), seed=0
        )
        pool_exec = ex.ProcessPoolClientExecutor(max_workers=1)
        saved = {
            "directory": ex._WORKER_DIRECTORY,
            "model": ex._WORKER_MODEL,
            "bcast": dict(ex._WORKER_BCAST),
        }
        try:
            # Serial reference for client 0.
            client = ctx.clients[0]
            rng_state = client.rng.bit_generator.state
            ctx.server.load_into_model()
            reference = client.train(
                ctx.model, **ex._train_kwargs(ctx)
            )
            # Worker-side caches, as _init_worker would build them.
            ex._init_worker(
                pickle.dumps(ctx.directory), pickle.dumps(ctx.model)
            )
            ctx.server.load_into_model()
            round_tag = pool_exec._publish_broadcast(ctx)
            blob, num_samples, num_iterations, mean_loss, new_rng = (
                ex._train_client_shm(
                    pool_exec._arena_name,
                    round_tag,
                    ctx.server.mask_epoch,
                    0,
                    rng_state,
                    ex._train_kwargs(ctx),
                )
            )
            state = unpack_state(PackedPayload.from_bytes(blob))
            assert num_samples == reference.num_samples
            assert num_iterations == reference.num_iterations
            assert mean_loss == reference.mean_loss
            for name, value in reference.state.items():
                assert np.array_equal(state[name], value), name
            # Same round again: the cached arena mapping must be reused
            # and produce the identical upload.
            blob2, *_ = ex._train_client_shm(
                pool_exec._arena_name,
                round_tag,
                ctx.server.mask_epoch,
                0,
                rng_state,
                ex._train_kwargs(ctx),
            )
            assert bytes(blob2) == bytes(blob)
        finally:
            cache = ex._WORKER_BCAST
            if cache.get("binding") is not None:
                cache["binding"].release()
            cache["payload"] = None
            if cache.get("shm") is not None:
                cache["shm"].close()
            ex._WORKER_DIRECTORY = saved["directory"]
            ex._WORKER_MODEL = saved["model"]
            ex._WORKER_BCAST.clear()
            ex._WORKER_BCAST.update(saved["bcast"])
            pool_exec.close()
            ctx.close()

    def test_masks_blob_roundtrip(self):
        from repro.fl.executor import _pack_masks_blob, _unpack_masks_blob
        from repro.sparse.mask import MaskSet

        rng = np.random.default_rng(0)
        masks = MaskSet(
            {
                "a": rng.random((8, 3, 3, 3)) < 0.2,
                "b": rng.random((5, 7)) < 0.7,
                "c": np.zeros((4,), dtype=bool),
            }
        )
        restored = _unpack_masks_blob(_pack_masks_blob(masks))
        assert set(restored.layer_names()) == set(masks.layer_names())
        for name, mask in masks.items():
            np.testing.assert_array_equal(restored[name], mask)


class TestBroadcastArena:
    def test_arena_grows_when_payload_grows(self):
        executor = ProcessPoolClientExecutor(max_workers=1)
        arena = executor._ensure_arena(1000)
        first_name = executor._arena_name
        assert arena.size >= 1000
        same = executor._ensure_arena(500)
        assert executor._arena_name == first_name  # reused, not remapped
        bigger = executor._ensure_arena(arena.size + 1)
        assert executor._arena_name != first_name
        assert bigger.size >= arena.size + 1
        executor.close()

    def test_close_releases_arena(self):
        executor = ProcessPoolClientExecutor(max_workers=1)
        executor._ensure_arena(128)
        name = executor._arena_name
        executor.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
