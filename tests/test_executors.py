"""Tests for the pluggable client-execution backends."""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.fl import (
    ClientExecutor,
    FLConfig,
    ProcessPoolClientExecutor,
    SerialExecutor,
    available_executors,
    build_executor,
    register_executor,
)
from repro.fl.executor import _EXECUTORS


def _result_record(result):
    """Everything RunResult captures, in comparable plain-data form."""
    return {
        "rounds": [vars(r) for r in result.rounds],
        "summary": result.to_dict(),
    }


class TestExecutorRegistry:
    def test_builtins_available(self):
        assert "serial" in available_executors()
        assert "process" in available_executors()

    def test_build_by_name(self):
        assert isinstance(build_executor("serial"), SerialExecutor)
        executor = build_executor("process", max_workers=2)
        assert isinstance(executor, ProcessPoolClientExecutor)
        executor.close()

    def test_unknown_executor_raises(self):
        with pytest.raises(KeyError):
            build_executor("quantum")

    def test_flconfig_validates_executor_name(self):
        with pytest.raises(ValueError):
            FLConfig(executor="quantum")
        with pytest.raises(ValueError):
            FLConfig(executor_workers=0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_executor("serial", SerialExecutor)

    def test_custom_backend_registration(self):
        class _Probe(SerialExecutor):
            name = "probe"

        try:
            register_executor("probe", _Probe)
            assert "probe" in available_executors()
            assert isinstance(build_executor("probe"), _Probe)
            assert FLConfig(executor="probe").executor == "probe"
        finally:
            _EXECUTORS.pop("probe", None)


class TestSerialVsParallel:
    def test_identical_run_results_on_fixed_seed(self):
        serial = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            scale="tiny", pool_size=2, seed=0, rounds=2,
        )
        parallel = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            scale="tiny", pool_size=2, seed=0, rounds=2,
            executor="process",
        )
        a, b = _result_record(serial), _result_record(parallel)
        assert a["summary"] == b["summary"]
        for ra, rb in zip(a["rounds"], b["rounds"]):
            assert ra == rb

    def test_process_backend_restores_client_rng(self):
        # The parallel backend trains pickled client copies; the
        # original clients' RNG streams must still advance exactly as
        # under serial execution, otherwise round 2+ batches diverge
        # (covered end-to-end above; this checks the mechanism).
        from repro.experiments import make_context, get_scale

        ctx, _ = make_context(
            "resnet18", "cifar10", get_scale("tiny"), seed=0,
            executor="process",
        )
        before = [c.rng.bit_generator.state for c in ctx.clients]
        try:
            ctx.run_fedavg_round()
        finally:
            ctx.close()
        after = [c.rng.bit_generator.state for c in ctx.clients]
        assert before != after

    def test_executor_close_is_idempotent(self):
        executor = ProcessPoolClientExecutor(max_workers=1)
        executor.close()
        executor.close()


class TestExecutorContract:
    def test_abstract_base_requires_run_clients(self):
        with pytest.raises(TypeError):
            ClientExecutor()
