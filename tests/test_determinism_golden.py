"""Golden fixed-seed regression tests for the federated simulation.

The seed-0 tiny-scale FedTiny run below was captured *before* the
systems-simulation layer landed; asserting exact equality proves the
default fleet/policy path stays byte-identical to the pre-simulation
behavior, and pins the new simulated wall clock so refactors can't
silently drift any recorded metric. A second suite asserts the serial
and process executors agree exactly under the deadline and dropout
policies, where the policy decides participation before any backend
runs.
"""

import pytest

from repro.experiments import run_experiment

# Captured from the pre-simulation-layer code at seed 0 (tiny scale,
# fedtiny, pool_size=2, rounds=2). Accuracy, loss, density and byte
# counts must never change under the default fleet/policy.
_GOLDEN_ROUNDS = [
    {
        "round_index": 1,
        "test_accuracy": 0.04,
        "test_loss": 2.3208110904693604,
        "density": 0.0999874423489657,
        "upload_bytes": 585408,
        "download_bytes": 585408,
        "train_flops": 237892608.0,
        # New fields, pinned at introduction time: one synchronous
        # round on the uniform fleet takes the slowest (= every)
        # device's compute+transfer time.
        "sim_time_seconds": 0.1939305216,
        "dropped_clients": 0,
        # Failure accounting is identically zero with fault injection
        # off — the golden run must not even observe the fault layer.
        "faults_injected": 0,
        "retries": 0,
        "quarantined_uploads": 0,
        "recovery_actions": 0,
    },
    {
        "round_index": 2,
        "test_accuracy": 0.1,
        "test_loss": 2.283555612564087,
        "density": 0.0999874423489657,
        "upload_bytes": 615456,
        "download_bytes": 585408,
        "train_flops": 417533952.0,
        "sim_time_seconds": 0.3878610432,
        "dropped_clients": 0,
        "faults_injected": 0,
        "retries": 0,
        "quarantined_uploads": 0,
        "recovery_actions": 0,
    },
]

_GOLDEN_SUMMARY = {
    "final_accuracy": 0.1,
    "best_accuracy": 0.1,
    "final_density": 0.0999874423489657,
    "max_training_flops_per_round": 417533952.0,
    "memory_footprint_bytes": 223372,
    "selection_comm_bytes": 1013760,
    "selection_flops": 21336480.0,
    "total_comm_bytes": 3385440,
    "sim_time_seconds": 0.3878610432,
    "total_dropped_clients": 0,
    "num_rounds": 2,
}


def _result_record(result):
    return {
        "rounds": [vars(r) for r in result.rounds],
        "summary": result.to_dict(),
    }


class TestGoldenFedTiny:
    def test_seed0_metrics_are_exactly_reproduced(self):
        result = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            scale="tiny", pool_size=2, seed=0, rounds=2,
        )
        assert [vars(r) for r in result.rounds] == _GOLDEN_ROUNDS
        summary = result.to_dict()
        for key, expected in _GOLDEN_SUMMARY.items():
            assert summary[key] == expected, key

    def test_sim_time_accumulates_positively(self):
        # Redundant with the golden values above, but keeps the
        # invariant explicit if the golden block is ever re-captured.
        times = [r["sim_time_seconds"] for r in _GOLDEN_ROUNDS]
        assert all(t > 0 for t in times)
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))


class TestExecutorParityUnderPolicies:
    """Serial and process backends must agree when policies drop clients.

    Policy decisions (deadline cut-offs, availability draws) happen in
    the main process before any backend runs, so both executors must
    train the same surviving subset and produce identical records.
    """

    @pytest.mark.parametrize(
        "policy_kwargs",
        [
            {"round_policy": "deadline", "deadline_fraction": 1.0},
            {"round_policy": "dropout", "dropout_rate": 0.45},
        ],
        ids=["deadline", "dropout"],
    )
    def test_serial_and_process_agree(self, policy_kwargs):
        common = dict(
            scale="tiny", seed=0, rounds=2, fleet="heterogeneous:16",
            **policy_kwargs,
        )
        serial = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, **common
        )
        parallel = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, executor="process",
            **common,
        )
        a, b = _result_record(serial), _result_record(parallel)
        assert a["summary"] == b["summary"]
        assert a["rounds"] == b["rounds"]
