"""Tests for the extension features: ERK, quantization, AvgPool2d."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import AvgPool2d, check_module_gradients
from repro.pruning import erk_densities, erk_mask, random_mask_erk
from repro.sparse import (
    dequantize_state,
    dequantize_tensor,
    quantization_error,
    quantize_state,
    quantize_tensor,
)


class TestERK:
    def test_overall_density_met(self, tiny_resnet):
        densities = erk_densities(tiny_resnet, 0.1)
        from repro.sparse import prunable_parameters

        sizes = {n: p.size for n, p in prunable_parameters(tiny_resnet)}
        total = sum(sizes.values())
        active = sum(densities[n] * sizes[n] for n in sizes)
        assert active / total == pytest.approx(0.1, rel=0.02)

    def test_small_layers_denser_than_large(self, tiny_resnet):
        densities = erk_densities(tiny_resnet, 0.05)
        from repro.sparse import prunable_parameters

        sizes = {n: p.size for n, p in prunable_parameters(tiny_resnet)}
        smallest = min(sizes, key=sizes.get)
        largest = max(sizes, key=sizes.get)
        assert densities[smallest] > densities[largest]

    def test_densities_in_unit_interval(self, tiny_resnet):
        for density in (0.01, 0.1, 0.5, 0.9):
            values = erk_densities(tiny_resnet, density).values()
            assert all(0.0 <= d <= 1.0 for d in values)

    def test_high_density_clamps_to_dense(self, tiny_resnet):
        densities = erk_densities(tiny_resnet, 0.95)
        assert any(d == 1.0 for d in densities.values())

    def test_erk_mask_density(self, tiny_resnet):
        masks = erk_mask(tiny_resnet, 0.1)
        assert masks.density == pytest.approx(0.1, rel=0.05)

    def test_random_mask_erk(self, tiny_resnet):
        masks = random_mask_erk(
            tiny_resnet, 0.1, np.random.default_rng(0)
        )
        assert masks.density == pytest.approx(0.1, rel=0.05)

    def test_differs_from_uniform(self, tiny_resnet):
        from repro.pruning import magnitude_mask_uniform

        erk = erk_mask(tiny_resnet, 0.1)
        uniform = magnitude_mask_uniform(tiny_resnet, 0.1)
        per_layer_gap = [
            abs(erk.layer_density(n) - uniform.layer_density(n))
            for n in erk
        ]
        assert max(per_layer_gap) > 0.05

    def test_validation(self, tiny_resnet):
        with pytest.raises(ValueError):
            erk_densities(tiny_resnet, 0.0)


class TestQuantization:
    def test_roundtrip_small_error(self, rng):
        values = rng.normal(size=(64, 32)).astype(np.float32)
        restored = dequantize_tensor(quantize_tensor(values, bits=8))
        assert restored.shape == values.shape
        error = np.abs(restored - values).max()
        assert error <= np.abs(values).max() / 127 + 1e-6

    def test_more_bits_less_error(self, rng):
        values = rng.normal(size=500).astype(np.float32)
        errors = [quantization_error(values, bits) for bits in (4, 8, 12)]
        assert errors[0] > errors[1] > errors[2]

    def test_zero_tensor(self):
        quantized = quantize_tensor(np.zeros(10), bits=8)
        np.testing.assert_array_equal(dequantize_tensor(quantized), 0.0)
        assert quantization_error(np.zeros(5)) == 0.0

    def test_payload_bytes(self):
        quantized = quantize_tensor(np.ones(100), bits=8)
        assert quantized.payload_bytes == 100 + 4
        quantized4 = quantize_tensor(np.ones(100), bits=4)
        assert quantized4.payload_bytes == 50 + 4

    def test_state_roundtrip(self, rng):
        state = {
            "w": rng.normal(size=(4, 4)).astype(np.float32),
            "b": rng.normal(size=4).astype(np.float32),
        }
        restored = dequantize_state(quantize_state(state, bits=12))
        for key in state:
            np.testing.assert_allclose(
                restored[key], state[key], atol=1e-2
            )

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), bits=1)
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), bits=32)

    @settings(max_examples=30, deadline=None)
    @given(
        bits=st.integers(2, 16),
        seed=st.integers(0, 100),
    )
    def test_error_bounded_by_step(self, bits, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=50).astype(np.float32)
        restored = dequantize_tensor(quantize_tensor(values, bits))
        max_code = (1 << (bits - 1)) - 1
        step = np.abs(values).max() / max_code
        assert np.abs(restored - values).max() <= step / 2 + 1e-6


class TestAvgPool2d:
    def test_forward_values(self):
        pool = AvgPool2d(2, 2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool(x)
        np.testing.assert_allclose(
            out[0, 0], [[2.5, 4.5], [10.5, 12.5]]
        )

    def test_gradients(self, rng):
        pool = AvgPool2d(2, 2)
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        check_module_gradients(pool, x, rng)

    def test_gradient_spreads_evenly(self):
        pool = AvgPool2d(2, 2)
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        pool(x)
        grad = pool.backward(np.ones((1, 1, 1, 1), dtype=np.float32))
        np.testing.assert_allclose(grad, 0.25)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            AvgPool2d(2).backward(np.zeros((1, 1, 1, 1)))


class TestFedDSTERKInit:
    def test_erk_option_accepted(self):
        from repro.baselines import FedDSTBaseline

        baseline = FedDSTBaseline(0.1, mask_init="erk")
        assert baseline.mask_init == "erk"
        with pytest.raises(ValueError):
            FedDSTBaseline(0.1, mask_init="lognormal")
