"""Tests for the server aggregation rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl import (
    aggregate_bn_statistics,
    aggregate_sparse_gradients,
    normalized_weights,
    weighted_average_states,
)


class TestNormalizedWeights:
    def test_sums_to_one(self):
        weights = normalized_weights([10, 30, 60])
        np.testing.assert_allclose(weights, [0.1, 0.3, 0.6])

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_weights([])
        with pytest.raises(ValueError):
            normalized_weights([1, 0])

    @settings(max_examples=30, deadline=None)
    @given(counts=st.lists(st.integers(1, 1000), min_size=1, max_size=10))
    def test_property(self, counts):
        weights = normalized_weights(counts)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()


class TestWeightedAverageStates:
    def test_equal_weights_is_mean(self):
        states = [
            {"w": np.array([1.0, 2.0])},
            {"w": np.array([3.0, 4.0])},
        ]
        out = weighted_average_states(states, [5, 5])
        np.testing.assert_allclose(out["w"], [2.0, 3.0])

    def test_weighting(self):
        states = [{"w": np.zeros(2)}, {"w": np.ones(2)}]
        out = weighted_average_states(states, [1, 3])
        np.testing.assert_allclose(out["w"], 0.75)

    def test_identity_when_identical(self, rng):
        state = {"w": rng.normal(size=(3, 3)).astype(np.float32)}
        out = weighted_average_states(
            [state, {k: v.copy() for k, v in state.items()}], [2, 8]
        )
        np.testing.assert_allclose(out["w"], state["w"], rtol=1e-6)

    def test_mismatched_keys_raise(self):
        with pytest.raises(ValueError):
            weighted_average_states(
                [{"a": np.zeros(1)}, {"b": np.zeros(1)}], [1, 1]
            )

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_average_states([{"a": np.zeros(1)}], [1, 2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_average_states([], [])

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.floats(-100, 100), min_size=2, max_size=6
        ),
        counts=st.data(),
    )
    def test_average_within_range(self, values, counts):
        states = [{"w": np.array([v])} for v in values]
        weights = counts.draw(
            st.lists(
                st.integers(1, 50),
                min_size=len(values),
                max_size=len(values),
            )
        )
        out = weighted_average_states(states, weights)
        assert min(values) - 1e-3 <= out["w"][0] <= max(values) + 1e-3


class TestAggregateBNStatistics:
    def test_weighted_mean_of_means(self):
        stats = [
            {"bn": (np.array([0.0]), np.array([1.0]))},
            {"bn": (np.array([2.0]), np.array([3.0]))},
        ]
        out = aggregate_bn_statistics(stats, [1, 1])
        np.testing.assert_allclose(out["bn"][0], [1.0])
        np.testing.assert_allclose(out["bn"][1], [2.0])

    def test_sample_weighting_matches_paper_eq4(self):
        stats = [
            {"bn": (np.array([1.0]), np.array([1.0]))},
            {"bn": (np.array([4.0]), np.array([2.0]))},
        ]
        out = aggregate_bn_statistics(stats, [10, 30])
        np.testing.assert_allclose(out["bn"][0], [0.25 * 1 + 0.75 * 4])

    def test_layer_mismatch_raises(self):
        with pytest.raises(ValueError):
            aggregate_bn_statistics(
                [
                    {"a": (np.zeros(1), np.ones(1))},
                    {"b": (np.zeros(1), np.ones(1))},
                ],
                [1, 1],
            )


class TestAggregateSparseGradients:
    def test_union_with_implicit_zeros(self):
        per_device = [
            {"l": (np.array([0, 2]), np.array([1.0, 2.0]))},
            {"l": (np.array([2, 5]), np.array([4.0, 8.0]))},
        ]
        out = aggregate_sparse_gradients(per_device, [1, 1])
        indices, values = out["l"]
        np.testing.assert_array_equal(indices, [0, 2, 5])
        np.testing.assert_allclose(values, [0.5, 3.0, 4.0])

    def test_weighting(self):
        per_device = [
            {"l": (np.array([1]), np.array([1.0]))},
            {"l": (np.array([1]), np.array([5.0]))},
        ]
        out = aggregate_sparse_gradients(per_device, [1, 3])
        np.testing.assert_allclose(out["l"][1], [0.25 + 3.75])

    def test_device_missing_layer(self):
        per_device = [
            {"l": (np.array([0]), np.array([2.0]))},
            {},
        ]
        out = aggregate_sparse_gradients(per_device, [1, 1])
        np.testing.assert_allclose(out["l"][1], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_sparse_gradients([], [])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_matches_dense_aggregation(self, seed):
        """Sparse aggregation == dense weighted mean restricted to union."""
        rng = np.random.default_rng(seed)
        size = 20
        dense = [rng.normal(size=size) for _ in range(3)]
        counts = [int(c) for c in rng.integers(1, 10, size=3)]
        reports = []
        for vector in dense:
            idx = rng.choice(size, size=5, replace=False)
            reports.append({"l": (idx, vector[idx])})
        out = aggregate_sparse_gradients(reports, counts)
        indices, values = out["l"]
        weights = np.array(counts) / sum(counts)
        for index, value in zip(indices, values):
            expected = sum(
                w * (vec[index] if index in rep["l"][0] else 0.0)
                for w, vec, rep in zip(weights, dense, reports)
            )
            assert value == pytest.approx(expected, rel=1e-5, abs=1e-6)


class TestVectorizedSparseAggregationEquivalence:
    """The np.unique/np.add.at bulk path must reproduce the scalar
    accumulation loop it replaced bit-for-bit (same float64 products,
    same per-index accumulation order, one final float32 rounding)."""

    @staticmethod
    def _scalar_reference(per_device, sample_counts):
        weights = normalized_weights(sample_counts)
        layer_names = set()
        for device in per_device:
            layer_names.update(device)
        aggregated = {}
        for name in sorted(layer_names):
            sums = {}
            for weight, device in zip(weights, per_device):
                if name not in device:
                    continue
                indices, values = device[name]
                for index, value in zip(indices, values):
                    key = int(index)
                    sums[key] = (
                        sums.get(key, 0.0) + float(weight) * float(value)
                    )
            if not sums:
                continue
            idx = np.array(sorted(sums), dtype=np.int64)
            val = np.array([sums[i] for i in idx], dtype=np.float32)
            aggregated[name] = (idx, val)
        return aggregated

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_identical_on_ragged_reports(self, seed):
        rng = np.random.default_rng(seed)
        num_devices = int(rng.integers(1, 6))
        layers = ["a", "b", "c"][: int(rng.integers(1, 4))]
        per_device = []
        for _ in range(num_devices):
            report = {}
            for layer in layers:
                if rng.random() < 0.3:
                    continue  # ragged: device skips this layer
                count = int(rng.integers(0, 9))
                idx = rng.choice(50, size=count, replace=False)
                values = rng.normal(size=count).astype(np.float32)
                report[layer] = (idx.astype(np.int64), values)
            per_device.append(report)
        counts = [int(c) for c in rng.integers(1, 100, size=num_devices)]

        got = aggregate_sparse_gradients(per_device, counts)
        want = self._scalar_reference(per_device, counts)

        assert set(got) == set(want)
        for name in want:
            np.testing.assert_array_equal(got[name][0], want[name][0])
            assert got[name][1].dtype == np.float32
            assert np.array_equal(got[name][1], want[name][1]), name

    def test_all_empty_reports_produce_no_layers(self):
        per_device = [
            {"l": (np.array([], dtype=np.int64), np.array([], dtype=np.float32))},
            {},
        ]
        assert aggregate_sparse_gradients(per_device, [1, 2]) == {}
