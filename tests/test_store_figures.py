"""Tests for result persistence and figure rendering."""

import numpy as np
import pytest

from repro.experiments import (
    load_results,
    record_to_result,
    render_accuracy_curves,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    result_to_record,
    save_results,
)
from repro.experiments.paper import ExperimentOutput
from repro.metrics import RoundRecord, RunResult


def _result(method="fedtiny", rounds=3):
    result = RunResult(method, "cifar10", "resnet18", 0.05)
    for i in range(1, rounds + 1):
        result.record_round(
            RoundRecord(i, 0.1 * i, 1.0 / i, 0.05, 100, 200, 1e6 * i)
        )
    result.memory_footprint_bytes = 12345
    result.selection_comm_bytes = 678
    result.selection_flops = 9.0
    result.metadata = {"pool_size": 4}
    return result


class TestStore:
    def test_record_roundtrip(self):
        original = _result()
        rebuilt = record_to_result(result_to_record(original))
        assert rebuilt.method == original.method
        assert rebuilt.final_accuracy == original.final_accuracy
        assert rebuilt.memory_footprint_bytes == 12345
        assert rebuilt.selection_comm_bytes == 678
        assert rebuilt.metadata == {"pool_size": 4}
        assert len(rebuilt.rounds) == 3
        assert rebuilt.total_upload_bytes == original.total_upload_bytes

    def test_save_load_file(self, tmp_path):
        results = [_result("a"), _result("b", rounds=1)]
        path = tmp_path / "sub" / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert [r.method for r in loaded] == ["a", "b"]
        assert loaded[0].max_training_flops_per_round == pytest.approx(3e6)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "results": []}')
        with pytest.raises(ValueError):
            load_results(path)

    def test_fault_accounting_roundtrip(self):
        import dataclasses

        from repro.fl.faults import FailureRecord

        original = _result()
        original.rounds[0] = dataclasses.replace(
            original.rounds[0], faults_injected=3, retries=2,
            quarantined_uploads=1, recovery_actions=4,
        )
        original.failures = [
            FailureRecord(0, 7, 1, "corrupt_payload", "quarantined",
                          detail="magic damaged"),
        ]
        rebuilt = record_to_result(result_to_record(original))
        assert rebuilt.rounds[0].faults_injected == 3
        assert rebuilt.rounds[0].retries == 2
        assert rebuilt.rounds[0].quarantined_uploads == 1
        assert rebuilt.rounds[0].recovery_actions == 4
        assert rebuilt.total_faults_injected == original.total_faults_injected
        assert rebuilt.failures == original.failures

    def test_v1_store_loads_leniently(self, tmp_path):
        # A v1 file predates the fault accounting entirely.
        record = result_to_record(_result(rounds=1))
        for key in ("faults_injected", "retries", "quarantined_uploads",
                    "recovery_actions"):
            del record["rounds"][0][key]
        del record["failures"]
        path = tmp_path / "v1.json"
        path.write_text(
            '{"format_version": 1, "results": ['
            + __import__("json").dumps(record) + "]}"
        )
        (loaded,) = load_results(path)
        assert loaded.rounds[0].faults_injected == 0
        assert loaded.failures == []

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "results.json"
        save_results([_result(rounds=1)], path)
        save_results([_result(rounds=2)], path)  # overwrite in place
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "results.json"]
        assert leftovers == []
        assert len(load_results(path)[0].rounds) == 2


class TestFigureRendering:
    def _fig3_output(self):
        series = {
            "cifar10": {
                "fedtiny": {0.01: 0.6, 0.1: 0.8},
                "snip": {0.01: 0.2, 0.1: 0.7},
            }
        }
        return ExperimentOutput("fig3", "t", data={"series": series})

    def test_render_fig3(self):
        chart = render_fig3(self._fig3_output(), "cifar10")
        assert "fedtiny" in chart
        assert "log scale" in chart

    def test_render_fig3_unknown_dataset(self):
        with pytest.raises(KeyError):
            render_fig3(self._fig3_output(), "svhn")

    def test_render_fig4(self):
        output = ExperimentOutput(
            "fig4", "t",
            data={"series": {"fedtiny": {0.01: 0.5, 0.1: 0.7},
                             "vanilla": {0.01: 0.3, 0.1: 0.6}}},
        )
        chart = render_fig4(output)
        assert "vanilla" in chart

    def test_render_fig5(self):
        output = ExperimentOutput(
            "fig5", "t",
            data={
                "accuracy": {0.01: {1: 0.4, 4: 0.5}},
                "comm_mb": {0.01: {1: 0.1, 4: 0.4}},
            },
        )
        acc_chart, comm_chart = render_fig5(output)
        assert "accuracy" in acc_chart
        assert "MB" in comm_chart

    def test_render_fig6(self):
        output = ExperimentOutput(
            "fig6", "t",
            data={"series": {"fedtiny": {0.5: 0.7, 10.0: 0.8}}},
        )
        assert "alpha" in render_fig6(output)

    def test_render_accuracy_curves(self):
        chart = render_accuracy_curves([_result("fedtiny"), _result("snip")])
        assert "fedtiny@0.05" in chart
        assert "round" in chart
