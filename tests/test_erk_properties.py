"""Property-based tests for the ERK allocation rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Linear, ReLU, Sequential
from repro.pruning import erk_densities
from repro.sparse import prunable_parameters


def _mlp(dims):
    rng = np.random.default_rng(0)
    layers = []
    for d_in, d_out in zip(dims, dims[1:]):
        layers.append(Linear(d_in, d_out, rng=rng))
        layers.append(ReLU())
    return Sequential(*layers)


@settings(max_examples=25, deadline=None)
@given(
    dims=st.lists(st.integers(2, 40), min_size=3, max_size=6),
    density=st.floats(0.05, 0.95),
)
def test_erk_budget_and_bounds(dims, density):
    model = _mlp(dims)
    densities = erk_densities(model, density)
    sizes = {n: p.size for n, p in prunable_parameters(model)}
    assert set(densities) == set(sizes)
    for value in densities.values():
        assert 0.0 <= value <= 1.0
    total = sum(sizes.values())
    active = sum(densities[n] * sizes[n] for n in sizes)
    # Expected active count matches the budget (up to clamping slack
    # when some layers saturate at dense).
    assert active <= total
    if all(v < 1.0 for v in densities.values()):
        assert active / total == pytest.approx(density, rel=0.01)


@settings(max_examples=15, deadline=None)
@given(density=st.floats(0.01, 0.5))
def test_erk_monotone_in_density(density):
    model = _mlp([16, 32, 8])
    low = erk_densities(model, density)
    high = erk_densities(model, min(1.0, density * 1.5))
    for name in low:
        assert high[name] >= low[name] - 1e-9
