"""Hypothesis property tests over the pure helper functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.reporting import format_table
from repro.pruning.schedule import PruningSchedule
from repro.sparse.storage import dense_bytes, sparse_bytes

_CELL = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=0,
    max_size=12,
)


class TestFormatTableProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        # Headers must be non-empty: a table whose every line is the
        # empty string degenerates under str.splitlines().
        headers=st.lists(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Lu", "Ll", "Nd")
                ),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=5,
        ),
        data=st.data(),
    )
    def test_all_lines_equal_width(self, headers, data):
        num_rows = data.draw(st.integers(0, 5))
        rows = [
            data.draw(
                st.lists(_CELL, min_size=len(headers),
                         max_size=len(headers))
            )
            for _ in range(num_rows)
        ]
        table = format_table(headers, rows)
        lines = table.splitlines()
        assert len(lines) == 2 + num_rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    @settings(max_examples=20, deadline=None)
    @given(headers=st.lists(_CELL, min_size=1, max_size=4))
    def test_contains_every_cell(self, headers):
        row = [f"v{i}" for i in range(len(headers))]
        table = format_table(headers, [row])
        for cell in row:
            assert cell in table


class TestStorageProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        dense_size=st.integers(0, 10_000),
        data=st.data(),
    )
    def test_sparse_never_exceeds_dense(self, dense_size, data):
        active = data.draw(st.integers(0, dense_size))
        assert sparse_bytes(active, dense_size) <= dense_bytes(dense_size)

    @settings(max_examples=40, deadline=None)
    @given(
        dense_size=st.integers(1, 10_000),
        data=st.data(),
    )
    def test_monotone_in_active_count(self, dense_size, data):
        a = data.draw(st.integers(0, dense_size - 1))
        b = data.draw(st.integers(a + 1, dense_size))
        assert sparse_bytes(a, dense_size) <= sparse_bytes(b, dense_size)


class TestScheduleGroupProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        blocks=st.lists(
            st.lists(
                st.text(min_size=1, max_size=5), min_size=1, max_size=4
            ),
            min_size=1,
            max_size=5,
        ),
        granularity=st.sampled_from(["layer", "block", "entire"]),
        backward=st.booleans(),
    )
    def test_groups_are_a_partition_of_the_layers(
        self, blocks, granularity, backward
    ):
        # Deduplicate layer names across blocks first (the partition
        # invariant only makes sense for unique names).
        seen = set()
        unique_blocks = []
        for block in blocks:
            unique = [n for n in block if n not in seen]
            seen.update(unique)
            if unique:
                unique_blocks.append(unique)
        if not unique_blocks:
            return
        schedule = PruningSchedule(
            granularity=granularity, backward_order=backward
        )
        groups = schedule.groups_for(unique_blocks)
        flat = [name for group in groups for name in group]
        expected = [n for block in unique_blocks for n in block]
        assert sorted(flat) == sorted(expected)

    @settings(max_examples=30, deadline=None)
    @given(counter=st.integers(0, 20))
    def test_cycling_is_modular(self, counter):
        schedule = PruningSchedule(granularity="block")
        blocks = [["a"], ["b"], ["c"]]
        ordered = schedule.groups_for(blocks)
        assert schedule.group_for_pruning_round(counter, blocks) == (
            ordered[counter % 3]
        )


class TestQuantizePureProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 500),
        scale=st.floats(1e-3, 1e3),
    )
    def test_quantization_scale_invariance_of_relative_error(
        self, seed, scale
    ):
        from repro.sparse import quantization_error

        rng = np.random.default_rng(seed)
        values = rng.normal(size=64).astype(np.float32)
        base = quantization_error(values, bits=8)
        scaled = quantization_error(values * scale, bits=8)
        assert scaled == pytest.approx(base, rel=1e-3, abs=1e-6)
