"""Tests for the networked executor (PR 9).

Covers the framed localhost protocol (round-trip, damage detection),
transport configuration and its CLI flags, session registration /
heartbeat liveness / resume, byte-for-byte parity between the
``network`` executor and the serial reference, churn hardening
(connection drops, server restarts, worker crashes, mid-round faults),
cross-executor checkpoint resume, and the virtual client backend under
worker executors.
"""

import argparse
import pickle
import socket

import numpy as np
import pytest

from repro.data import SyntheticSpec, generate
from repro.experiments import run_experiment
from repro.fl import FLConfig, FederatedContext
from repro.fl.state import get_state
from repro.fl.transport import (
    MSG,
    SessionTable,
    TransportConfig,
    TransportError,
    recv_frame,
    send_frame,
)
from repro.nn.models import build_model

#: Transport knobs for tests: fast heartbeats (so liveness and polls
#: are snappy) with a generous request timeout (so a loaded CI machine
#: never trips the reassignment deadline spuriously).
_NET = dict(heartbeat_interval=0.2, transport_timeout=20.0)


def _make_context(**overrides):
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=160, num_test=48,
            image_size=8, noise=0.4, modes_per_class=1, seed=5,
        )
    )
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=2
    )
    kwargs = dict(
        num_clients=3, rounds=2, local_epochs=1, batch_size=16,
        lr=0.05, dirichlet_alpha=0.5, seed=0,
    )
    kwargs.update(overrides)
    return FederatedContext(
        model, train, test, FLConfig(**kwargs),
        dataset_name="unit", model_name="resnet18",
    )


def _make_network_context(**overrides):
    return _make_context(
        executor="network", executor_workers=2,
        heartbeat_interval=0.2, transport_timeout=20.0, **overrides,
    )


def _assert_states_identical(a, b):
    sa, sb = get_state(a.model), get_state(b.model)
    assert set(sa) == set(sb)
    for name in sa:
        np.testing.assert_array_equal(sa[name], sb[name], err_msg=name)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_meta_and_blob(self):
        a, b = socket.socketpair()
        try:
            blob = bytes(range(256)) * 37
            send_frame(a, MSG.UPLOAD, {"client_id": 7, "attempt": 2}, blob)
            kind, meta, got = recv_frame(b)
            assert kind == MSG.UPLOAD
            assert meta == {"client_id": 7, "attempt": 2}
            assert got == blob
        finally:
            a.close()
            b.close()

    def test_roundtrip_empty_sections(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, MSG.HEARTBEAT)
            kind, meta, blob = recv_frame(b)
            assert kind == MSG.HEARTBEAT
            assert meta == {}
            assert blob == b""
        finally:
            a.close()
            b.close()

    def test_bad_magic_rejected(self):
        from repro.fl.transport import _FRAME

        a, b = socket.socketpair()
        try:
            a.sendall(_FRAME.pack(b"NOPE", MSG.UPLOAD, 0, 0))
            with pytest.raises(TransportError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_stream_rejected(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, MSG.UPLOAD, {"client_id": 1}, b"x" * 64)
            # Reader sees a clean close mid-frame, not a hang.
            whole = b.recv(1 << 20)
            a.close()
            c, d = socket.socketpair()
            try:
                c.sendall(whole[: len(whole) - 10])
                c.close()
                with pytest.raises(TransportError, match="closed"):
                    recv_frame(d)
            finally:
                d.close()
        finally:
            b.close()

    def test_oversized_sections_rejected(self):
        from repro.fl.transport import _FRAME, _MAX_BLOB, _MAX_META

        a, b = socket.socketpair()
        try:
            a.sendall(
                _FRAME.pack(b"FTNP", MSG.UPLOAD, _MAX_META + 1, 0)
            )
            with pytest.raises(TransportError, match="too large"):
                recv_frame(b)
            a2, b2 = socket.socketpair()
            try:
                a2.sendall(
                    _FRAME.pack(b"FTNP", MSG.UPLOAD, 0, _MAX_BLOB + 1)
                )
                with pytest.raises(TransportError, match="too large"):
                    recv_frame(b2)
            finally:
                a2.close()
                b2.close()
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# TransportConfig + CLI flags
# ----------------------------------------------------------------------
class TestTransportConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timeout=0.0),
            dict(timeout=-1.0),
            dict(heartbeat_interval=0.0),
            dict(heartbeat_interval=-0.5),
            dict(timeout=1.0, heartbeat_interval=1.0),
            dict(timeout=1.0, heartbeat_interval=2.0),
            dict(max_reconnects=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TransportConfig(**kwargs)

    def test_derived_knobs(self):
        config = TransportConfig(
            timeout=12.0, heartbeat_interval=0.5, max_reconnects=2
        )
        assert config.liveness_window == pytest.approx(2.5)
        assert config.poll_interval == pytest.approx(0.1)
        retry = config.retry_policy()
        assert retry.max_attempts == 3
        assert retry.backoff_seconds == pytest.approx(0.125)
        assert retry.timeout_seconds == pytest.approx(12.0)

    def test_poll_interval_is_clamped(self):
        slow = TransportConfig(timeout=120.0, heartbeat_interval=10.0)
        assert slow.poll_interval == 0.25
        fast = TransportConfig(timeout=1.0, heartbeat_interval=0.02)
        assert fast.poll_interval == 0.01

    def test_flconfig_threads_and_validates_transport(self):
        config = FLConfig(
            num_clients=2, rounds=1, transport_timeout=9.0,
            heartbeat_interval=0.3, max_reconnects=5,
        )
        transport = config.transport_config()
        assert transport.timeout == 9.0
        assert transport.heartbeat_interval == 0.3
        assert transport.max_reconnects == 5
        with pytest.raises(ValueError, match="timeout"):
            FLConfig(num_clients=2, rounds=1, transport_timeout=0.0)
        with pytest.raises(ValueError, match="heartbeat"):
            FLConfig(
                num_clients=2, rounds=1,
                transport_timeout=1.0, heartbeat_interval=2.0,
            )
        with pytest.raises(ValueError, match="max_reconnects"):
            FLConfig(num_clients=2, rounds=1, max_reconnects=-1)


class TestCLIFlags:
    def test_validators_reject_garbage(self):
        from repro.cli import _nonnegative_int, _positive_seconds

        for bad in ("nope", "0", "-3", ""):
            with pytest.raises(argparse.ArgumentTypeError):
                _positive_seconds(bad)
        for bad in ("nope", "-1", "1.5", ""):
            with pytest.raises(argparse.ArgumentTypeError):
                _nonnegative_int(bad)
        assert _positive_seconds("2.5") == 2.5
        assert _nonnegative_int("0") == 0

    def test_parser_rejects_bad_transport_flags(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        base = ["run", "--method", "fedavg"]
        for flags in (
            ["--transport-timeout", "0"],
            ["--heartbeat-interval", "-1"],
            ["--max-reconnects", "-2"],
            ["--max-reconnects", "1.5"],
        ):
            with pytest.raises(SystemExit):
                parser.parse_args(base + flags)
            capsys.readouterr()

    def test_parser_accepts_and_types_transport_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--method", "fedavg", "--executor", "network",
             "--transport-timeout", "15", "--heartbeat-interval", "0.5",
             "--max-reconnects", "2"]
        )
        assert args.transport_timeout == 15.0
        assert args.heartbeat_interval == 0.5
        assert args.max_reconnects == 2
        chaos = build_parser().parse_args(
            ["chaos", "--executor", "network",
             "--transport-timeout", "15", "--heartbeat-interval", "0.5"]
        )
        assert chaos.transport_timeout == 15.0
        assert chaos.max_reconnects is None


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
class TestSessionTable:
    def _table(self):
        return SessionTable(
            TransportConfig(timeout=10.0, heartbeat_interval=0.5)
        )

    def test_tokens_are_counter_based_and_fresh(self):
        table = self._table()
        first, resumed = table.register(worker_id=0)
        assert not resumed
        assert first.token == "w0-s1"
        second, resumed = table.register(worker_id=3)
        assert not resumed
        assert second.token == "w3-s2"
        assert len(table) == 2

    def test_known_token_resumes(self):
        table = self._table()
        session, _ = table.register(worker_id=1)
        again, resumed = table.register(worker_id=1, token=session.token)
        assert resumed
        assert again is session
        assert again.resumes == 1
        assert len(table) == 1

    def test_unknown_token_registers_fresh(self):
        table = self._table()
        session, resumed = table.register(worker_id=1, token="w1-s99")
        assert not resumed
        assert session.token != "w1-s99"

    def test_beat_unknown_session_raises(self):
        table = self._table()
        with pytest.raises(KeyError):
            table.beat("w0-s1")

    def test_expiry_uses_liveness_window(self):
        table = self._table()
        session, _ = table.register(worker_id=0)
        window = table.config.liveness_window
        assert table.expired(now=session.last_seen + window / 2) == []
        expired = table.expired(now=session.last_seen + window + 0.001)
        assert [s.token for s in expired] == [session.token]

    def test_clear_drops_everything(self):
        table = self._table()
        table.register(worker_id=0)
        table.register(worker_id=1)
        dropped = table.clear()
        assert len(dropped) == 2
        assert len(table) == 0


# ----------------------------------------------------------------------
# Localhost parity: the golden contract
# ----------------------------------------------------------------------
class TestLocalhostParity:
    def test_fedavg_network_run_bitwise_identical_to_serial(self):
        common = dict(scale="tiny", seed=0, rounds=2, **_NET)
        serial = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, **common
        )
        network = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            executor="network", **common,
        )
        # Every round-record field, the simulated clock included: with
        # faults off, the networked run is byte-for-byte the serial run.
        assert [vars(r) for r in serial.rounds] == [
            vars(r) for r in network.rounds
        ]
        assert network.final_accuracy == serial.final_accuracy

    def test_fedtiny_mask_epoch_churn_stays_identical(self):
        # fedtiny reshapes the masks mid-run (mask_epoch bumps), so the
        # broadcast cache, worker-side rebinding, and stale-epoch
        # admission all get exercised across epochs.
        common = dict(scale="tiny", seed=0, rounds=3, **_NET)
        serial = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1, pool_size=2, **common
        )
        network = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1, pool_size=2,
            executor="network", **common,
        )
        assert [vars(r) for r in serial.rounds] == [
            vars(r) for r in network.rounds
        ]


# ----------------------------------------------------------------------
# Churn hardening
# ----------------------------------------------------------------------
class TestChurn:
    def test_connection_drop_between_rounds_resumes_identically(self):
        serial = _make_context()
        network = _make_network_context()
        try:
            serial.run_fedavg_round()
            network.run_fedavg_round()
            # Sever a live worker's session + socket; the worker must
            # reconnect, re-register, and keep serving.
            assert network.executor.drop_connection(network) is True
            assert (
                network.executor._server.stats["dropped_sessions"] == 1
            )
            serial.run_fedavg_round()
            network.run_fedavg_round()
            _assert_states_identical(serial, network)
        finally:
            serial.close()
            network.close()

    def test_server_restart_between_rounds_resumes_identically(self):
        serial = _make_context()
        network = _make_network_context()
        try:
            serial.run_fedavg_round()
            network.run_fedavg_round()
            assert network.executor.restart_server(network) is True
            stats = network.executor._server.stats
            assert stats["restarts"] == 1
            serial.run_fedavg_round()
            network.run_fedavg_round()
            _assert_states_identical(serial, network)
            # Workers found their tokens unknown and re-registered.
            assert stats["registrations"] > 2
        finally:
            serial.close()
            network.close()

    def test_worker_crash_respawns_and_stays_identical(self):
        serial = _make_context()
        network = _make_network_context()
        try:
            serial.run_fedavg_round()
            network.run_fedavg_round()
            assert network.executor.crash_worker(network) is True
            serial.run_fedavg_round()
            network.run_fedavg_round()
            _assert_states_identical(serial, network)
        finally:
            serial.close()
            network.close()

    def test_in_process_backends_decline_transport_hooks(self):
        with _make_context() as ctx:
            assert ctx.executor.drop_connection(ctx) is False
            assert ctx.executor.restart_server(ctx) is False

    def test_real_latencies_are_observed(self):
        with _make_network_context() as ctx:
            ctx.run_fedavg_round()
            executor = ctx.executor
            assert executor.last_round_real_seconds > 0.0
            participants = {c.client_id for c in ctx.last_participants}
            assert set(executor.last_latencies) == participants
            assert all(
                v >= 0.0 for v in executor.last_latencies.values()
            )
            assert ctx.real_time_seconds > 0.0
            # The simulated clock stays authoritative (parity contract):
            # wall-clock only ever lands on the real-time channel.
            assert ctx.real_time_seconds != ctx.sim_time


class TestNetworkChaos:
    def test_transport_faults_match_serial_counters(self):
        # bad_transport now includes connection_drop and slow_client:
        # mid-round, the fault runner severs real sessions and charges
        # real-latency waits, yet the adjudicated counters and metrics
        # must match the serial twin bitwise (only the simulated clock
        # and executor-specific recovery accounting may differ).
        common = dict(scale="tiny", seed=0, rounds=3, **_NET)
        serial = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            faults="bad_transport", **common,
        )
        network = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            faults="bad_transport", executor="network", **common,
        )
        skip = ("sim_time_seconds", "recovery_actions")
        assert [
            {k: v for k, v in vars(r).items() if k not in skip}
            for r in serial.rounds
        ] == [
            {k: v for k, v in vars(r).items() if k not in skip}
            for r in network.rounds
        ]
        assert network.total_faults_injected > 0

    def test_server_restart_fault_recovers(self):
        result = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            faults="server_restart:0.5", executor="network",
            scale="tiny", seed=0, rounds=2, **_NET,
        )
        restarts = [
            f for f in result.failures if f.action == "restarted_server"
        ]
        assert restarts
        assert len(result.rounds) == 2


class TestNetworkCheckpointResume:
    def test_serial_checkpoint_resumes_under_network(self, tmp_path):
        # The checkpoint fingerprint deliberately excludes the executor:
        # a run killed under one backend resumes under another, bit for
        # bit — the "server restart mid-run" recovery story.
        ckpt = str(tmp_path / "ckpt")
        common = dict(scale="tiny", seed=0, checkpoint_dir=ckpt)
        full = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, **common
        )
        import shutil

        shutil.rmtree(ckpt)
        run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0, rounds=2, **common
        )
        resumed = run_experiment(
            "fedavg", "resnet18", "cifar10", 1.0,
            executor="network", resume=True, **dict(common, **_NET),
        )
        assert [vars(r) for r in full.rounds] == [
            vars(r) for r in resumed.rounds
        ]


# ----------------------------------------------------------------------
# Virtual clients under worker executors
# ----------------------------------------------------------------------
class TestVirtualBackendUnderWorkers:
    def test_virtual_directory_pickles_as_recipe(self):
        with _make_context(client_backend="virtual") as ctx:
            directory = ctx.directory
            client = directory.materialize(0)
            client.rng.random(5)  # advance the stream past the prefix
            clone = pickle.loads(pickle.dumps(directory))
            assert clone.live_count == 0
            resumed = clone.materialize(0)
            assert (
                resumed.rng.bit_generator.state
                == client.rng.bit_generator.state
            )

    @pytest.mark.parametrize("executor", ["process", "network"])
    def test_virtual_backend_matches_serial(self, executor):
        serial = _make_context(client_backend="virtual")
        overrides = dict(client_backend="virtual", executor=executor,
                         executor_workers=2)
        if executor == "network":
            worker = _make_network_context(client_backend="virtual")
        else:
            worker = _make_context(**overrides)
        try:
            for _ in range(2):
                serial.run_fedavg_round()
                worker.run_fedavg_round()
            _assert_states_identical(serial, worker)
        finally:
            serial.close()
            worker.close()
