"""Property-style algebraic invariants over randomized shapes and seeds.

Three families the rest of the suite only covers pointwise:

- quantize/dequantize round trips obey the analytic uniform-quantization
  error bound and get monotonically tighter as bits increase;
- ``col2im`` is the exact adjoint of ``im2col``
  (⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ for every shape/stride/pad);
- ``save_model``/``load_model`` preserve parameters, masks and buffers
  bit for bit.
"""

import numpy as np
import pytest

from repro.nn.checkpoint import load_model, save_model
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.models import build_model
from repro.sparse.quantize import (
    dequantize_tensor,
    quantize_state,
    dequantize_state,
    quantize_tensor,
    quantization_error,
)


class TestQuantizationRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("bits", [2, 4, 8, 12, 16])
    def test_error_within_analytic_bound(self, seed, bits):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(16, 2048))
        values = rng.normal(scale=rng.uniform(0.01, 10.0), size=size)
        values = values.astype(np.float32)
        quantized = quantize_tensor(values, bits)
        reconstructed = dequantize_tensor(quantized)
        # Round-to-nearest on a uniform grid: per-element error is at
        # most half the step size (plus float32 rounding slack, which
        # matters once the grid is finer than float32 resolution).
        peak = float(np.abs(values).max())
        slack = 4 * peak * np.finfo(np.float32).eps
        per_element_bound = quantized.scale / 2 + slack
        max_err = np.abs(values - reconstructed).max()
        assert max_err <= per_element_bound
        # And the relative L2 error obeys the same bound aggregated.
        rel = quantization_error(values, bits)
        bound = per_element_bound * np.sqrt(size) / np.linalg.norm(values)
        assert rel <= bound

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_error_monotone_in_bits(self, seed):
        rng = np.random.default_rng(100 + seed)
        values = rng.normal(size=512).astype(np.float32)
        errors = [quantization_error(values, b) for b in (2, 4, 8, 12, 16)]
        for coarse, fine in zip(errors, errors[1:]):
            assert fine <= coarse + 1e-9
        assert errors[-1] < errors[0] / 100  # 16 bits is far tighter

    def test_shape_and_peak_preserved(self, rng):
        values = rng.normal(size=(3, 5, 2)).astype(np.float32)
        quantized = quantize_tensor(values, 8)
        reconstructed = dequantize_tensor(quantized)
        assert reconstructed.shape == values.shape
        # The extreme value sits exactly on the grid.
        peak_pos = np.unravel_index(np.abs(values).argmax(), values.shape)
        assert reconstructed[peak_pos] == pytest.approx(
            values[peak_pos], abs=1e-7
        )

    def test_zero_and_constant_tensors(self):
        zeros = np.zeros(17, dtype=np.float32)
        assert quantization_error(zeros, 8) == 0.0
        constant = np.full(9, 3.25, dtype=np.float32)
        reconstructed = dequantize_tensor(quantize_tensor(constant, 8))
        np.testing.assert_allclose(reconstructed, constant, rtol=1e-6)

    def test_state_round_trip_keys_and_shapes(self, rng):
        state = {
            "a": rng.normal(size=(4, 4)).astype(np.float32),
            "b": rng.normal(size=7).astype(np.float32),
        }
        back = dequantize_state(quantize_state(state, 12))
        assert set(back) == set(state)
        for key in state:
            assert back[key].shape == state[key].shape
            assert np.abs(back[key] - state[key]).max() < 1e-3


class TestIm2colAdjoint:
    """col2im must be the exact adjoint of im2col.

    For linear maps A and Aᵀ: ⟨A x, y⟩ == ⟨x, Aᵀ y⟩ for all x, y. This
    is what makes col2im compute the convolution input gradient.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_inner_product_identity(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 3))
        c = int(rng.integers(1, 4))
        h = int(rng.integers(4, 9))
        w = int(rng.integers(4, 9))
        kernel = int(rng.integers(1, 4))
        stride = int(rng.integers(1, 3))
        pad = int(rng.integers(0, 2))
        if conv_output_size(h, kernel, stride, pad) < 1:
            pytest.skip("degenerate output size")
        x = rng.normal(size=(n, c, h, w))
        cols = im2col(x, kernel, kernel, stride, pad)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(
            np.sum(x * col2im(y, (n, c, h, w), kernel, kernel, stride, pad))
        )
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_adjoint_of_identity_kernel(self):
        # 1x1 kernel, stride 1, no padding: im2col is a permutation, so
        # col2im must be its exact inverse permutation.
        rng = np.random.default_rng(42)
        x = rng.normal(size=(2, 3, 5, 5))
        cols = im2col(x, 1, 1, 1, 0)
        back = col2im(cols, x.shape, 1, 1, 1, 0)
        np.testing.assert_array_equal(back, x)


class TestCheckpointRoundTrip:
    def _model(self, seed=11):
        return build_model(
            "resnet18", num_classes=10, width_multiplier=0.125, seed=seed
        )

    def _randomize(self, model, rng):
        """Random weights, random masks on some params, random buffers."""
        params = dict(model.named_parameters())
        for index, (name, param) in enumerate(params.items()):
            param.data = rng.normal(size=param.data.shape).astype(np.float32)
            if param.data.ndim >= 2 and index % 2 == 0:
                mask = rng.random(param.data.shape) < 0.5
                param.set_mask(mask.astype(np.float32))
                param.apply_mask()
        for name, buf in model.named_buffers():
            model._assign_buffer(
                name, rng.normal(size=buf.shape).astype(buf.dtype)
            )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_bit_for_bit_round_trip(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        model = self._model()
        self._randomize(model, rng)
        path = tmp_path / "ckpt.npz"
        save_model(model, path)

        saved_params = {
            name: (param.data.copy(),
                   None if param.mask is None else param.mask.copy())
            for name, param in model.named_parameters()
        }
        saved_buffers = {
            name: buf.copy() for name, buf in model.named_buffers()
        }

        fresh = self._model(seed=99)  # different init, same architecture
        load_model(fresh, path)

        for name, param in fresh.named_parameters():
            data, mask = saved_params[name]
            assert np.array_equal(param.data, data), name
            assert param.data.dtype == data.dtype
            if mask is None:
                assert param.mask is None, name
            else:
                assert param.mask is not None, name
                assert np.array_equal(param.mask, mask), name
        for name, buf in fresh.named_buffers():
            assert np.array_equal(buf, saved_buffers[name]), name
            assert buf.dtype == saved_buffers[name].dtype

    def test_masked_positions_stay_zero_after_load(self, tmp_path, rng):
        model = self._model()
        self._randomize(model, rng)
        path = tmp_path / "ckpt.npz"
        save_model(model, path)
        fresh = self._model(seed=99)
        load_model(fresh, path)
        for name, param in fresh.named_parameters():
            if param.mask is not None:
                assert np.all(param.data[param.mask == 0] == 0.0), name
