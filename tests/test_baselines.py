"""Tests for every baseline method's behaviour and cost accounting."""

import numpy as np
import pytest

from repro.baselines import (
    FedAvgBaseline,
    FedDSTBaseline,
    FLPQSUBaseline,
    LotteryFLBaseline,
    PruneFLBaseline,
    SNIPBaseline,
    SynFlowBaseline,
    sparse_aggregate,
)
from repro.data import SyntheticSpec, generate
from repro.fl import FLConfig, FederatedContext
from repro.nn.models import build_model
from repro.pruning import PruningSchedule
from repro.sparse import MaskSet


@pytest.fixture(scope="module")
def shared_data():
    train, test = generate(
        SyntheticSpec(
            name="t", num_classes=4, num_train=200, num_test=60,
            image_size=8, noise=0.4, modes_per_class=1, seed=21,
        )
    )
    public, federated = train.split(0.2, np.random.default_rng(1))
    return public, federated, test


def _ctx(shared_data, rounds=3, seed=0):
    public, federated, test = shared_data
    model = build_model(
        "resnet18", num_classes=4, width_multiplier=0.125, seed=5
    )
    config = FLConfig(
        num_clients=3, rounds=rounds, local_epochs=1, batch_size=16,
        lr=0.05, seed=seed,
    )
    return (
        FederatedContext(model, federated, test, config,
                         dataset_name="unit", model_name="resnet18"),
        public,
    )


_SCHEDULE = PruningSchedule(delta_rounds=1, stop_round=3)


class TestFedAvg:
    def test_runs_dense(self, shared_data):
        ctx, public = _ctx(shared_data)
        result = FedAvgBaseline(pretrain_epochs=1).run(ctx, public)
        assert result.final_density == 1.0
        assert result.method == "fedavg"
        assert len(result.rounds) == 3

    def test_learns(self, shared_data):
        ctx, public = _ctx(shared_data, rounds=4)
        result = FedAvgBaseline(pretrain_epochs=1).run(ctx, public)
        assert result.final_accuracy > 0.5


class TestServerPruneBaselines:
    @pytest.mark.parametrize(
        "cls,name",
        [
            (SNIPBaseline, "snip"),
            (SynFlowBaseline, "synflow"),
            (FLPQSUBaseline, "fl-pqsu"),
        ],
    )
    def test_density_held_constant(self, shared_data, cls, name):
        ctx, public = _ctx(shared_data)
        kwargs = {"pretrain_epochs": 1}
        if cls is SNIPBaseline:
            kwargs["iterations"] = 2
        if cls is SynFlowBaseline:
            kwargs["iterations"] = 4
        result = cls(0.1, **kwargs).run(ctx, public)
        assert result.method == name
        densities = {round(r.density, 6) for r in result.rounds}
        assert len(densities) == 1
        assert result.final_density == pytest.approx(0.1, rel=0.06)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            FLPQSUBaseline(0.0)


class TestPruneFL:
    def test_mask_adapts_but_density_held(self, shared_data):
        ctx, public = _ctx(shared_data)
        result = PruneFLBaseline(
            0.1, schedule=_SCHEDULE, pretrain_epochs=1
        ).run(ctx, public)
        for record in result.rounds:
            assert record.density == pytest.approx(0.1, rel=0.06)

    def test_memory_includes_dense_scores(self, shared_data):
        ctx, public = _ctx(shared_data)
        result = PruneFLBaseline(
            0.05, schedule=_SCHEDULE, pretrain_epochs=1
        ).run(ctx, public)
        prunable = ctx.model.num_parameters(prunable_only=True)
        assert result.memory_footprint_bytes > 4 * prunable

    def test_flops_exceed_sparse_baseline(self, shared_data):
        ctx, public = _ctx(shared_data)
        prunefl = PruneFLBaseline(
            0.05, schedule=_SCHEDULE, pretrain_epochs=1
        ).run(ctx, public)
        ctx2, public2 = _ctx(shared_data)
        sparse = FLPQSUBaseline(0.05, pretrain_epochs=1).run(ctx2, public2)
        assert (
            prunefl.max_training_flops_per_round
            > sparse.max_training_flops_per_round
        )


class TestLotteryFL:
    def test_progressive_densification_toward_target(self, shared_data):
        ctx, public = _ctx(shared_data, rounds=4)
        result = LotteryFLBaseline(
            0.3, schedule=_SCHEDULE, prune_rate=0.5, pretrain_epochs=1
        ).run(ctx, public)
        densities = [r.density for r in result.rounds]
        assert densities[0] > densities[-1]
        assert densities[-1] >= 0.3 * 0.99

    def test_density_never_below_target(self, shared_data):
        ctx, public = _ctx(shared_data, rounds=4)
        result = LotteryFLBaseline(
            0.4, schedule=_SCHEDULE, prune_rate=0.9, pretrain_epochs=1
        ).run(ctx, public)
        for record in result.rounds:
            assert record.density >= 0.4 * 0.99

    def test_dense_cost_reported(self, shared_data):
        ctx, public = _ctx(shared_data)
        result = LotteryFLBaseline(
            0.3, schedule=_SCHEDULE, pretrain_epochs=1
        ).run(ctx, public)
        # Memory: dense params + grads (plus BN buffers).
        assert (
            result.memory_footprint_bytes
            >= 2 * 4 * ctx.model.num_parameters()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LotteryFLBaseline(0.1, prune_rate=1.5)


class TestFedDST:
    def test_density_held(self, shared_data):
        ctx, public = _ctx(shared_data)
        result = FedDSTBaseline(
            0.1, schedule=_SCHEDULE, pretrain_epochs=1,
            train_epochs_before_adjust=1, finetune_epochs_after_adjust=1,
        ).run(ctx, public)
        for record in result.rounds:
            assert record.density == pytest.approx(0.1, rel=0.06)

    def test_sparse_aggregate_union_semantics(self):
        states = [
            {"w": np.array([2.0, 0.0])},
            {"w": np.array([0.0, 4.0])},
        ]
        masks = [
            MaskSet({"w": np.array([True, False])}),
            MaskSet({"w": np.array([False, True])}),
        ]
        out = sparse_aggregate(states, masks, [1, 1], {"w"})
        # Each position averaged only over its contributor.
        np.testing.assert_allclose(out["w"], [2.0, 4.0])

    def test_sparse_aggregate_overlap(self):
        states = [
            {"w": np.array([1.0])},
            {"w": np.array([3.0])},
        ]
        masks = [
            MaskSet({"w": np.array([True])}),
            MaskSet({"w": np.array([True])}),
        ]
        out = sparse_aggregate(states, masks, [1, 3], {"w"})
        np.testing.assert_allclose(out["w"], [0.25 * 1 + 0.75 * 3])

    def test_sparse_aggregate_nobody_kept_position(self):
        states = [{"w": np.array([5.0])}]
        masks = [MaskSet({"w": np.array([False])})]
        out = sparse_aggregate(states, masks, [1], {"w"})
        np.testing.assert_array_equal(out["w"], [0.0])

    def test_sparse_aggregate_non_prunable_plain_fedavg(self):
        states = [{"b": np.array([1.0])}, {"b": np.array([3.0])}]
        masks = [MaskSet({}), MaskSet({})]
        out = sparse_aggregate(states, masks, [1, 1], set())
        np.testing.assert_allclose(out["b"], [2.0])

    def test_sparse_aggregate_length_mismatch(self):
        with pytest.raises(ValueError):
            sparse_aggregate([{}], [], [1], set())


class TestCostOrdering:
    """The relative cost claims of paper Table I, from our accounting."""

    def test_memory_ordering(self, shared_data):
        from repro.core import FedTiny, FedTinyConfig

        density = 0.05
        ctx1, public1 = _ctx(shared_data, rounds=2)
        fedtiny = FedTiny(
            FedTinyConfig(
                target_density=density, pool_size=2,
                schedule=_SCHEDULE, pretrain_epochs=1,
            )
        ).run(ctx1, public1)

        ctx2, public2 = _ctx(shared_data, rounds=2)
        prunefl = PruneFLBaseline(
            density, schedule=_SCHEDULE, pretrain_epochs=1
        ).run(ctx2, public2)

        ctx3, public3 = _ctx(shared_data, rounds=2)
        lottery = LotteryFLBaseline(
            density, schedule=_SCHEDULE, pretrain_epochs=1
        ).run(ctx3, public3)

        assert fedtiny.memory_footprint_bytes < prunefl.memory_footprint_bytes
        assert prunefl.memory_footprint_bytes < (
            lottery.memory_footprint_bytes
        )

    def test_flops_ordering(self, shared_data):
        from repro.core import FedTiny, FedTinyConfig

        density = 0.05
        ctx1, public1 = _ctx(shared_data, rounds=2)
        fedtiny = FedTiny(
            FedTinyConfig(
                target_density=density, pool_size=2,
                schedule=_SCHEDULE, pretrain_epochs=1,
            )
        ).run(ctx1, public1)

        ctx2, public2 = _ctx(shared_data, rounds=2)
        lottery = LotteryFLBaseline(
            density, schedule=_SCHEDULE, pretrain_epochs=1
        ).run(ctx2, public2)

        assert (
            fedtiny.max_training_flops_per_round
            < lottery.max_training_flops_per_round
        )


class TestFedDSTEpochBudget:
    """FedDST must not exceed the shared local-epoch budget (the 3+2
    split of the paper is 60/40 of the standard 5 epochs)."""

    def test_default_split_matches_paper_at_five_epochs(self):
        baseline = FedDSTBaseline(0.1)
        assert baseline._epoch_split(5) == (3, 2)

    def test_default_split_single_epoch(self):
        baseline = FedDSTBaseline(0.1)
        train, finetune = baseline._epoch_split(1)
        assert train == 1
        assert finetune == 0

    def test_explicit_override_honored(self):
        baseline = FedDSTBaseline(
            0.1, train_epochs_before_adjust=2,
            finetune_epochs_after_adjust=1,
        )
        assert baseline._epoch_split(5) == (2, 1)

    def test_runs_with_zero_finetune(self, shared_data):
        ctx, public = _ctx(shared_data, rounds=2)
        result = FedDSTBaseline(
            0.1, schedule=_SCHEDULE, pretrain_epochs=1,
        ).run(ctx, public)
        assert len(result.rounds) == 2
        assert result.final_density == pytest.approx(0.1, rel=0.06)
