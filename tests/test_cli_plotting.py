"""Tests for the CLI and the ASCII plotting helper."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.plotting import ascii_line_plot


class TestAsciiLinePlot:
    def test_basic_render(self):
        chart = ascii_line_plot(
            {"a": [(0.0, 0.0), (1.0, 1.0)], "b": [(0.0, 1.0), (1.0, 0.0)]},
            width=20,
            height=8,
        )
        assert "o = a" in chart
        assert "x = b" in chart
        assert "|" in chart

    def test_log_x_axis(self):
        chart = ascii_line_plot(
            {"m": [(0.001, 0.2), (0.01, 0.5), (0.1, 0.8)]},
            log_x=True,
            x_label="density",
        )
        assert "log scale" in chart
        assert "0.001" in chart

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"m": [(0.0, 1.0)]}, log_x=True)

    def test_flat_series_does_not_crash(self):
        chart = ascii_line_plot({"m": [(0.0, 0.5), (1.0, 0.5)]})
        assert "m" in chart

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_line_plot({})
        with pytest.raises(ValueError):
            ascii_line_plot({"a": []})

    def test_tiny_area_raises(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"a": [(0, 0)]}, width=2, height=2)

    def test_markers_cycle_beyond_alphabet(self):
        series = {f"s{i}": [(0.0, float(i))] for i in range(10)}
        chart = ascii_line_plot(series)
        assert "s9" in chart


class TestCLIParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "--method", "fedtiny", "--density", "0.01"]
        )
        assert args.method == "fedtiny"
        assert args.density == 0.01
        assert args.scale == "tiny"

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "magic"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.experiment_id == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCLICommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fedtiny" in out
        assert "resnet18" in out
        assert "cifar10" in out

    def test_run_text_output(self, capsys):
        code = main(
            [
                "run", "--method", "fl-pqsu", "--density", "0.1",
                "--scale", "tiny", "--rounds", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "memory footprint" in out

    def test_run_json_output(self, capsys):
        code = main(
            [
                "run", "--method", "fl-pqsu", "--density", "0.1",
                "--scale", "tiny", "--rounds", "1", "--json",
            ]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["method"] == "fl-pqsu"
        assert record["num_rounds"] == 1

    def test_run_iid_alpha(self, capsys):
        code = main(
            [
                "run", "--method", "fl-pqsu", "--density", "0.1",
                "--scale", "tiny", "--rounds", "1", "--alpha", "0",
            ]
        )
        assert code == 0

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "block" in out
        assert "resnet18" in out
