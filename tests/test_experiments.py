"""Tests for the experiment registry, runner and reporting."""

import pytest

from repro.experiments import (
    METHOD_NAMES,
    build_method,
    format_accuracy_matrix,
    format_density_series,
    format_table,
    format_table1,
    get_scale,
    make_context,
    prepare_data,
    run_experiment,
)
from repro.metrics import RoundRecord, RunResult


class TestScales:
    def test_known_scales(self):
        for name in ("tiny", "bench", "paper"):
            preset = get_scale(name)
            assert preset.name == name

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_paper_scale_matches_paper(self):
        paper = get_scale("paper")
        assert paper.num_clients == 10
        assert paper.rounds == 300
        assert paper.local_epochs == 5
        assert paper.batch_size == 64
        assert paper.delta_rounds == 10
        assert paper.stop_round == 100

    def test_fl_config_override_rounds(self):
        preset = get_scale("tiny")
        assert preset.fl_config(rounds=7).rounds == 7

    def test_schedule_overrides(self):
        preset = get_scale("tiny")
        sched = preset.schedule(granularity="layer", backward_order=False,
                                delta_rounds=3, stop_round=9)
        assert sched.granularity == "layer"
        assert not sched.backward_order
        assert sched.delta_rounds == 3
        assert sched.stop_round == 9


class TestPrepareData:
    def test_three_disjoint_splits(self):
        preset = get_scale("tiny")
        public, federated, test = prepare_data("cifar10", preset, seed=0)
        assert len(public) + len(federated) == preset.num_train
        assert len(test) == preset.num_test

    def test_deterministic(self):
        preset = get_scale("tiny")
        a = prepare_data("cifar10", preset, seed=3)[0]
        b = prepare_data("cifar10", preset, seed=3)[0]
        import numpy as np

        np.testing.assert_array_equal(a.images, b.images)


class TestBuildMethod:
    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_every_registered_method_builds(self, name):
        preset = get_scale("tiny")
        method = build_method(name, 0.1, preset)
        assert hasattr(method, "run")

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            build_method("dropout", 0.1, get_scale("tiny"))

    def test_make_context(self):
        ctx, public = make_context("resnet18", "cifar10", get_scale("tiny"))
        assert len(ctx.clients) == get_scale("tiny").num_clients
        assert len(public) > 0


class TestRunExperiment:
    def test_fedtiny_tiny_scale(self):
        result = run_experiment(
            "fedtiny", "resnet18", "cifar10", 0.1,
            scale="tiny", pool_size=2, seed=0,
        )
        assert result.method == "fedtiny"
        assert result.final_density <= 0.1 * 1.001
        assert len(result.rounds) == get_scale("tiny").rounds

    def test_small_model_replaces_architecture(self):
        result = run_experiment(
            "small_model", "resnet18", "cifar10", 0.1, scale="tiny",
        )
        assert result.method == "small_model"
        assert "small_cnn" in result.model
        assert result.metadata["model_parameters"] > 0

    def test_rounds_override(self):
        result = run_experiment(
            "fl-pqsu", "resnet18", "cifar10", 0.1,
            scale="tiny", rounds=2,
        )
        assert len(result.rounds) == 2

    def test_iid_alpha_none(self):
        result = run_experiment(
            "fl-pqsu", "resnet18", "cifar10", 0.1,
            scale="tiny", dirichlet_alpha=None, rounds=1,
        )
        assert len(result.rounds) == 1


class TestReporting:
    def _result(self, method="m", acc=0.5, flops=100.0, mem=1_000_000):
        result = RunResult(method, "cifar10", "resnet18", 0.01)
        result.record_round(
            RoundRecord(1, acc, 1.0, 0.01, 0, 0, flops)
        )
        result.memory_footprint_bytes = mem
        return result

    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_table1_block_structure(self):
        results = {
            0.01: [self._result("fedtiny", 0.8, 50.0)],
            0.001: [self._result("snip", 0.2, 10.0)],
        }
        table = format_table1(results, dense_flops_per_round=100.0)
        assert "fedtiny" in table
        assert "0.500x" in table
        assert "1.00MB" in table

    def test_density_series(self):
        series = {"fedtiny": {0.01: 0.8, 0.001: 0.6}, "snip": {0.01: 0.7}}
        out = format_density_series(series)
        assert "d=0.001" in out
        assert "-" in out  # missing cell placeholder

    def test_accuracy_matrix(self):
        matrix = {
            "fedtiny": {"cifar10": 0.85, "svhn": 0.88},
            "synflow": {"cifar10": 0.80},
        }
        out = format_accuracy_matrix(matrix)
        assert "cifar10" in out and "svhn" in out
