"""Property and validation tests for the sparse round-transport codec."""

import numpy as np
import pytest

from repro.fl.aggregation import (
    AggregationWorkspace,
    aggregate_packed_states,
    weighted_average_states,
)
from repro.fl.payload import (
    ModelBinding,
    PackedPayload,
    PayloadFormatError,
    StatePacker,
    TensorSpec,
    build_mask_indices,
    pack_model_state,
    pack_state,
    packed_nbytes,
    unpack_into_model,
    unpack_state,
)
from repro.fl.state import get_state
from repro.nn.models import build_model
from repro.sparse.mask import MaskSet
from repro.sparse.storage import sparse_bytes


def _random_state_and_masks(rng, densities):
    """A synthetic multi-tensor state with one mask per density."""
    shapes = [(16, 8, 3, 3), (32, 16), (7,), (5, 3)]
    state = {}
    masks = {}
    for i, (shape, density) in enumerate(zip(shapes, densities)):
        name = f"t{i}"
        value = rng.normal(size=shape).astype(np.float32)
        mask = rng.random(shape) < density
        # Masked states carry exact zeros at pruned positions.
        state[name] = np.where(mask, value, np.float32(0.0))
        masks[name] = mask
    state["dense_extra"] = rng.normal(size=(4, 4)).astype(np.float32)
    state["buffer::bn.running_var"] = (
        rng.random(12).astype(np.float32) + 0.5
    )
    return state, MaskSet(masks)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_pack_unpack_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        densities = rng.uniform(0.0, 1.0, size=4)
        state, masks = _random_state_and_masks(rng, densities)
        payload = pack_state(state, masks)
        restored = unpack_state(payload)
        assert set(restored) == set(state)
        for name in state:
            a, b = state[name], restored[name]
            assert a.shape == b.shape
            # Bit-exact: the test states hold +0.0 at pruned positions,
            # so even the zeros round-trip identically.
            assert (a.view(np.uint32) == b.view(np.uint32)).all(), name

    def test_wire_roundtrip_preserves_everything(self):
        rng = np.random.default_rng(3)
        state, masks = _random_state_and_masks(rng, [0.1, 0.9, 0.0, 1.0])
        payload = pack_state(state, masks)
        parsed = PackedPayload.from_bytes(payload.to_bytes())
        assert parsed.specs == payload.specs
        assert parsed.nbytes == payload.nbytes
        assert (parsed.buffer == payload.buffer).all()
        restored = unpack_state(parsed)
        for name in state:
            np.testing.assert_array_equal(restored[name], state[name])

    def test_write_into_matches_to_bytes(self):
        rng = np.random.default_rng(4)
        state, masks = _random_state_and_masks(rng, [0.2, 0.5, 0.8, 0.4])
        payload = pack_state(state, masks)
        target = bytearray(payload.wire_nbytes + 32)
        written = payload.write_into(target, offset=16)
        assert written == payload.wire_nbytes
        assert bytes(target[16 : 16 + written]) == payload.to_bytes()

    def test_dense_fallback_above_crossover(self):
        rng = np.random.default_rng(0)
        # 90% density: COO (8 bytes/active) would exceed dense storage.
        state, masks = _random_state_and_masks(rng, [0.9, 0.9, 0.9, 0.9])
        payload = pack_state(state, masks)
        by_name = {s.name: s for s in payload.specs}
        for name in ("t0", "t1"):
            assert by_name[name].encoding == "dense"
        assert by_name["dense_extra"].encoding == "dense"

    def test_sparse_encoding_below_crossover(self):
        rng = np.random.default_rng(0)
        state, masks = _random_state_and_masks(rng, [0.1, 0.1, 0.1, 0.1])
        payload = pack_state(state, masks)
        by_name = {s.name: s for s in payload.specs}
        assert by_name["t0"].encoding == "sparse"
        assert by_name["t0"].num_active == masks.layer_active("t0")

    def test_zero_density_costs_zero_bytes(self):
        rng = np.random.default_rng(1)
        state, masks = _random_state_and_masks(rng, [0.0, 0.0, 0.0, 0.0])
        payload = pack_state(state, masks)
        by_name = {s.name: s for s in payload.specs}
        assert by_name["t0"].nbytes == 0
        restored = unpack_state(payload)
        np.testing.assert_array_equal(restored["t0"], 0.0)


class TestDeltaEncoding:
    def test_delta_roundtrip_is_bit_exact(self):
        rng = np.random.default_rng(7)
        state, masks = _random_state_and_masks(rng, [0.3, 0.6, 0.1, 0.9])
        base = {
            k: (v + rng.normal(size=v.shape).astype(np.float32) * 1e-3)
            for k, v in state.items()
        }
        payload = pack_state(state, masks, base=base)
        assert payload.delta
        restored = unpack_state(payload, base=base)
        for name in state:
            a, b = state[name], restored[name]
            active = a != 0
            assert (
                a[active].view(np.uint32) == b[active].view(np.uint32)
            ).all(), name

    def test_delta_of_identical_state_is_all_zero_words(self):
        rng = np.random.default_rng(8)
        state, masks = _random_state_and_masks(rng, [0.4, 0.4, 0.4, 0.4])
        payload = pack_state(state, masks, base=state)
        for spec in payload.specs:
            np.testing.assert_array_equal(
                payload.values_view(spec).view(np.uint32), 0
            )

    def test_delta_composes_across_rounds(self):
        # round0 --delta--> round1 --delta--> round2: decoding each
        # delta against the previously reconstructed state reproduces
        # every round bit-exactly.
        rng = np.random.default_rng(9)
        round0, masks = _random_state_and_masks(rng, [0.3, 0.7, 0.2, 0.5])
        def perturb(state):
            out = {}
            for k, v in state.items():
                noise = rng.normal(size=v.shape).astype(np.float32) * 0.01
                out[k] = np.where(v != 0, v + noise, v).astype(np.float32)
            return out
        round1 = perturb(round0)
        round2 = perturb(round1)
        d1 = pack_state(round1, masks, base=round0)
        d2 = pack_state(round2, masks, base=round1)
        rec1 = unpack_state(d1, base=round0)
        rec2 = unpack_state(d2, base=rec1)
        for name in round2:
            active = round2[name] != 0
            assert (
                rec2[name][active].view(np.uint32)
                == round2[name][active].view(np.uint32)
            ).all(), name

    def test_delta_requires_base_on_unpack(self):
        rng = np.random.default_rng(10)
        state, masks = _random_state_and_masks(rng, [0.5] * 4)
        payload = pack_state(state, masks, base=state)
        with pytest.raises(ValueError, match="base"):
            unpack_state(payload)


class TestValidation:
    def _payload(self):
        rng = np.random.default_rng(2)
        state, masks = _random_state_and_masks(rng, [0.2, 0.5, 0.7, 0.1])
        return pack_state(state, masks)

    def test_offset_overflow_raises(self):
        payload = self._payload()
        specs = list(payload.specs)
        bad = specs[-1]
        specs[-1] = TensorSpec(
            bad.name, bad.shape, bad.encoding,
            payload.nbytes + 8, bad.num_active,
        )
        with pytest.raises(PayloadFormatError, match="offset|segment"):
            PackedPayload(tuple(specs), payload.buffer).validate()

    def test_truncated_buffer_raises(self):
        payload = self._payload()
        with pytest.raises(PayloadFormatError, match="overflow|describe"):
            PackedPayload(payload.specs, payload.buffer[:-8]).validate()

    def test_truncated_wire_bytes_raise(self):
        blob = self._payload().to_bytes()
        with pytest.raises(PayloadFormatError, match="truncated"):
            PackedPayload.from_bytes(blob[: len(blob) - 4])

    def test_corrupted_spec_header_raises_payload_error(self):
        blob = bytearray(self._payload().to_bytes())
        # Scribble over the pickled spec table (starts right after the
        # fixed prefix); parsing must surface PayloadFormatError, not a
        # raw UnpicklingError/TypeError.
        blob[24:40] = b"\xff" * 16
        with pytest.raises(PayloadFormatError, match="header"):
            PackedPayload.from_bytes(bytes(blob))

    def test_bad_magic_raises(self):
        blob = bytearray(self._payload().to_bytes())
        blob[:4] = b"NOPE"
        with pytest.raises(PayloadFormatError, match="magic"):
            PackedPayload.from_bytes(bytes(blob))

    def test_out_of_range_sparse_index_raises(self):
        payload = self._payload()
        spec = next(s for s in payload.specs if s.encoding == "sparse")
        buffer = payload.buffer.copy()
        idx = np.frombuffer(
            buffer, dtype=np.int32, count=spec.num_active,
            offset=spec.offset,
        )
        idx[-1] = spec.size + 5
        with pytest.raises(PayloadFormatError, match="out of range"):
            PackedPayload(payload.specs, buffer).validate()

    def test_unsorted_sparse_indices_raise(self):
        payload = self._payload()
        spec = next(
            s for s in payload.specs
            if s.encoding == "sparse" and s.num_active >= 2
        )
        buffer = payload.buffer.copy()
        idx = np.frombuffer(
            buffer, dtype=np.int32, count=spec.num_active,
            offset=spec.offset,
        )
        idx[0], idx[1] = idx[1], idx[0]
        with pytest.raises(PayloadFormatError, match="increasing"):
            PackedPayload(payload.specs, buffer).validate()

    def test_duplicate_tensor_raises(self):
        payload = self._payload()
        specs = (payload.specs[0],) + payload.specs
        with pytest.raises(PayloadFormatError, match="duplicate"):
            PackedPayload(specs, payload.buffer).validate()

    def test_shape_mismatch_raises_before_model_write(self):
        model = build_model("small_cnn", num_classes=10, seed=0)
        masks = MaskSet.dense(model)
        payload = pack_model_state(model, masks)
        specs = list(payload.specs)
        first = specs[0]
        specs[0] = TensorSpec(
            first.name, (1,) + first.shape, first.encoding,
            first.offset, first.num_active,
        )
        before = get_state(model)
        with pytest.raises(PayloadFormatError, match="shape mismatch"):
            unpack_into_model(
                PackedPayload(tuple(specs), payload.buffer),
                model,
                validate=False,
            )
        after = get_state(model)
        for name in before:  # the model was not half-written
            np.testing.assert_array_equal(before[name], after[name])

    def test_unknown_parameter_raises(self):
        model = build_model("small_cnn", num_classes=10, seed=0)
        payload = pack_model_state(model, MaskSet.dense(model))
        specs = list(payload.specs)
        first = specs[0]
        specs[0] = TensorSpec(
            "not_a_real_param", first.shape, first.encoding,
            first.offset, first.num_active,
        )
        with pytest.raises(PayloadFormatError, match="unknown"):
            unpack_into_model(
                PackedPayload(tuple(specs), payload.buffer),
                model,
                validate=False,
            )


class TestModelPaths:
    def _masked_model(self, density=0.25, seed=0):
        model = build_model("small_cnn", num_classes=10, seed=seed)
        rng = np.random.default_rng(seed + 1)
        masks = {}
        for name, param in model.named_parameters():
            if param.prunable:
                mask = rng.random(param.shape) < density
                mask.reshape(-1)[0] = True
                masks[name] = mask
        mask_set = MaskSet(masks)
        mask_set.apply(model)
        return model, mask_set

    def test_pack_model_state_matches_pack_state(self):
        model, masks = self._masked_model()
        from_model = pack_model_state(model, masks)
        from_dict = pack_state(get_state(model), masks)
        assert from_model.specs == from_dict.specs
        assert (from_model.buffer == from_dict.buffer).all()

    def test_unpack_into_model_restores_exactly(self):
        model, masks = self._masked_model()
        reference = get_state(model)
        payload = pack_model_state(model, masks)
        # Scribble over the model, then restore.
        for _, param in model.named_parameters():
            param.data = param.data + 1.0
        unpack_into_model(payload, model)
        for name, value in get_state(model).items():
            np.testing.assert_array_equal(value, reference[name], err_msg=name)

    def test_binding_assume_masked_restore_matches_full(self):
        model, masks = self._masked_model()
        reference = get_state(model)
        payload = pack_model_state(model, masks)
        binding = ModelBinding(model, payload.specs)
        # Perturb only active positions (as masked SGD would), keeping
        # pruned positions zero; the scatter-only restore must be exact.
        for name, param in model.named_parameters():
            param.data = param.data * 1.5
            param.apply_mask()
        binding.restore(payload, assume_masked=True)
        for name, value in get_state(model).items():
            np.testing.assert_array_equal(value, reference[name], err_msg=name)

    def test_binding_pack_matches_pack_model_state(self):
        model, masks = self._masked_model()
        payload = pack_model_state(model, masks)
        binding = ModelBinding(model, payload.specs)
        packed = binding.pack(indices=build_mask_indices(masks))
        assert packed.specs == payload.specs
        assert (packed.buffer == payload.buffer).all()

    def test_packed_nbytes_matches_measured_and_storage_model(self):
        for density in (0.0, 0.1, 0.5, 1.0):
            model, masks = (
                self._masked_model(density=density)
                if density > 0
                else self._masked_model(density=0.0001)
            )
            payload = pack_model_state(model, masks)
            predicted = packed_nbytes(model, masks)
            assert payload.nbytes == predicted
            expected = 0
            for name, param in model.named_parameters():
                if name in masks:
                    expected += sparse_bytes(
                        masks.layer_active(name), param.size
                    )
                else:
                    expected += param.size * 4
            for _, buf in model.named_buffers():
                expected += int(buf.size) * 4
            assert predicted == expected


class TestStatePacker:
    def test_repacks_match_pack_state(self):
        rng = np.random.default_rng(21)
        state, masks = _random_state_and_masks(rng, [0.1, 0.5, 0.9, 0.3])
        packer = StatePacker(state, masks)
        # Mutate the state in place (as the server's commit does) and
        # re-pack: the persistent buffer must track the new values.
        for value in state.values():
            value *= 2.0
        repacked = packer.pack(state)
        fresh = pack_state(state, masks)
        assert repacked.specs == fresh.specs
        assert (repacked.buffer == fresh.buffer).all()

    def test_layout_mismatch_rejected(self):
        rng = np.random.default_rng(22)
        state, masks = _random_state_and_masks(rng, [0.2, 0.2, 0.2, 0.2])
        packer = StatePacker(state, masks)
        bad = dict(state)
        bad["t0"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="does not match"):
            packer.pack(bad)

    def test_binding_pack_requires_indices_for_sparse(self):
        model = build_model("small_cnn", num_classes=10, seed=0)
        rng = np.random.default_rng(23)
        masks = {}
        for name, param in model.named_parameters():
            if param.prunable:
                mask = rng.random(param.shape) < 0.1
                mask.reshape(-1)[0] = True
                masks[name] = mask
        mask_set = MaskSet(masks)
        mask_set.apply(model)
        payload = pack_model_state(model, mask_set)
        binding = ModelBinding(model, payload.specs)
        with pytest.raises(ValueError, match="active-index"):
            binding.pack()


class TestPackedAggregation:
    def test_matches_dense_fedavg(self):
        rng = np.random.default_rng(11)
        densities = [0.15, 0.6, 0.05, 0.95]
        states = []
        masks = None
        for k in range(4):
            state, mask_set = _random_state_and_masks(
                np.random.default_rng(100 + k), densities
            )
            states.append(state)
            masks = mask_set  # identical layout every draw (same seed path)
        # Same mask for all clients (FedAvg shares the server mask).
        masks = MaskSet(
            {n: m.copy() for n, m in masks.items()}
        )
        states = [
            {
                k: (
                    np.where(masks[k], v, np.float32(0.0))
                    if k in masks
                    else v
                )
                for k, v in s.items()
            }
            for s in states
        ]
        counts = [120, 80, 200, 40]
        payloads = [pack_state(s, masks) for s in states]
        dense = weighted_average_states(states, counts)
        packed = aggregate_packed_states(payloads, counts)
        assert set(dense) == set(packed)
        for name in dense:
            np.testing.assert_array_equal(
                dense[name], packed[name], err_msg=name
            )

    def test_workspace_reuse_is_identical(self):
        rng = np.random.default_rng(12)
        state, masks = _random_state_and_masks(rng, [0.2, 0.4, 0.6, 0.8])
        payloads = [pack_state(state, masks) for _ in range(3)]
        counts = [10, 20, 30]
        workspace = AggregationWorkspace()
        first = aggregate_packed_states(payloads, counts, workspace=workspace)
        first = {k: v.copy() for k, v in first.items()}
        second = aggregate_packed_states(
            payloads, counts, workspace=workspace
        )
        for name in first:
            np.testing.assert_array_equal(first[name], second[name])

    def test_same_counts_different_indices_rejected(self):
        # Two masks with identical per-tensor active counts produce
        # equal spec tuples; only the index segments reveal the
        # mismatch, and aggregating across them must refuse.
        rng = np.random.default_rng(31)
        value = rng.normal(size=(6, 8)).astype(np.float32)
        mask_a = np.zeros((6, 8), dtype=bool)
        mask_b = np.zeros((6, 8), dtype=bool)
        mask_a.reshape(-1)[:4] = True
        mask_b.reshape(-1)[-4:] = True
        a = pack_state(
            {"w": np.where(mask_a, value, np.float32(0.0))},
            MaskSet({"w": mask_a}),
        )
        b = pack_state(
            {"w": np.where(mask_b, value, np.float32(0.0))},
            MaskSet({"w": mask_b}),
        )
        assert a.specs == b.specs  # counts collide on purpose
        with pytest.raises(ValueError, match="active indices"):
            aggregate_packed_states([a, b], [1, 1])

    def test_mismatched_specs_rejected(self):
        rng = np.random.default_rng(13)
        state, masks = _random_state_and_masks(rng, [0.2, 0.4, 0.6, 0.8])
        other_masks = MaskSet(
            {n: ~m if n == "t0" else m for n, m in masks.items()}
        )
        a = pack_state(state, masks)
        b = pack_state(
            {
                k: (
                    np.where(other_masks[k], v, np.float32(0.0))
                    if k in other_masks
                    else v
                )
                for k, v in state.items()
            },
            other_masks,
        )
        with pytest.raises(ValueError, match="mismatched specs"):
            aggregate_packed_states([a, b], [1, 1])


class TestWorkspaceDenseAggregation:
    def test_workspace_path_bitwise_matches_allocating_path(self):
        rng = np.random.default_rng(14)
        states = [
            {
                "w": rng.normal(size=(33, 17)).astype(np.float32),
                "b": rng.normal(size=(9,)).astype(np.float32),
            }
            for _ in range(5)
        ]
        counts = [3, 5, 7, 11, 13]
        plain = weighted_average_states(states, counts)
        workspace = AggregationWorkspace()
        fast = weighted_average_states(states, counts, workspace=workspace)
        for name in plain:
            assert (
                plain[name].view(np.uint32) == fast[name].view(np.uint32)
            ).all(), name
