"""Tests for experiment-runner defaults (pool caps, method wiring)."""

import pytest

from repro.core import FedTiny
from repro.experiments import build_method, get_scale


class TestPoolSizeDefaults:
    def test_auto_pool_respects_scale_cap(self):
        preset = get_scale("tiny")  # max_pool_size = 3
        method = build_method("fedtiny", 0.001, preset)
        assert isinstance(method, FedTiny)
        # C* = 0.1/0.001 = 100, capped by the preset.
        assert method.config.pool_size == 3

    def test_auto_pool_small_when_density_high(self):
        preset = get_scale("tiny")
        method = build_method("fedtiny", 0.25, preset)
        # C* = round(0.1/0.25) -> at least one candidate.
        assert method.config.pool_size == 1

    def test_explicit_pool_size_uncapped(self):
        preset = get_scale("tiny")
        method = build_method("fedtiny", 0.01, preset, pool_size=9)
        assert method.config.pool_size == 9

    def test_paper_scale_matches_paper_rule(self):
        preset = get_scale("paper")  # max_pool_size = 50
        method = build_method("fedtiny", 0.01, preset)
        assert method.config.pool_size == 10
        method = build_method("fedtiny", 0.001, preset)
        assert method.config.pool_size == 50


class TestMethodWiring:
    def test_schedule_passed_through(self):
        preset = get_scale("tiny")
        schedule = preset.schedule(granularity="entire")
        method = build_method("fedtiny", 0.1, preset, schedule=schedule)
        assert method.config.schedule.granularity == "entire"

    def test_snip_iterations_from_scale(self):
        preset = get_scale("tiny")
        method = build_method("snip", 0.1, preset)
        assert method.iterations == preset.snip_iterations

    def test_synflow_iterations_from_scale(self):
        preset = get_scale("tiny")
        method = build_method("synflow", 0.1, preset)
        assert method.iterations == preset.synflow_iterations

    def test_pretrain_epochs_from_scale(self):
        preset = get_scale("tiny")
        for name in ("fedavg", "fl-pqsu", "prunefl", "feddst", "lotteryfl"):
            method = build_method(name, 0.1, preset)
            assert method.pretrain_epochs == preset.pretrain_epochs

    def test_ablation_flags(self):
        preset = get_scale("tiny")
        arms = {
            "fedtiny": (True, True),
            "vanilla": (False, False),
            "adaptive_bn_only": (True, False),
            "vanilla+progressive": (False, True),
        }
        for name, (bn, progressive) in arms.items():
            method = build_method(name, 0.1, preset)
            assert method.config.use_adaptive_bn == bn
            assert method.config.use_progressive == progressive
