"""Tests for the virtual client fleet and hierarchical aggregation.

The contract under test: the virtual backend (ID-based directory, lazy
materialization, streaming aggregation) is an implementation detail —
every observable of a run (committed states, round records, comm bytes,
simulated clock) is bitwise identical to the materialized backend.
"""

import numpy as np
import pytest

from repro.data.partition import (
    ListPartitionPlan,
    VirtualShardPlan,
    partition_dataset,
    plan_partition,
)
from repro.fl.aggregation import (
    HierarchicalAggregator,
    aggregate_packed_states,
    weighted_average_states,
)
from repro.fl.client import Client
from repro.fl.fleet import (
    MaterializedDirectory,
    VirtualClientDirectory,
    cohort_size,
)
from repro.fl.latency import FleetPlan, build_fleet
from repro.fl.payload import pack_state
from repro.fl.policies import RoundPlan
from repro.fl.simulation import FederatedContext, FLConfig
from repro.fl.state import get_state
from repro.nn.models import build_model
from repro.sparse.mask import MaskSet


# ----------------------------------------------------------------------
# Satellite: cohort sizing (ceil rule replaces banker's rounding)
# ----------------------------------------------------------------------
class TestCohortSize:
    def test_half_fractions_round_up(self):
        # int(round(...)) gave 2 for 2.5 but 4 for 3.5 (half-to-even);
        # the ceiling rule is monotone in the expected cohort.
        assert cohort_size(0.5, 5) == 3  # was round(2.5) == 2
        assert cohort_size(0.5, 7) == 4  # was round(3.5) == 4
        assert cohort_size(0.75, 6) == 5  # was round(4.5) == 4

    def test_exact_fractions_unchanged(self):
        assert cohort_size(0.5, 6) == 3
        assert cohort_size(1.0, 10) == 10

    def test_at_least_one(self):
        assert cohort_size(0.001, 3) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            cohort_size(0.0, 10)
        with pytest.raises(ValueError):
            cohort_size(1.5, 10)
        with pytest.raises(ValueError):
            cohort_size(0.5, 0)

    def test_sampler_uses_ceil_rule(self, tiny_dataset):
        train, test = tiny_dataset
        ctx = _make_ctx(train, test, "materialized",
                        num_clients=5, frac=0.5)
        try:
            ids = ctx.sample_participant_ids()
            assert len(ids) == 3
            assert ids == sorted(ids)
            assert all(0 <= i < 5 for i in ids)
        finally:
            ctx.close()


# ----------------------------------------------------------------------
# Satellite: dev-set floor on tiny shards
# ----------------------------------------------------------------------
class TestClientDevSet:
    def test_two_sample_shard_gets_dev_sample(self, tiny_dataset):
        train, _ = tiny_dataset
        shard = train.subset(np.arange(2))
        client = Client(client_id=0, train_data=shard, dev_fraction=0.1)
        assert client.num_dev_samples >= 1
        model = build_model(
            "small_cnn", num_classes=4, image_size=8,
            width_multiplier=0.25, seed=1,
        )
        loss = client.evaluate_candidate_loss(model, batch_size=8)
        assert np.isfinite(loss)

    def test_empty_shard_rejected_at_construction(self, tiny_dataset):
        train, _ = tiny_dataset
        empty = train.subset(np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="no local data"):
            Client(client_id=3, train_data=empty)

    def test_empty_dev_batches_raise_clearly(self, tiny_dataset):
        train, _ = tiny_dataset
        client = Client(client_id=0, train_data=train.subset(np.arange(4)))
        # Force the (otherwise unreachable) degenerate dev state to pin
        # the error message rather than a silent 0-batch evaluation.
        client.dev_data = train.subset(np.array([], dtype=np.int64))
        client._dev_batch_cache.clear()
        model = build_model(
            "small_cnn", num_classes=4, image_size=8,
            width_multiplier=0.25, seed=1,
        )
        with pytest.raises(ValueError, match="no dev batches"):
            client.evaluate_candidate_loss(model, batch_size=8)


# ----------------------------------------------------------------------
# Satellite: min_samples threading
# ----------------------------------------------------------------------
class TestPartitionMinSamples:
    def test_floor_is_respected(self, tiny_dataset):
        train, _ = tiny_dataset
        rng = np.random.default_rng(0)
        shards = partition_dataset(train, 4, 0.3, rng, min_samples=8)
        assert all(len(s) >= 8 for s in shards)

    def test_default_floor_unchanged(self, tiny_dataset):
        train, _ = tiny_dataset
        a = partition_dataset(train, 4, 0.5, np.random.default_rng(7))
        b = partition_dataset(
            train, 4, 0.5, np.random.default_rng(7), min_samples=2
        )
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(sa.labels, sb.labels)

    def test_infeasible_floor_rejected(self, tiny_dataset):
        train, _ = tiny_dataset
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="cannot give"):
            partition_dataset(train, 4, 0.5, rng, min_samples=1_000)

    def test_invalid_floor_rejected(self, tiny_dataset):
        train, _ = tiny_dataset
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="min_samples"):
            partition_dataset(train, 4, 0.5, rng, min_samples=0)

    def test_config_threads_floor(self, tiny_dataset):
        train, test = tiny_dataset
        ctx = _make_ctx(train, test, "materialized",
                        num_clients=4, min_partition_samples=10)
        try:
            assert all(c >= 10 for c in ctx.sample_counts)
        finally:
            ctx.close()

    def test_config_validates_floor(self):
        with pytest.raises(ValueError, match="min_partition_samples"):
            FLConfig(num_clients=4, rounds=1, min_partition_samples=0)


# ----------------------------------------------------------------------
# Satellite: strict RoundPlan validation
# ----------------------------------------------------------------------
class TestRoundPlanValidation:
    def test_valid_plan_passes(self):
        plan = RoundPlan(
            trained=(0, 1, 2), on_time=(0, 1), dropped=(3,),
            elapsed_seconds=1.0,
        )
        assert plan.trained == (0, 1, 2)

    def test_negative_positions_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            RoundPlan(trained=(-1, 0), on_time=(), dropped=(),
                      elapsed_seconds=0.0)
        with pytest.raises(ValueError, match="negative"):
            RoundPlan(trained=(0,), on_time=(), dropped=(-2,),
                      elapsed_seconds=0.0)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RoundPlan(trained=(0, 0), on_time=(), dropped=(),
                      elapsed_seconds=0.0)
        with pytest.raises(ValueError, match="duplicate"):
            RoundPlan(trained=(0, 1), on_time=(0, 0), dropped=(),
                      elapsed_seconds=0.0)

    def test_trained_dropped_overlap_rejected(self):
        with pytest.raises(ValueError, match="both"):
            RoundPlan(trained=(0, 1), on_time=(0,), dropped=(1, 2),
                      elapsed_seconds=0.0)

    def test_preexisting_checks_still_enforced(self):
        with pytest.raises(ValueError, match="elapsed"):
            RoundPlan(trained=(0,), on_time=(), dropped=(),
                      elapsed_seconds=-1.0)
        with pytest.raises(ValueError, match="on_time"):
            RoundPlan(trained=(0,), on_time=(5,), dropped=(),
                      elapsed_seconds=0.0)


# ----------------------------------------------------------------------
# Partition plans
# ----------------------------------------------------------------------
class TestPartitionPlans:
    def test_plan_matches_materialized_partition(self, tiny_dataset):
        train, _ = tiny_dataset
        plan = plan_partition(train, 4, 0.5, np.random.default_rng(5))
        shards = partition_dataset(train, 4, 0.5, np.random.default_rng(5))
        assert plan.num_clients == 4
        for i, shard in enumerate(shards):
            assert plan.shard_size(i) == len(shard)
            np.testing.assert_array_equal(
                train.subset(plan.shard_indices(i)).labels, shard.labels
            )

    def test_plan_leaves_rng_in_same_state(self, tiny_dataset):
        train, _ = tiny_dataset
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        plan_partition(train, 4, 0.5, rng_a)
        partition_dataset(train, 4, 0.5, rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_virtual_shard_plan_is_deterministic(self):
        plan = VirtualShardPlan(2_048, 1_000_000, 8, seed=3)
        a = plan.shard_indices(999_999)
        b = plan.shard_indices(999_999)
        np.testing.assert_array_equal(a, b)
        assert a.size == 8 == plan.shard_size(999_999)
        assert (np.diff(a) > 0).all()  # sorted, no duplicates
        assert a.min() >= 0 and a.max() < 2_048

    def test_virtual_shards_differ_across_ids_and_seeds(self):
        plan = VirtualShardPlan(2_048, 100, 8, seed=3)
        other_seed = VirtualShardPlan(2_048, 100, 8, seed=4)
        assert not np.array_equal(
            plan.shard_indices(0), plan.shard_indices(1)
        )
        assert not np.array_equal(
            plan.shard_indices(0), other_seed.shard_indices(0)
        )

    def test_id_range_checked(self):
        plan = VirtualShardPlan(64, 10, 4)
        with pytest.raises(IndexError):
            plan.shard_indices(10)
        with pytest.raises(IndexError):
            ListPartitionPlan([np.arange(3)]).shard_indices(-1)

    def test_virtual_shard_plan_validation(self):
        with pytest.raises(ValueError):
            VirtualShardPlan(64, 10, 0)
        with pytest.raises(ValueError):
            VirtualShardPlan(64, 10, 65)
        with pytest.raises(ValueError):
            VirtualShardPlan(64, 0, 4)


# ----------------------------------------------------------------------
# Fleet plans
# ----------------------------------------------------------------------
class TestFleetPlan:
    @pytest.mark.parametrize(
        "spec", ["uniform", "heterogeneous:4", "heterogeneous:16"]
    )
    def test_profiles_match_eager_fleet(self, spec):
        eager = build_fleet(spec, 12, seed=3)
        plan = FleetPlan(spec, 12, seed=3)
        assert plan.num_devices == 12
        for i in range(12):
            assert plan.profile(i) == eager[i]

    def test_random_access_is_order_independent(self):
        plan = FleetPlan("heterogeneous:16", 50, seed=0)
        eager = build_fleet("heterogeneous:16", 50, seed=0)
        # Querying device 42 first must not disturb device 7's draw.
        assert plan.profile(42) == eager[42]
        assert plan.profile(7) == eager[7]


# ----------------------------------------------------------------------
# Client directories
# ----------------------------------------------------------------------
class TestVirtualDirectory:
    def _directory(self, train, num_clients=4, seed=0):
        plan = plan_partition(
            train, num_clients, 0.5, np.random.default_rng(seed)
        )
        fleet = FleetPlan("heterogeneous:4", num_clients, seed=seed)
        return VirtualClientDirectory(train, plan, fleet, seed=seed)

    def test_matches_materialized_directory(self, tiny_dataset):
        train, _ = tiny_dataset
        virtual = self._directory(train)
        shards = partition_dataset(train, 4, 0.5, np.random.default_rng(0))
        fleet = build_fleet("heterogeneous:4", 4, seed=0)
        eager = MaterializedDirectory(
            [
                Client(i, shard, seed=0, device=profile)
                for i, (shard, profile) in enumerate(zip(shards, fleet))
            ]
        )
        assert virtual.num_clients == eager.num_clients == 4
        assert virtual.sample_counts() == eager.sample_counts()
        for i in range(4):
            assert virtual.device_profile(i) == eager.device_profile(i)
            a, b = virtual.materialize(i), eager.materialize(i)
            assert a.num_samples == b.num_samples
            np.testing.assert_array_equal(
                a.train_data.labels, b.train_data.labels
            )
            np.testing.assert_array_equal(
                a.dev_data.labels, b.dev_data.labels
            )
            assert (
                a.rng.bit_generator.state == b.rng.bit_generator.state
            )

    def test_release_resumes_rng_stream(self, tiny_dataset):
        train, _ = tiny_dataset
        virtual = self._directory(train)
        reference = self._directory(train).materialize(1)
        client = virtual.materialize(1)
        # Advance both RNG streams past construction, then drop one.
        expected = reference.rng.uniform(size=5)
        drawn = client.rng.uniform(size=5)
        np.testing.assert_array_equal(drawn, expected)
        virtual.release(1)
        assert virtual.live_count == 0
        resumed = virtual.materialize(1)
        assert resumed is not client  # genuinely rebuilt
        np.testing.assert_array_equal(
            resumed.rng.uniform(size=5), reference.rng.uniform(size=5)
        )

    def test_materialize_is_cached_until_release(self, tiny_dataset):
        train, _ = tiny_dataset
        virtual = self._directory(train)
        assert virtual.live_count == 0
        client = virtual.materialize(2)
        assert virtual.materialize(2) is client
        assert virtual.live_count == 1

    def test_metadata_needs_no_materialization(self, tiny_dataset):
        train, _ = tiny_dataset
        virtual = self._directory(train)
        virtual.sample_counts()
        virtual.device_profile(3)
        assert virtual.live_count == 0

    def test_size_mismatch_rejected(self, tiny_dataset):
        train, _ = tiny_dataset
        plan = plan_partition(train, 4, 0.5, np.random.default_rng(0))
        with pytest.raises(ValueError, match="fleet"):
            VirtualClientDirectory(
                train, plan, FleetPlan("uniform", 5, seed=0)
            )


# ----------------------------------------------------------------------
# Hierarchical aggregation
# ----------------------------------------------------------------------
def _random_states(rng, n, shapes=((4, 3), (5,), (2, 2, 2))):
    states = []
    for _ in range(n):
        states.append(
            {
                f"t{j}": rng.normal(size=shape).astype(np.float32)
                for j, shape in enumerate(shapes)
            }
        )
    return states


class TestHierarchicalAggregator:
    @pytest.mark.parametrize("fan_in", [None, 1, 7, 100])
    def test_degenerate_fan_ins_match_flat(self, rng, fan_in):
        # fan_in=None/>=n (single shard) and fan_in=1 (singleton shards)
        # are bitwise identical to the flat fold; 7 covers the uneven
        # tail shard (7 uploads into shards of 7 == single shard).
        states = _random_states(rng, 7)
        counts = [3, 9, 1, 4, 2, 8, 5]
        flat = weighted_average_states(states, counts)
        if fan_in is not None and 1 < fan_in < len(states):
            pytest.skip("intermediate fan-ins covered separately")
        agg = HierarchicalAggregator(counts, fan_in=fan_in)
        for state in states:
            agg.add_state(state)
        tree = agg.finish()
        for name in flat:
            np.testing.assert_array_equal(tree[name], flat[name])

    def test_intermediate_fan_in_matches_composition(self, rng):
        states = _random_states(rng, 7)
        counts = [3, 9, 1, 4, 2, 8, 5]
        fan_in = 3
        agg = HierarchicalAggregator(counts, fan_in=fan_in)
        for state in states:
            agg.add_state(state)
        tree = agg.finish()
        # The semantic contract: shard means (flat recipe per shard),
        # then a flat weighted mean of the means at shard totals.
        shard_means, shard_totals = [], []
        for start in range(0, len(states), fan_in):
            chunk = slice(start, start + fan_in)
            shard_means.append(
                weighted_average_states(states[chunk], counts[chunk])
            )
            shard_totals.append(sum(counts[chunk]))
        composed = weighted_average_states(shard_means, shard_totals)
        flat = weighted_average_states(states, counts)
        for name in flat:
            np.testing.assert_array_equal(tree[name], composed[name])
            # And the tree result is numerically (not bitwise) the
            # same average — IEEE addition is not associative.
            np.testing.assert_allclose(
                tree[name], flat[name], rtol=1e-5, atol=1e-6
            )

    @pytest.mark.parametrize("fan_in", [None, 1, 2])
    def test_packed_mode_matches_flat_packed(self, rng, fan_in):
        shapes = {"w": (6, 4), "b": (8,)}
        w_mask = rng.random(shapes["w"]) < 0.5
        masks = MaskSet({"w": w_mask})
        states, counts = [], [5, 2, 9, 4]
        for _ in counts:
            state = {
                name: rng.normal(size=shape).astype(np.float32)
                for name, shape in shapes.items()
            }
            state["w"] = np.where(w_mask, state["w"], np.float32(0.0))
            states.append(state)
        payloads = [pack_state(state, masks) for state in states]
        flat = aggregate_packed_states(payloads, counts)
        agg = HierarchicalAggregator(counts, fan_in=fan_in)
        for payload in payloads:
            agg.add_payload(payload)
        tree = agg.finish()
        assert set(tree) == set(flat)
        for name in flat:
            if fan_in == 2:
                np.testing.assert_allclose(
                    tree[name], flat[name], rtol=1e-5, atol=1e-6
                )
            else:
                np.testing.assert_array_equal(tree[name], flat[name])

    def test_upload_count_is_enforced(self, rng):
        states = _random_states(rng, 3)
        agg = HierarchicalAggregator([1, 1, 1])
        agg.add_state(states[0])
        with pytest.raises(ValueError, match="only 1 arrived"):
            agg.finish()
        agg.add_state(states[1])
        agg.add_state(states[2])
        agg.finish()
        with pytest.raises(ValueError, match="got more"):
            agg.add_state(states[0])

    def test_modes_cannot_mix(self, rng):
        states = _random_states(rng, 2, shapes=((3,),))
        masks = MaskSet({})
        payload = pack_state(states[0], masks)
        agg = HierarchicalAggregator([1, 1])
        agg.add_state(states[0])
        with pytest.raises(ValueError, match="dense"):
            agg.add_payload(payload)

    def test_mismatched_keys_rejected(self, rng):
        agg = HierarchicalAggregator([1, 1])
        agg.add_state({"a": np.zeros(2, dtype=np.float32)})
        with pytest.raises(ValueError, match="keys"):
            agg.add_state({"b": np.zeros(2, dtype=np.float32)})

    def test_count_validation(self):
        with pytest.raises(ValueError):
            HierarchicalAggregator([])
        with pytest.raises(ValueError):
            HierarchicalAggregator([4, 0])
        with pytest.raises(ValueError):
            HierarchicalAggregator([1, 2], fan_in=0)


# ----------------------------------------------------------------------
# End-to-end backend equivalence
# ----------------------------------------------------------------------
def _make_ctx(
    train,
    test,
    backend,
    *,
    num_clients=6,
    frac=1.0,
    policy="sync",
    fan_in=None,
    min_partition_samples=2,
    executor="serial",
):
    config = FLConfig(
        num_clients=num_clients,
        rounds=2,
        local_epochs=1,
        batch_size=16,
        lr=0.05,
        participation_fraction=frac,
        fleet="heterogeneous:4",
        round_policy=policy,
        client_backend=backend,
        aggregation_fan_in=fan_in,
        min_partition_samples=min_partition_samples,
        executor=executor,
        seed=0,
    )
    model = build_model(
        "small_cnn", num_classes=4, image_size=8,
        width_multiplier=0.25, seed=1,
    )
    return FederatedContext(
        model, train, test, config,
        dataset_name="synthetic", model_name="small_cnn",
    )


class TestBackendEquivalence:
    @pytest.mark.parametrize(
        "policy", ["sync", "deadline", "dropout", "async"]
    )
    def test_virtual_bitwise_equals_materialized(
        self, tiny_dataset, policy
    ):
        train, test = tiny_dataset
        a = _make_ctx(train, test, "materialized",
                      policy=policy, frac=0.6)
        b = _make_ctx(train, test, "virtual", policy=policy, frac=0.6)
        try:
            for _ in range(2):
                a.run_fedavg_round()
                b.run_fedavg_round()
                assert a.last_round_info == b.last_round_info
            sa, sb = get_state(a.model), get_state(b.model)
            assert set(sa) == set(sb)
            for name in sa:
                np.testing.assert_array_equal(sa[name], sb[name])
            assert a.sim_time == b.sim_time
            assert a.comm.upload_bytes == b.comm.upload_bytes
            assert a.comm.download_bytes == b.comm.download_bytes
        finally:
            a.close()
            b.close()

    def test_streaming_round_bitwise_equals_fedavg(self, tiny_dataset):
        train, test = tiny_dataset
        a = _make_ctx(train, test, "materialized")
        b = _make_ctx(train, test, "virtual")
        try:
            a.run_fedavg_round()
            info = b.run_streaming_sync_round()
            sa, sb = get_state(a.model), get_state(b.model)
            for name in sa:
                np.testing.assert_array_equal(sa[name], sb[name])
            assert info.elapsed_seconds == (
                a.last_round_info.elapsed_seconds
            )
            assert info.selected_ids == a.last_round_info.selected_ids
            assert a.comm.upload_bytes == b.comm.upload_bytes
            assert a.comm.download_bytes == b.comm.download_bytes
            assert a.sim_time == b.sim_time
        finally:
            a.close()
            b.close()

    def test_streaming_keeps_at_most_one_client_live(self, tiny_dataset):
        train, test = tiny_dataset
        ctx = _make_ctx(train, test, "virtual")
        try:
            ctx.run_streaming_sync_round()
            assert ctx.directory.live_count == 0
        finally:
            ctx.close()

    def test_server_fan_in_routing_stays_flat_equivalent(
        self, tiny_dataset
    ):
        train, test = tiny_dataset
        a = _make_ctx(train, test, "materialized")
        b = _make_ctx(train, test, "virtual", fan_in=1)
        try:
            a.run_fedavg_round()
            b.run_fedavg_round()
            sa, sb = get_state(a.model), get_state(b.model)
            for name in sa:
                np.testing.assert_array_equal(sa[name], sb[name])
        finally:
            a.close()
            b.close()

    def test_virtual_backend_valid_under_worker_executors(self):
        # The serial-only gate is gone: worker backends ship the pickled
        # directory recipe and materialize cohort clients worker-side.
        for executor in ("process", "network"):
            config = FLConfig(
                num_clients=4, rounds=1,
                client_backend="virtual", executor=executor,
            )
            assert config.executor == executor

    def test_backend_name_validated(self):
        with pytest.raises(ValueError, match="backend"):
            FLConfig(num_clients=4, rounds=1, client_backend="eager")

    def test_shard_size_requires_virtual_backend(self):
        with pytest.raises(ValueError, match="virtual"):
            FLConfig(num_clients=4, rounds=1, virtual_shard_size=8)

    def test_virtual_shard_backend_scales_population(self, tiny_dataset):
        # Population larger than the dataset: only representable with
        # per-ID virtual shards. One round must touch only the cohort.
        train, test = tiny_dataset
        config = FLConfig(
            num_clients=10_000,
            rounds=1,
            local_epochs=1,
            batch_size=8,
            lr=0.05,
            participation_fraction=4 / 10_000,
            fleet="heterogeneous:4",
            client_backend="virtual",
            virtual_shard_size=8,
            seed=0,
        )
        model = build_model(
            "small_cnn", num_classes=4, image_size=8,
            width_multiplier=0.25, seed=1,
        )
        ctx = FederatedContext(
            model, train, test, config,
            dataset_name="synthetic", model_name="small_cnn",
        )
        try:
            assert ctx.directory.num_clients == 10_000
            info = ctx.run_streaming_sync_round()
            assert len(info.selected_ids) == 4
            assert ctx.directory.live_count == 0
        finally:
            ctx.close()
