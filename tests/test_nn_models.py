"""Tests for the model zoo."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss
from repro.nn.models import (
    SmallCNN,
    available_models,
    build_model,
    small_cnn_matching_params,
)


class TestResNet18:
    def test_forward_shape(self, tiny_resnet, rng):
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        assert tiny_resnet(x).shape == (2, 10)

    def test_size_agnostic(self, tiny_resnet, rng):
        x = rng.normal(size=(1, 3, 32, 32)).astype(np.float32)
        assert tiny_resnet(x).shape == (1, 10)

    def test_full_width_param_count(self):
        model = build_model("resnet18", num_classes=10)
        # CIFAR ResNet-18 is ~11.17M parameters.
        assert 11_000_000 < model.num_parameters() < 11_300_000

    def test_width_multiplier_scales_params(self):
        full = build_model("resnet18", seed=0).num_parameters()
        half = build_model("resnet18", width_multiplier=0.5,
                           seed=0).num_parameters()
        assert 0.2 < half / full < 0.3  # ~quadratic in width

    def test_backward_produces_all_gradients(self, tiny_resnet, rng):
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        loss_fn = CrossEntropyLoss()
        loss_fn(tiny_resnet(x), np.array([1, 2]))
        tiny_resnet.zero_grad()
        tiny_resnet.backward(loss_fn.backward())
        grads = [
            float(np.abs(p.grad).sum()) for p in tiny_resnet.parameters()
        ]
        assert all(g > 0.0 for g in grads)

    def test_training_reduces_loss(self, tiny_resnet, rng):
        from repro.nn import SGD

        x = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 10, size=8)
        loss_fn = CrossEntropyLoss()
        opt = SGD(tiny_resnet, lr=0.05, momentum=0.9)
        first = None
        for _ in range(6):
            loss = loss_fn(tiny_resnet(x), y)
            if first is None:
                first = loss
            tiny_resnet.zero_grad()
            tiny_resnet.backward(loss_fn.backward())
            opt.step()
        assert loss < first

    def test_deterministic_build(self):
        a = build_model("resnet18", width_multiplier=0.125, seed=42)
        b = build_model("resnet18", width_multiplier=0.125, seed=42)
        for (_, p1), (_, p2) in zip(
            a.named_parameters(), b.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data)


class TestVGG11:
    def test_forward_shape(self, tiny_vgg, rng):
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        assert tiny_vgg(x).shape == (2, 10)

    def test_backward(self, tiny_vgg, rng):
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        out = tiny_vgg(x)
        tiny_vgg.zero_grad()
        grad = tiny_vgg.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_small_image_skips_pools(self, rng):
        model = build_model(
            "vgg11", width_multiplier=0.125, image_size=8,
            classifier_hidden=(), seed=0,
        )
        x = rng.normal(size=(1, 3, 8, 8)).astype(np.float32)
        assert model(x).shape == (1, 10)

    def test_vgg_larger_than_resnet_full_width(self):
        vgg = build_model("vgg11", image_size=32)
        resnet = build_model("resnet18")
        assert vgg.num_parameters() > resnet.num_parameters()

    def test_classifier_hidden_configurable(self):
        compact = build_model(
            "vgg11", image_size=32, width_multiplier=0.25,
            classifier_hidden=(),
        )
        wide = build_model(
            "vgg11", image_size=32, width_multiplier=0.25,
            classifier_hidden=(4096, 4096),
        )
        assert wide.num_parameters() > compact.num_parameters()


class TestSmallCNN:
    def test_forward_backward(self, rng):
        model = SmallCNN(num_classes=5, base_width=4)
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        out = model(x)
        assert out.shape == (2, 5)
        model.backward(np.ones_like(out))

    def test_matching_params_under_budget(self):
        target = 30_000
        model = small_cnn_matching_params(target)
        assert model.num_parameters() <= target

    def test_matching_params_monotone(self):
        small = small_cnn_matching_params(10_000).num_parameters()
        large = small_cnn_matching_params(100_000).num_parameters()
        assert large > small

    def test_matching_params_tiny_budget(self):
        model = small_cnn_matching_params(1)
        assert model.base_width == 1

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            SmallCNN(base_width=0)


class TestRegistry:
    def test_available_models(self):
        names = available_models()
        assert {"resnet18", "vgg11", "small_cnn"} <= set(names)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_register_duplicate_raises(self):
        from repro.nn.models import register_model

        with pytest.raises(ValueError):
            register_model("resnet18", lambda **kw: None)
