"""Tests for the pluggable method registry and FederatedMethod API."""

import pytest

from repro.experiments import get_scale, run_experiment
from repro.methods import (
    FederatedMethod,
    build_method,
    get_method_spec,
    method_names,
    method_summaries,
    register_method,
    unregister_method,
)
from repro.methods import registry as registry_module


class TestRegistry:
    def test_all_twelve_builtins_registered(self):
        names = method_names()
        assert len(names) >= 12
        for expected in (
            "fedavg", "fl-pqsu", "snip", "synflow", "prunefl", "feddst",
            "lotteryfl", "fedtiny", "small_model", "vanilla",
            "adaptive_bn_only", "vanilla+progressive",
        ):
            assert expected in names

    @pytest.mark.parametrize("name", [
        "fedavg", "fl-pqsu", "snip", "synflow", "prunefl", "feddst",
        "lotteryfl", "fedtiny", "small_model", "vanilla",
        "adaptive_bn_only", "vanilla+progressive",
    ])
    def test_every_builtin_builds_a_federated_method(self, name):
        method = build_method(name, 0.1, get_scale("tiny"))
        assert isinstance(method, FederatedMethod)
        assert hasattr(method, "run")

    def test_summaries_are_one_liners(self):
        summaries = method_summaries()
        for name in method_names():
            assert summaries[name].strip()
            assert "\n" not in summaries[name]

    def test_unknown_method_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_method("dropout", 0.1, get_scale("tiny"))
        with pytest.raises(KeyError):
            get_method_spec("dropout")

    def test_lookup_is_case_insensitive(self):
        assert get_method_spec("FedTiny").name == "fedtiny"

    def test_metadata_flags(self):
        assert get_method_spec("small_model").replaces_model
        assert get_method_spec("prunefl").dense_memory
        assert get_method_spec("prunefl").needs_schedule
        assert not get_method_spec("fedavg").needs_schedule
        assert not get_method_spec("fedtiny").replaces_model

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_method(
                "fedtiny", summary="dup", builder=lambda *a, **k: None
            )

    def test_downstream_registration_roundtrip(self):
        name = "unit-test-custom-method"

        class _Probe(FederatedMethod):
            method_name = name

        try:
            @register_method(name, summary="probe method for the test")
            def _build(target_density, scale, schedule=None, pool_size=None):
                return _Probe()

            assert name in method_names()
            # The long-standing public alias reflects late registrations.
            import repro.experiments

            assert name in repro.experiments.METHOD_NAMES
            built = build_method(name, 0.5, get_scale("tiny"))
            assert isinstance(built, _Probe)
        finally:
            unregister_method(name)
        assert name not in method_names()


class TestLifecycleRuns:
    @pytest.mark.parametrize("name", [
        "fedavg", "fl-pqsu", "snip", "synflow", "prunefl", "feddst",
        "lotteryfl", "fedtiny", "small_model", "vanilla",
        "adaptive_bn_only", "vanilla+progressive",
    ])
    def test_two_round_tiny_run_completes(self, name):
        result = run_experiment(
            name, "resnet18", "cifar10", 0.1,
            scale="tiny", seed=0, rounds=2, pool_size=2,
        )
        assert result.method == name
        assert len(result.rounds) == 2
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.memory_footprint_bytes > 0

    def test_registry_loads_builtins_lazily_once(self):
        # Calling twice must not re-import the catalog (which would hit
        # the duplicate-registration guard).
        registry_module._ensure_builtins()
        registry_module._ensure_builtins()
        assert len(method_names()) >= 12
