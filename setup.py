from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: repro.analysis is fully annotated (mypy --strict in CI);
    # the marker lets downstream type-checkers consume its annotations.
    package_data={"repro.analysis": ["py.typed"]},
)
