"""Report rendering: the human console format and the JSON schema.

The JSON document (``schema: repro-lint/v1``) is a stable contract for
CI artifact consumers: new fields may be added, existing fields keep
their meaning and types.
"""

from __future__ import annotations

import json

from .linter import LintResult
from .registry import rule_summaries

__all__ = ["render_human", "render_json", "JSON_SCHEMA_ID"]

JSON_SCHEMA_ID = "repro-lint/v1"


def render_human(result: LintResult) -> str:
    """One line per finding plus a summary tail."""
    lines = [diagnostic.render() for diagnostic in result.diagnostics]
    lines.extend(f"error: {message}" for message in result.errors)
    total = len(result.diagnostics)
    summary = (
        f"{result.files_checked} file"
        f"{'' if result.files_checked == 1 else 's'} checked, "
        f"{total} finding{'' if total == 1 else 's'}"
    )
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed"
    if result.errors:
        summary += f", {len(result.errors)} errors"
    by_rule = result.counts_by_rule()
    if by_rule:
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        summary += f" ({breakdown})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-readable report (see :data:`JSON_SCHEMA_ID`)."""
    document = {
        "schema": JSON_SCHEMA_ID,
        "rules": {
            rule_id: summary
            for rule_id, summary in rule_summaries().items()
            if rule_id in result.rules_run
        },
        "diagnostics": [
            diagnostic.to_dict() for diagnostic in result.diagnostics
        ],
        "suppressed": [
            diagnostic.to_dict() for diagnostic in result.suppressed
        ],
        "errors": list(result.errors),
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.diagnostics),
            "suppressed": len(result.suppressed),
            "errors": len(result.errors),
            "by_rule": result.counts_by_rule(),
            "exit_code": result.exit_code,
        },
    }
    return json.dumps(document, indent=2, sort_keys=False)
