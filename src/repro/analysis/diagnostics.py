"""The diagnostic record every rule emits.

A :class:`Diagnostic` is one finding anchored to a file and line. The
tuple it serializes to is the analyzer's stable wire format: the JSON
report (``repro lint --format json``) emits exactly these fields, and CI
consumers key on ``rule`` + ``path`` + ``line``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic", "SUPPRESSION_RULE_ID"]

#: Pseudo-rule id for malformed suppression comments. Always active
#: (it guards the suppression mechanism itself) and never suppressible.
SUPPRESSION_RULE_ID = "suppression"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        """The stable JSON form of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: [rule] message`` — the human report line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.rule}] {self.message}"
        )
