"""Static invariant analysis for the repro codebase (``repro lint``).

The reproduction's guarantees — bit-identical golden runs, coherent
``Parameter`` version caches, leak-free shared-memory arenas — are
contracts between modules that no unit test can enforce globally: a new
code path that seeds an RNG from entropy or forgets ``bump_version()``
after an in-place edit is silently wrong until a golden test happens to
cross it. This package makes those contracts machine-checked: a small
stdlib-``ast`` analyzer with a pluggable rule registry (mirroring
:mod:`repro.methods`), per-line suppressions that require a written
justification, and stable exit codes for CI.

Usage::

    repro lint src/                       # human-readable report
    repro lint src/ --format json         # machine-readable report
    repro lint src/repro/fl --rule shm-lifecycle
    python -c "from repro.analysis import run_lint; print(run_lint(['src']))"

Suppressing a finding (the reason is mandatory)::

    for name in set(names):  # repro-lint: allow[determinism] -- sorted upstream
        ...

Exit codes are part of the contract: ``0`` clean, ``1`` unsuppressed
diagnostics, ``2`` usage or analysis errors (unreadable path, syntax
error, unknown rule).
"""

from __future__ import annotations

from .diagnostics import Diagnostic
from .linter import LintResult, run_lint
from .registry import (
    Rule,
    build_rules,
    get_rule_class,
    register_rule,
    rule_ids,
    rule_summaries,
)
from .report import JSON_SCHEMA_ID, render_human, render_json
from .sources import SourceModule
from .suppressions import Suppression, SuppressionIndex

__all__ = [
    "Diagnostic",
    "JSON_SCHEMA_ID",
    "LintResult",
    "Rule",
    "SourceModule",
    "Suppression",
    "SuppressionIndex",
    "build_rules",
    "get_rule_class",
    "register_rule",
    "render_human",
    "render_json",
    "rule_ids",
    "rule_summaries",
    "run_lint",
]
