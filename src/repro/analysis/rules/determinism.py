"""Rule ``determinism`` — no global-state or entropy-seeded RNG, no
iteration over sets.

Every random draw in the codebase flows through an explicitly seeded
``numpy.random.Generator`` that is threaded through call signatures
(see ``repro.nn.init``), so runs are bit-identical for a fixed seed
across processes and executor backends. Three patterns silently break
that:

- **module-level RNG calls** (``np.random.rand(...)``,
  ``random.shuffle(...)``): they mutate hidden global state, so results
  depend on everything else that touched the same stream;
- **entropy-seeded generators** (``np.random.default_rng()`` with no
  seed, bare ``random.Random()``): fresh OS entropy per process;
- **time/pid seeding** (``default_rng(time.time_ns())``): a seed that
  differs per run is no seed at all.

Iterating a ``set`` (literal, ``set(...)`` call, or set comprehension)
is flagged too: iteration order depends on insertion history and — for
strings — the per-process hash seed, so any ordering-sensitive consumer
(aggregation order, participant order, float accumulation) silently
diverges across processes. Wrap the set in ``sorted(...)`` or use a
dict/list.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, register_rule
from ..sources import SourceModule, resolve_dotted

__all__ = ["DeterminismRule"]

#: ``numpy.random`` attributes that *construct* explicitly-seedable
#: generator objects — allowed (with a seed argument) because they do
#: not touch numpy's hidden global stream.
_NUMPY_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Call targets whose result changes run to run; using one inside an
#: RNG-constructor argument list makes the "seed" non-reproducible.
_ENTROPY_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "os.urandom",
        "os.getpid",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.randbits",
    }
)


def _is_set_expression(node: ast.expr, aliases: dict[str, str]) -> bool:
    """Whether ``node`` evaluates to a set with unspecified order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = resolve_dotted(node.func, aliases)
        if target in {"set", "frozenset"}:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # ``a | b`` / ``a - b`` on sets; only flag when a side is
        # provably a set so plain integer arithmetic stays quiet.
        return _is_set_expression(
            node.left, aliases
        ) or _is_set_expression(node.right, aliases)
    return False


@register_rule
class DeterminismRule(Rule):
    """Flag hidden-global RNG, entropy seeding, and set iteration."""

    id = "determinism"
    summary = (
        "RNG must be an explicitly seeded Generator threaded through "
        "signatures; never iterate a set"
    )

    def check_module(self, module: SourceModule) -> Iterator[Diagnostic]:
        aliases = module.aliases
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(module, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for comp in node.generators:
                    yield from self._check_iteration(module, comp.iter)
            elif isinstance(node, ast.Starred):
                if _is_set_expression(node.value, aliases):
                    yield self.diagnostic(
                        module, node.lineno, node.col_offset,
                        "unpacking a set has nondeterministic order; "
                        "sort it first (sorted(...)).",
                    )

    def _check_call(
        self, module: SourceModule, node: ast.Call
    ) -> Iterator[Diagnostic]:
        target = resolve_dotted(node.func, module.aliases)
        if target is None:
            return
        if target.startswith("numpy.random."):
            tail = target[len("numpy.random."):]
            if tail not in _NUMPY_CONSTRUCTORS:
                yield self.diagnostic(
                    module, node.lineno, node.col_offset,
                    f"call to numpy's global RNG ({target}) breaks "
                    f"determinism; thread an explicitly seeded "
                    f"np.random.Generator through the call signature.",
                )
                return
            if tail in {"default_rng", "RandomState"} and not (
                node.args or node.keywords
            ):
                yield self.diagnostic(
                    module, node.lineno, node.col_offset,
                    f"{target}() without a seed draws OS entropy; pass "
                    f"an explicit seed.",
                )
                return
        elif target == "random.Random":
            if not (node.args or node.keywords):
                yield self.diagnostic(
                    module, node.lineno, node.col_offset,
                    "random.Random() without a seed draws OS entropy; "
                    "pass an explicit seed.",
                )
                return
        elif target.startswith("random."):
            yield self.diagnostic(
                module, node.lineno, node.col_offset,
                f"call to the stdlib global RNG ({target}) breaks "
                f"determinism; use an explicitly seeded "
                f"np.random.Generator (or random.Random(seed)).",
            )
            return
        yield from self._check_entropy_seed(module, node, target)

    def _check_entropy_seed(
        self, module: SourceModule, node: ast.Call, target: str
    ) -> Iterator[Diagnostic]:
        is_rng_ctor = (
            target.startswith("numpy.random.")
            and target[len("numpy.random."):] in _NUMPY_CONSTRUCTORS
        ) or target == "random.Random"
        if not is_rng_ctor:
            return
        seed_args: list[ast.expr] = list(node.args) + [
            kw.value for kw in node.keywords if kw.arg is not None
        ]
        for arg in seed_args:
            for sub in ast.walk(arg):
                if not isinstance(sub, ast.Call):
                    continue
                source = resolve_dotted(sub.func, module.aliases)
                if source in _ENTROPY_SOURCES:
                    yield self.diagnostic(
                        module, node.lineno, node.col_offset,
                        f"RNG seeded from {source}() differs every run; "
                        f"derive the seed from the experiment config.",
                    )

    def _check_iteration(
        self, module: SourceModule, iter_node: ast.expr
    ) -> Iterator[Diagnostic]:
        if _is_set_expression(iter_node, module.aliases):
            yield self.diagnostic(
                module, iter_node.lineno, iter_node.col_offset,
                "iterating a set has nondeterministic order (hash-seed "
                "dependent for strings); iterate sorted(...) or keep a "
                "list/dict.",
            )
