"""Rule ``engine-mode`` — evaluation paths must run under
``engine.inference_mode()``.

Outside :func:`repro.nn.engine.inference_mode`, every layer records
backward-pass state on each forward call: im2col column matrices,
max-pool argmax indices, BN ``x_hat`` tensors. An evaluation loop that
forgets the context still computes the right numbers but silently pays
the full training-memory footprint per batch *and* leaves stale caches
pinned on the shared model — the exact overhead class PR 3 removed from
the hot paths.

Heuristic: a function whose name marks it as inference-only
(``evaluate*``, ``*eval*``, ``recalibrate*``, ``*inference*``,
``*predict*``) that calls a model forward directly (``model(...)``,
``net(...)``, or an explicit ``.forward(...)``) and never calls
``.backward(...)`` must contain an ``inference_mode`` context. Pure
delegators that never touch a model themselves are exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, register_rule
from ..sources import SourceModule, node_calls_name, walk_functions

__all__ = ["EngineModeRule"]

#: Function names that promise forward-only semantics.
_EVAL_NAME_RE = re.compile(
    r"(^|_)(evaluate|eval|recalibrate|inference|predict)(_|$)|^evaluate"
)

#: Local names conventionally bound to a model in this codebase.
_MODEL_NAMES = frozenset({"model", "net"})


def _calls_model_forward(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> ast.Call | None:
    """The first direct model-forward call in ``func``, if any."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name) and target.id in _MODEL_NAMES:
            return node
        if isinstance(target, ast.Attribute):
            if target.attr == "forward":
                return node
            if target.attr in _MODEL_NAMES and isinstance(
                target.value, ast.Name
            ):
                # self.model(...) / ctx.model(...)
                return node
    return None


@register_rule
class EngineModeRule(Rule):
    """Flag evaluate-style forward loops outside inference_mode()."""

    id = "engine-mode"
    summary = (
        "evaluate/recalibrate paths that run forwards must wrap them "
        "in engine.inference_mode()"
    )

    def check_module(self, module: SourceModule) -> Iterator[Diagnostic]:
        for func, _ in walk_functions(module.tree):
            if _EVAL_NAME_RE.search(func.name) is None:
                continue
            forward_call = _calls_model_forward(func)
            if forward_call is None:
                continue  # pure delegator; the callee owns the context
            if node_calls_name(func, "backward"):
                continue  # a training/growth-signal pass, not inference
            if node_calls_name(func, "inference_mode"):
                continue
            yield self.diagnostic(
                module, forward_call.lineno, forward_call.col_offset,
                f"{func.name}() runs model forwards without "
                f"engine.inference_mode(); layers record backward "
                f"caches (im2col columns, argmax indices, BN x_hat) "
                f"that inference never consumes.",
            )
