"""Rule ``shm-lifecycle`` — every shared-memory segment must be
released on all paths.

The zero-copy round loop (PR 4) moves broadcasts through
``multiprocessing.shared_memory`` arenas. A segment that is not
``close()``-d and — by its creating owner — ``unlink()``-ed survives
the process as a leaked ``/dev/shm`` file; leaked segments accumulate
across experiment sweeps until the host runs out of shm. The codebase
contract:

- a **locally held** segment must be released on *all* exits: either a
  ``with`` block, or a ``try``/``finally`` whose finally calls
  ``close()`` (plus ``unlink()`` when created here), or the function
  transfers ownership by returning the handle;
- a segment stored on **an attribute** (long-lived arenas) must have a
  release method somewhere in the same class that calls ``close()``
  and, for created segments, ``unlink()`` on that attribute.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, register_rule
from ..sources import SourceModule, resolve_dotted, walk_functions

__all__ = ["ShmLifecycleRule"]

#: Canonical constructors that acquire a shared-memory segment.
_SHM_CONSTRUCTORS = frozenset(
    {
        "multiprocessing.shared_memory.SharedMemory",
        "multiprocessing.shared_memory.ShareableList",
    }
)


def _is_shm_call(node: ast.expr, aliases: dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = resolve_dotted(node.func, aliases)
    if target is None:
        return False
    return target in _SHM_CONSTRUCTORS or target.endswith(".SharedMemory") \
        or target == "SharedMemory"


def _creates_segment(node: ast.Call) -> bool:
    """Whether the call *creates* (vs attaches to) a segment."""
    for keyword in node.keywords:
        if keyword.arg == "create":
            return not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            )
    return False


def _attribute_key(node: ast.expr) -> str | None:
    """``"self.x"``-style key for an attribute target, else ``None``."""
    if isinstance(node, ast.Attribute) and isinstance(
        node.value, ast.Name
    ):
        return f"{node.value.id}.{node.attr}"
    return None


def _method_calls_on(node: ast.AST, key_or_name: str) -> set[str]:
    """Method names called on ``name`` or ``obj.attr`` inside ``node``."""
    calls: set[str] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if not isinstance(func, ast.Attribute):
            continue
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == key_or_name:
            calls.add(func.attr)
        else:
            attr_key = _attribute_key(receiver)
            if attr_key == key_or_name:
                calls.add(func.attr)
    return calls


def _finally_bodies(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                yield stmt


def _name_is_returned(
    func: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
    return False


@register_rule
class ShmLifecycleRule(Rule):
    """Flag shared-memory acquisitions without guaranteed release."""

    id = "shm-lifecycle"
    summary = (
        "SharedMemory segments need close()/unlink() on every exit "
        "(try/finally, with, or a class release method)"
    )

    def check_module(self, module: SourceModule) -> Iterator[Diagnostic]:
        for func, enclosing_class in walk_functions(module.tree):
            yield from self._check_function(module, func, enclosing_class)

    def _check_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        enclosing_class: ast.ClassDef | None,
    ) -> Iterator[Diagnostic]:
        # ``with SharedMemory(...)`` acquisitions release themselves and
        # never appear as Assign values, so only assignments need checks.
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_shm_call(node.value, module.aliases):
                continue
            call = node.value
            assert isinstance(call, ast.Call)
            created = _creates_segment(call)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield from self._check_local(
                        module, func, call, target.id, created
                    )
                else:
                    key = _attribute_key(target)
                    if key is not None:
                        yield from self._check_attribute(
                            module, func, enclosing_class, call,
                            target.attr, key, created,
                        )

    def _check_local(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        call: ast.Call,
        name: str,
        created: bool,
    ) -> Iterator[Diagnostic]:
        if _name_is_returned(func, name):
            return  # ownership transferred to the caller
        finally_calls: set[str] = set()
        for stmt in _finally_bodies(func):
            finally_calls |= _method_calls_on(stmt, name)
        required = {"close", "unlink"} if created else {"close"}
        if required <= finally_calls:
            return
        anywhere = _method_calls_on(func, name)
        if required <= anywhere:
            yield self.diagnostic(
                module, call.lineno, call.col_offset,
                f"segment {name!r} is released, but not in a finally "
                f"block — an exception between acquisition and release "
                f"leaks the mapping; wrap in try/finally or a with "
                f"block.",
            )
            return
        missing = ", ".join(f"{m}()" for m in sorted(required - anywhere))
        yield self.diagnostic(
            module, call.lineno, call.col_offset,
            f"shared-memory segment {name!r} is never released on this "
            f"path (missing {missing}); leaked segments persist in "
            f"/dev/shm after the process dies.",
        )

    def _check_attribute(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        enclosing_class: ast.ClassDef | None,
        call: ast.Call,
        attr: str,
        key: str,
        created: bool,
    ) -> Iterator[Diagnostic]:
        scope: ast.AST | None = enclosing_class
        if scope is None:
            scope = func  # module-level helper holding state on an object
        calls = _method_calls_on(scope, key)
        required = {"close", "unlink"} if created else {"close"}
        missing = required - calls
        if not missing:
            return
        owner = (
            f"class {enclosing_class.name}"
            if enclosing_class is not None
            else f"function {func.name}"
        )
        yield self.diagnostic(
            module, call.lineno, call.col_offset,
            f"segment stored on {key!r} has no "
            f"{'/'.join(sorted(missing))}() call anywhere in {owner}; "
            f"long-lived arenas need a release method that closes "
            f"{'and unlinks ' if created else ''}the mapping.",
        )
