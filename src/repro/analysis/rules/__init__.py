"""Built-in rule catalog (importing this package registers every rule).

One module per invariant; see each module's docstring for the contract
it enforces and the repro subsystem that contract comes from.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    cache_coherence,
    determinism,
    engine_mode,
    float_accumulation,
    registry_completeness,
    shm_lifecycle,
    silent_except,
)

__all__ = [
    "cache_coherence",
    "determinism",
    "engine_mode",
    "float_accumulation",
    "registry_completeness",
    "shm_lifecycle",
    "silent_except",
]
