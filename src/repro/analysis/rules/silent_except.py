"""Rule ``silent-except`` — exception handlers must not swallow errors.

The fault-tolerance layer (PR 8) turned "what happens when this
fails?" into a first-class contract: every failure in the round loop is
either retried, quarantined with a :class:`~repro.fl.faults.FailureRecord`,
or propagated. A bare ``except ...: pass`` (or a handler that only
assigns a fallback) breaks that contract silently — the failure
happened, nothing recorded it, and the next reader has no idea the code
path even exists.

A handler is compliant when its body does at least one of:

- **re-raise** — a ``raise`` statement anywhere in the handler;
- **log** — a call to a logger method (``debug``/``info``/``warning``/
  ``error``/``exception``/``critical``/``log``), ``warnings.warn``, or
  ``print`` (the CLI's reporting surface);
- **record** — constructing a ``FailureRecord`` or calling a
  ``record_failure``/``quarantine`` method;
- **return a sentinel with an annotation** is *not* enough — silent
  fallbacks are exactly the pattern this rule exists to flag; suppress
  with ``# repro-lint: allow[silent-except] -- reason`` when the
  swallow is genuinely intended (e.g. best-effort cleanup).

``except`` clauses whose *type* is a control-flow exception the code
legitimately converts to data flow (``StopIteration``, ``KeyError`` in
a lookup-with-default, ...) still need one of the three signals — the
rule judges the handler body, not the exception type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, register_rule
from ..sources import SourceModule

__all__ = ["SilentExceptRule"]

#: Call names that count as "the failure was surfaced somewhere".
_LOGGER_METHODS = frozenset({
    "debug", "info", "warning", "error", "exception", "critical", "log",
})
_REPORTING_CALLS = frozenset({"warn", "print"})
_RECORDING_NAMES = frozenset({
    "FailureRecord", "record_failure", "quarantine",
})


def _call_name(node: ast.Call) -> str | None:
    """The terminal name of a call target (``x.y.z(...)`` -> ``z``)."""
    target = node.func
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


#: Substrings of a collection name that make ``X.append(...)`` count
#: as recording the failure (``result.errors.append(...)``).
_FAILURE_COLLECTIONS = ("error", "failure", "record")


def _appends_to_failure_collection(node: ast.Call) -> bool:
    """``X.append(...)`` where X names an error/failure collection."""
    target = node.func
    if not (
        isinstance(target, ast.Attribute) and target.attr == "append"
    ):
        return False
    collection = ast.unparse(target.value).lower()
    return any(word in collection for word in _FAILURE_COLLECTIONS)


def _handler_surfaces_failure(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises, logs, or records the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is None:
                continue
            if (
                name in _LOGGER_METHODS
                or name in _REPORTING_CALLS
                or name in _RECORDING_NAMES
            ):
                return True
            if _appends_to_failure_collection(node):
                return True
    return False


def _handled_types(handler: ast.ExceptHandler) -> list[str]:
    """Dotted names of the exception types a handler catches."""
    node = handler.type
    if node is None:
        return ["BaseException"]
    parts: list[ast.expr] = (
        list(node.elts) if isinstance(node, ast.Tuple) else [node]
    )
    return [ast.unparse(part) for part in parts]


@register_rule
class SilentExceptRule(Rule):
    """Flag exception handlers that swallow errors without a trace."""

    id = "silent-except"
    summary = (
        "exception handlers must re-raise, log, or record a "
        "FailureRecord — silent swallows hide failure paths"
    )

    def check_module(self, module: SourceModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _handler_surfaces_failure(node):
                continue
            caught = ", ".join(_handled_types(node))
            yield self.diagnostic(
                module, node.lineno, node.col_offset,
                f"handler for {caught} swallows the failure: add a "
                f"raise, a logging call, or a FailureRecord (or "
                f"suppress with a reasoned "
                f"'repro-lint: allow[silent-except]' if the swallow "
                f"is intended).",
            )
