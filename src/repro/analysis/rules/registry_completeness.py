"""Rule ``registry-completeness`` — every concrete plugin subclass must
be registered, and registered names must be unique.

The PR-1 refactor routed all dispatch through decorator registries:
federated methods (``@register_method`` builders), client executors
(``register_executor``), and round policies (``register_policy``). A
concrete subclass that never reaches its registry is dead code the CLI
cannot select — the classic drift mode when a method variant is copied
and the registration line is forgotten. Two names registered for the
same registry across different files only collide at import time of the
*second* module, which lazy loading can defer past CI.

This is a whole-project pass: class hierarchies and registration sites
are resolved across every analyzed file. A class counts as registered
when it is (a) passed directly to a ``register_*`` call, (b) decorated
with one, or (c) instantiated inside a function decorated with
``@register_method`` — or inside any helper function such a builder
reaches through plain-name calls (the catalog-builder idiom). Abstract
classes (any ``@abstractmethod`` of their own) and private bases
(``_Underscore`` names) are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..diagnostics import Diagnostic
from ..registry import Rule, register_rule
from ..sources import SourceModule

__all__ = ["RegistryCompletenessRule"]

#: Plugin base class -> the registration function family that must
#: eventually reference each concrete subclass.
_TRACKED_BASES = {
    "FederatedMethod": "register_method",
    "ClientExecutor": "register_executor",
    "RoundPolicy": "register_policy",
}

_REGISTER_FUNCS = frozenset(_TRACKED_BASES.values())


@dataclass
class _ClassInfo:
    name: str
    bases: tuple[str, ...]
    module: SourceModule
    lineno: int
    col: int
    is_abstract: bool


def _base_names(node: ast.ClassDef) -> tuple[str, ...]:
    names: list[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _is_abstract(node: ast.ClassDef) -> bool:
    """Whether the class itself declares abstract methods."""
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                name = (
                    decorator.attr
                    if isinstance(decorator, ast.Attribute)
                    else decorator.id
                    if isinstance(decorator, ast.Name)
                    else None
                )
                if name in {"abstractmethod", "abstractproperty"}:
                    return True
    return False


def _call_register_func(node: ast.Call) -> str | None:
    """The ``register_*`` family name if ``node`` calls one."""
    func = node.func
    if isinstance(func, ast.Call):
        # Decorator factory form: register_method("name", ...)(builder).
        return _call_register_func(func)
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id
        if isinstance(func, ast.Name)
        else None
    )
    if name in _REGISTER_FUNCS:
        return name
    return None


def _registered_name_literal(node: ast.Call) -> tuple[str, int, int] | None:
    """The literal name argument of a registration call, with location."""
    candidates: list[ast.expr] = list(node.args[:1]) + [
        kw.value for kw in node.keywords if kw.arg == "name"
    ]
    for arg in candidates:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value.lower(), arg.lineno, arg.col_offset
    return None


def _decorated_with_register(
    node: ast.ClassDef | ast.FunctionDef | ast.AsyncFunctionDef,
) -> str | None:
    for decorator in node.decorator_list:
        target: ast.expr = decorator
        if isinstance(target, ast.Call):
            target = target.func
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else target.id
            if isinstance(target, ast.Name)
            else None
        )
        if name in _REGISTER_FUNCS:
            return name
    return None


@register_rule
class RegistryCompletenessRule(Rule):
    """Cross-file registry audit for methods, executors, and policies."""

    id = "registry-completeness"
    summary = (
        "concrete FederatedMethod/ClientExecutor/RoundPolicy subclasses "
        "must be registered, with unique names per registry"
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Diagnostic]:
        classes: dict[str, _ClassInfo] = {}
        referenced: set[str] = set()
        functions: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]]
        functions = {}
        builder_roots: list[str] = []
        names_seen: dict[tuple[str, str], tuple[SourceModule, int]] = {}
        duplicates: list[Diagnostic] = []

        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = _ClassInfo(
                        name=node.name,
                        bases=_base_names(node),
                        module=module,
                        lineno=node.lineno,
                        col=node.col_offset,
                        is_abstract=_is_abstract(node),
                    )
                    if _decorated_with_register(node) is not None:
                        referenced.add(node.name)
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    functions.setdefault(node.name, []).append(node)
                    if _decorated_with_register(node) is not None:
                        builder_roots.append(node.name)
                elif isinstance(node, ast.Call):
                    family = _call_register_func(node)
                    if family is None:
                        continue
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        if isinstance(arg, ast.Name):
                            referenced.add(arg.id)
                    literal = _registered_name_literal(node)
                    if literal is not None:
                        name, lineno, col = literal
                        key = (family, name)
                        previous = names_seen.get(key)
                        if previous is not None:
                            prev_module, prev_line = previous
                            duplicates.append(
                                self.diagnostic(
                                    module, lineno, col,
                                    f"name {name!r} is registered twice "
                                    f"for {family} (first at "
                                    f"{prev_module.display_path}:"
                                    f"{prev_line}); the second import "
                                    f"will raise at runtime.",
                                )
                            )
                        else:
                            names_seen[key] = (module, lineno)

        # Builder idiom: every plain-name call reachable from a
        # registered builder — transitively through helper functions —
        # marks its target (class instantiation or helper) as reachable
        # through the registry.
        frontier = list(builder_roots)
        visited: set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in visited:
                continue
            visited.add(name)
            for func_node in functions.get(name, ()):
                for sub in ast.walk(func_node):
                    if isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Name
                    ):
                        called = sub.func.id
                        referenced.add(called)
                        if called in functions:
                            frontier.append(called)

        yield from duplicates

        for info in classes.values():
            registry = self._tracked_registry(info, classes)
            if registry is None:
                continue
            if info.name in _TRACKED_BASES:
                continue  # the plugin base itself
            if info.is_abstract or info.name.startswith("_"):
                continue  # abstract/private intermediate bases
            if info.name in referenced:
                continue
            yield self.diagnostic(
                info.module, info.lineno, info.col,
                f"concrete {registry.replace('register_', '')} subclass "
                f"{info.name} is never registered "
                f"({registry}(...) or an @{registry} builder); it is "
                f"unreachable from the CLI and the runner.",
            )

    @staticmethod
    def _tracked_registry(
        info: _ClassInfo, classes: dict[str, _ClassInfo]
    ) -> str | None:
        """The registration family ``info`` belongs to, via base names."""
        seen: set[str] = set()
        frontier = list(info.bases)
        while frontier:
            base = frontier.pop()
            if base in seen:
                continue
            seen.add(base)
            if base in _TRACKED_BASES:
                return _TRACKED_BASES[base]
            parent = classes.get(base)
            if parent is not None:
                frontier.extend(parent.bases)
        return None
