"""Rule ``float-accumulation`` — no ad-hoc summation inside
golden-guarded modules.

The golden-run guarantee (bit-identical results across executors,
policies, and perf arcs) holds because the guarded modules fix one
accumulation recipe: float64 products, one accumulation order, a single
final float32 rounding. Swapping a hand-written loop for ``sum(...)``,
``np.sum(...)``, or ``math.fsum(...)`` looks like a harmless cleanup
but changes association (pairwise summation in numpy, exact rounding in
fsum) and silently breaks byte-identity with every checked-in golden
baseline.

Guarded modules are the known float-critical set
(``fl/aggregation.py``, ``fl/payload.py``, ``core/selection_engine.py``)
plus any file carrying a ``# repro-lint: golden-guarded`` marker.
Integer or otherwise order-independent sums inside them are fine — but
must say so with a suppression, so the next reader knows the
reassociation question was asked and answered.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, register_rule
from ..sources import SourceModule, resolve_dotted

__all__ = ["FloatAccumulationRule"]

#: Posix path suffixes of the always-guarded modules.
_GUARDED_SUFFIXES = (
    "fl/aggregation.py",
    "fl/payload.py",
    "core/selection_engine.py",
)

#: Marker a module can carry to opt into the guarded set.
_GUARD_MARKER = "golden-guarded"

#: Call targets that reassociate (or re-round) float accumulation.
_SUM_TARGETS = frozenset({"sum", "numpy.sum", "math.fsum"})


def _is_guarded(module: SourceModule) -> bool:
    path = module.display_path.replace("\\", "/")
    if path.endswith(_GUARDED_SUFFIXES):
        return True
    return module.is_marked(_GUARD_MARKER)


@register_rule
class FloatAccumulationRule(Rule):
    """Flag sum()/np.sum/math.fsum inside golden-guarded modules."""

    id = "float-accumulation"
    summary = (
        "golden-guarded modules must keep their explicit accumulation "
        "recipe; no bare sum()/np.sum/math.fsum"
    )

    def check_module(self, module: SourceModule) -> Iterator[Diagnostic]:
        if not _is_guarded(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_dotted(node.func, module.aliases)
            if target not in _SUM_TARGETS:
                continue
            yield self.diagnostic(
                module, node.lineno, node.col_offset,
                f"{target}(...) inside a golden-guarded module may "
                f"reassociate float accumulation and break bit-identity "
                f"with the golden baselines; keep the module's explicit "
                f"accumulation recipe, or suppress with a written "
                f"order-independence argument.",
            )
