"""Rule ``cache-coherence`` — in-place ``Parameter`` edits must bump
the version counter.

``repro.nn.parameter.Parameter`` caches its effective (masked) value,
active-entry count, and active-row index against a version counter.
Plain assignments (``p.data = x``, ``p.data -= u``) route through the
property setter and bump it automatically; writes *through a view* are
invisible to the setter and must call ``bump_version()`` explicitly::

    p.data[rows] = update          # setter never fires
    np.multiply(p.data, m, out=p.data)
    p.bump_version()               # required

A missed bump is the worst kind of bug: every consumer of
``p.effective`` silently reads stale pre-edit bytes, and only a golden
test that happens to cross the path notices. This rule flags any
function that writes through a ``.data``/``.mask`` view — subscript
stores, ``out=`` arguments, ``np.copyto`` targets, in-place array
methods — without a reachable ``bump_version()`` call (or a plain
``.data``/``.mask`` assignment, whose setter bumps) in the same
function.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, register_rule
from ..sources import SourceModule, node_calls_name, resolve_dotted, \
    walk_functions

__all__ = ["CacheCoherenceRule"]

#: Attributes whose storage is version-tagged on ``Parameter``.
_VERSIONED_ATTRS = frozenset({"data", "mask"})

#: ndarray methods that mutate their receiver in place.
_INPLACE_METHODS = frozenset({"fill", "put", "sort", "partition", "setflags"})

#: numpy functions whose *first positional argument* is written in place.
_INPLACE_FIRST_ARG = frozenset({"numpy.copyto", "numpy.place", "numpy.putmask"})


def _versioned_attribute(node: ast.expr) -> ast.Attribute | None:
    """``node`` if it is a ``<obj>.data`` / ``<obj>.mask`` access."""
    if isinstance(node, ast.Attribute) and node.attr in _VERSIONED_ATTRS:
        return node
    return None


def _view_writes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: dict[str, str],
) -> Iterator[tuple[ast.AST, str]]:
    """(node, description) for every through-a-view write in ``func``."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = _versioned_attribute(target.value)
                    if attr is not None:
                        yield (
                            node,
                            f"subscript store into .{attr.attr}[...]",
                        )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg != "out":
                    continue
                attr = _versioned_attribute(keyword.value)
                if attr is not None:
                    yield node, f"out=<param>.{attr.attr} ufunc write"
            func_expr = node.func
            if isinstance(func_expr, ast.Attribute):
                if func_expr.attr in _INPLACE_METHODS:
                    attr = _versioned_attribute(func_expr.value)
                    if attr is not None:
                        yield (
                            node,
                            f".{attr.attr}.{func_expr.attr}(...) in-place "
                            f"method",
                        )
            target_name = resolve_dotted(func_expr, aliases)
            if target_name in _INPLACE_FIRST_ARG and node.args:
                attr = _versioned_attribute(node.args[0])
                if attr is not None:
                    yield (
                        node,
                        f"{target_name}(<param>.{attr.attr}, ...) "
                        f"in-place write",
                    )


def _has_setter_assignment(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    """Whether ``func`` plainly assigns ``<obj>.data`` / ``<obj>.mask``.

    Such assignments (including augmented ones) route through the
    ``Parameter`` property setter, which bumps the version itself.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _versioned_attribute(target) is not None:
                    return True
        elif isinstance(node, ast.AugAssign):
            if _versioned_attribute(node.target) is not None:
                return True
    return False


@register_rule
class CacheCoherenceRule(Rule):
    """Flag view writes to versioned storage with no ``bump_version``."""

    id = "cache-coherence"
    summary = (
        "in-place writes through Parameter.data/.mask views require "
        "bump_version() in the same function"
    )

    def check_module(self, module: SourceModule) -> Iterator[Diagnostic]:
        for func, _ in walk_functions(module.tree):
            writes = list(_view_writes(func, module.aliases))
            if not writes:
                continue
            if node_calls_name(func, "bump_version"):
                continue
            if node_calls_name(func, "apply_mask"):
                # Parameter.apply_mask reassigns .data via the setter.
                continue
            if _has_setter_assignment(func):
                continue
            for node, description in writes:
                yield self.diagnostic(
                    module, node.lineno, node.col_offset,
                    f"{description} bypasses the Parameter version "
                    f"setter, but {func.name}() never calls "
                    f"bump_version(); cached effective/density values "
                    f"go stale.",
                )
