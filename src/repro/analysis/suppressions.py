"""Per-line suppression parsing.

A diagnostic is silenced with an inline annotation that *must* carry a
written justification::

    x = risky_thing()  # repro-lint: allow[rule-id] -- why this is safe

Several rules may share one annotation (``allow[rule-a, rule-b]``). An
annotation on its own comment line applies to the next line that holds
code, so decorated definitions and long statements can be annotated
above instead of inline. A suppression without a ``-- reason`` tail is
itself a diagnostic (rule id ``suppression``) and silences nothing —
an unexplained exemption is exactly the drift this analyzer exists to
prevent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Suppression", "SuppressionIndex"]

_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass
class Suppression:
    """One parsed ``allow[...]`` annotation."""

    line: int  # line the annotation was written on (1-based)
    target_line: int  # line whose diagnostics it silences
    rules: tuple[str, ...]
    reason: str
    used: bool = False

    @property
    def valid(self) -> bool:
        return bool(self.reason) and bool(self.rules)


@dataclass
class SuppressionIndex:
    """All suppressions of one file, indexed by target line."""

    entries: list[Suppression] = field(default_factory=list)
    _by_line: dict[int, list[Suppression]] = field(default_factory=dict)

    @classmethod
    def parse(cls, lines: list[str]) -> "SuppressionIndex":
        index = cls()
        for lineno, text in enumerate(lines, start=1):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            reason = (match.group("reason") or "").strip()
            target = lineno
            if text.lstrip().startswith("#"):
                # Standalone comment: applies to the next code line.
                target = _next_code_line(lines, lineno)
            entry = Suppression(
                line=lineno,
                target_line=target,
                rules=rules,
                reason=reason,
            )
            index.entries.append(entry)
            if entry.valid:
                index._by_line.setdefault(target, []).append(entry)
        return index

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is validly suppressed at ``line`` (marks use)."""
        for entry in self._by_line.get(line, ()):
            if rule in entry.rules:
                entry.used = True
                return True
        return False

    def invalid(self) -> list[Suppression]:
        """Annotations missing a reason (or any rule id)."""
        return [entry for entry in self.entries if not entry.valid]


def _next_code_line(lines: list[str], comment_line: int) -> int:
    """First line after ``comment_line`` holding code (1-based).

    Skips blank and comment-only lines; falls back to the comment's own
    line when the file ends first.
    """
    for offset in range(comment_line, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return comment_line
