"""Per-line suppression parsing.

A diagnostic is silenced with an inline annotation that *must* carry a
written justification::

    x = risky_thing()  # repro-lint: allow[rule-id] -- why this is safe

Several rules may share one annotation (``allow[rule-a, rule-b]``). An
annotation on its own comment line applies to the next line that holds
code, and a target anywhere in a decorated definition's header (the
decorators plus the ``def``/``class`` line itself) covers the whole
header — so decorated definitions and long statements can be annotated
above instead of inline. Annotations are read from real comment tokens
only: ``allow[...]`` text inside string literals and docstrings (like
the examples in this one) is inert.

Exemptions are audited in both directions. A suppression without a
``-- reason`` tail is itself a diagnostic (rule id ``suppression``) and
silences nothing, and a valid suppression that no checked rule ever
matched is reported as stale — unexplained or leftover exemptions are
exactly the drift this analyzer exists to prevent.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Suppression", "SuppressionIndex"]

_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass
class Suppression:
    """One parsed ``allow[...]`` annotation."""

    line: int  # line the annotation was written on (1-based)
    target_line: int  # primary line whose diagnostics it silences
    rules: tuple[str, ...]
    reason: str
    used: bool = False

    @property
    def valid(self) -> bool:
        return bool(self.reason) and bool(self.rules)


@dataclass
class SuppressionIndex:
    """All suppressions of one file, indexed by target line."""

    entries: list[Suppression] = field(default_factory=list)
    _by_line: dict[int, list[Suppression]] = field(default_factory=dict)

    @classmethod
    def parse(
        cls, lines: list[str], tree: ast.Module | None = None
    ) -> "SuppressionIndex":
        index = cls()
        spans: dict[int, range] = (
            {} if tree is None else _decorated_spans(tree)
        )
        for lineno, col, comment in _comment_tokens(lines):
            match = _ALLOW_RE.search(comment)
            if match is None:
                continue
            rules = tuple(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            reason = (match.group("reason") or "").strip()
            target = lineno
            if not lines[lineno - 1][:col].strip():
                # Standalone comment: applies to the next code line.
                target = _next_code_line(lines, lineno)
            entry = Suppression(
                line=lineno,
                target_line=target,
                rules=rules,
                reason=reason,
            )
            index.entries.append(entry)
            if entry.valid:
                # A target inside a decorated definition's header covers
                # the whole header: most rules anchor at the def/class
                # line while registration findings anchor at decorator
                # lines, and an annotation above the decorators must
                # reach both.
                for covered in spans.get(target, range(target, target + 1)):
                    index._by_line.setdefault(covered, []).append(entry)
        return index

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is validly suppressed at ``line`` (marks use)."""
        for entry in self._by_line.get(line, ()):
            if rule in entry.rules:
                entry.used = True
                return True
        return False

    def invalid(self) -> list[Suppression]:
        """Annotations missing a reason (or any rule id)."""
        return [entry for entry in self.entries if not entry.valid]

    def unused(self, rules_run: Iterable[str]) -> list[Suppression]:
        """Valid entries that no checked rule ever matched (stale).

        Restricted to entries whose every rule id was actually run:
        under ``--rule`` selection an unchecked rule may legitimately
        leave its suppressions unconsulted.
        """
        checked = set(rules_run)
        return [
            entry
            for entry in self.entries
            if entry.valid
            and not entry.used
            and set(entry.rules) <= checked
        ]


def _comment_tokens(lines: list[str]) -> Iterator[tuple[int, int, str]]:
    """``(line, col, text)`` of every real comment token (1-based line).

    Tokenizing — instead of regexing raw lines — keeps ``allow[...]``
    examples inside string literals and docstrings from registering as
    live suppressions. Files reaching the analyzer already parsed via
    ``ast``, so tokenization failures only occur for synthetic
    fragments; comments found before the failure are kept.
    """
    readline = io.StringIO("\n".join(lines) + "\n").readline
    try:
        for token in tokenize.generate_tokens(readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    # repro-lint: allow[silent-except] -- by contract: comments before
    # the tokenize failure are kept, the syntax error itself is the
    # linter's to report.
    except (tokenize.TokenError, IndentationError):
        return


def _decorated_spans(tree: ast.Module) -> dict[int, range]:
    """Map each header line of a decorated definition to its full span.

    The header runs from the first decorator line through the
    ``def``/``class`` line itself (multi-line decorator calls fall
    inside that range).
    """
    spans: dict[int, range] = {}
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        first = min(dec.lineno for dec in node.decorator_list)
        span = range(first, node.lineno + 1)
        for line in span:
            spans[line] = span
    return spans


def _next_code_line(lines: list[str], comment_line: int) -> int:
    """First line after ``comment_line`` holding code (1-based).

    Skips blank and comment-only lines; falls back to the comment's own
    line when the file ends first.
    """
    for offset in range(comment_line, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return comment_line
