"""The lint driver: collect files, run rules, apply suppressions.

:func:`run_lint` is the single entry point behind both the CLI and the
test suite. Exit-code contract (stable, scripted against in CI):

- ``0`` — no unsuppressed diagnostics;
- ``1`` — at least one unsuppressed diagnostic;
- ``2`` — the analysis itself failed (missing path, unreadable or
  syntactically invalid file, unknown rule id): findings may be
  incomplete, so CI must treat this as failure, not success.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .diagnostics import SUPPRESSION_RULE_ID, Diagnostic
from .registry import Rule, build_rules
from .sources import SourceModule

__all__ = ["LintResult", "run_lint", "collect_files"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


@dataclass
class LintResult:
    """Everything one analyzer run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        if self.errors:
            return EXIT_ERROR
        if self.diagnostics:
            return EXIT_FINDINGS
        return EXIT_CLEAN

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return counts


def collect_files(paths: Sequence[str | Path]) -> tuple[list[Path],
                                                        list[str]]:
    """Resolve path arguments into a sorted, de-duplicated file list.

    Directories are walked recursively for ``*.py`` (skipping
    ``__pycache__``); missing paths become errors.
    """
    files: list[Path] = []
    errors: list[str] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            candidates = [path]
        else:
            errors.append(f"path does not exist: {path}")
            continue
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files, errors


def _display_path(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` when possible, posix-style."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    # repro-lint: allow[silent-except] -- display fallback: a path
    # outside the root is shown absolute, nothing failed.
    except ValueError:
        relative = path
    return relative.as_posix()


def run_lint(
    paths: Sequence[str | Path],
    rule_ids: Iterable[str] | None = None,
    root: str | Path | None = None,
) -> LintResult:
    """Analyze ``paths`` with the selected rules (all by default).

    Raises ``KeyError`` for an unknown rule id — callers surface that as
    a usage error (exit 2) rather than a finding.
    """
    result = LintResult()
    rules: list[Rule] = build_rules(rule_ids)
    result.rules_run = tuple(rule.id for rule in rules)
    root_path = Path(root) if root is not None else Path.cwd()

    files, path_errors = collect_files(paths)
    result.errors.extend(path_errors)

    modules: list[SourceModule] = []
    for path in files:
        display = _display_path(path, root_path)
        try:
            modules.append(SourceModule.load(path, display))
        except SyntaxError as exc:
            result.errors.append(
                f"{display}:{exc.lineno or 0}: syntax error: {exc.msg}"
            )
        except OSError as exc:
            result.errors.append(f"{display}: unreadable: {exc}")
    result.files_checked = len(modules)

    raw: list[Diagnostic] = []
    for module in modules:
        for rule in rules:
            raw.extend(rule.check_module(module))
    for rule in rules:
        raw.extend(rule.check_project(modules))

    by_path = {module.display_path: module for module in modules}
    for diagnostic in raw:
        module = by_path.get(diagnostic.path)
        if module is not None and module.suppressions.is_suppressed(
            diagnostic.rule, diagnostic.line
        ):
            result.suppressed.append(diagnostic)
        else:
            result.diagnostics.append(diagnostic)

    # Suppressions are audited as findings of the framework itself: an
    # exemption without a written reason silences nothing and is
    # reported regardless of the rule selection, and a valid exemption
    # that no checked rule matched is stale (the flagged code moved or
    # was removed) and must not accumulate silently.
    for module in modules:
        for entry in module.suppressions.invalid():
            result.diagnostics.append(
                Diagnostic(
                    rule=SUPPRESSION_RULE_ID,
                    path=module.display_path,
                    line=entry.line,
                    col=0,
                    message=(
                        "suppression is missing its mandatory "
                        "justification; write `# repro-lint: "
                        "allow[rule-id] -- reason`."
                    ),
                )
            )
        for entry in module.suppressions.unused(result.rules_run):
            listed = ", ".join(entry.rules)
            result.diagnostics.append(
                Diagnostic(
                    rule=SUPPRESSION_RULE_ID,
                    path=module.display_path,
                    line=entry.line,
                    col=0,
                    message=(
                        f"suppression `allow[{listed}]` matched no "
                        "finding; remove the stale exemption (or fix "
                        "its rule id)."
                    ),
                )
            )

    result.diagnostics.sort(key=Diagnostic.sort_key)
    result.suppressed.sort(key=Diagnostic.sort_key)
    return result
