"""Parsed source modules and shared AST utilities.

A :class:`SourceModule` bundles everything a rule needs about one file:
the parsed tree, the raw lines, an import-alias map for resolving
dotted call targets to canonical module paths (``np.random.rand`` →
``numpy.random.rand`` regardless of how numpy was imported), and the
file's parsed suppression index.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from .suppressions import SuppressionIndex

__all__ = [
    "SourceModule",
    "build_alias_map",
    "resolve_dotted",
    "walk_functions",
    "node_calls_name",
]


def build_alias_map(tree: ast.Module) -> dict[str, str]:
    """Map local binding names to canonical dotted module prefixes.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from
    multiprocessing import shared_memory`` yields
    ``{"shared_memory": "multiprocessing.shared_memory"}``. Relative
    imports map to their dot-stripped tail (enough for suffix checks).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    # ``import a.b`` binds ``a``; canonical root is ``a``.
                    root = name.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for name in node.names:
                if name.name == "*":
                    continue
                bound = name.asname or name.name
                canonical = f"{module}.{name.name}" if module else name.name
                aliases[bound] = canonical
    return aliases


def resolve_dotted(
    node: ast.expr, aliases: dict[str, str]
) -> str | None:
    """Canonical dotted path of a Name/Attribute chain, or ``None``.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when ``np`` aliases ``numpy``. Chains rooted in calls, subscripts,
    or other expressions resolve to ``None``.
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(aliases.get(current.id, current.id))
    return ".".join(reversed(parts))


def walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef,
                    ast.ClassDef | None]]:
    """Every function definition paired with its enclosing class."""

    def _walk(
        node: ast.AST, enclosing: ast.ClassDef | None
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef,
                        ast.ClassDef | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, enclosing
                yield from _walk(child, enclosing)
            elif isinstance(child, ast.ClassDef):
                yield from _walk(child, child)
            else:
                yield from _walk(child, enclosing)

    yield from _walk(tree, None)


def node_calls_name(node: ast.AST, attr_name: str) -> bool:
    """Whether any call inside ``node`` targets ``attr_name``.

    Matches both ``attr_name(...)`` and ``<anything>.attr_name(...)``.
    """
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name) and func.id == attr_name:
            return True
        if isinstance(func, ast.Attribute) and func.attr == attr_name:
            return True
    return False


@dataclass
class SourceModule:
    """One parsed file, ready for rule checks."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)
    suppressions: SuppressionIndex = field(
        default_factory=SuppressionIndex
    )

    @classmethod
    def load(cls, path: Path, display_path: str) -> "SourceModule":
        """Parse ``path``; raises ``SyntaxError``/``OSError`` on failure."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        return cls(
            path=path,
            display_path=display_path,
            source=source,
            tree=tree,
            lines=lines,
            aliases=build_alias_map(tree),
            suppressions=SuppressionIndex.parse(lines, tree),
        )

    def is_marked(self, marker: str) -> bool:
        """Whether the file opts into a rule scope via a marker comment.

        Markers are plain ``# repro-lint: <marker>`` comments (e.g.
        ``golden-guarded``), checked against the raw source so they work
        in docstrings and comments alike.
        """
        return f"repro-lint: {marker}" in self.source
