"""The rule registry: pluggable invariants, mirroring ``repro.methods``.

A rule is a class with a stable kebab-case ``id``, a one-line
``summary``, and one or both check hooks:

``check_module``
    Called once per analyzed file — the per-module pass most rules use.
``check_project``
    Called once with *every* analyzed module — for whole-program
    invariants (e.g. registry completeness across files).

Third-party rules register without touching analyzer internals::

    from repro.analysis import Rule, register_rule

    @register_rule
    class NoPrintRule(Rule):
        id = "no-print"
        summary = "flag stray print() calls"

        def check_module(self, module):
            ...
"""

from __future__ import annotations

from abc import ABC
from typing import Iterable, Iterator, Sequence, Type

from .diagnostics import Diagnostic
from .sources import SourceModule

__all__ = [
    "Rule",
    "register_rule",
    "unregister_rule",
    "rule_ids",
    "rule_summaries",
    "get_rule_class",
    "build_rules",
]


class Rule(ABC):
    """Base class for one mechanically-checked invariant."""

    #: Stable kebab-case identifier (used by ``--rule`` and ``allow[...]``).
    id: str = ""
    #: One line shown in ``repro lint --list-rules`` and the rule catalog.
    summary: str = ""

    def check_module(self, module: SourceModule) -> Iterator[Diagnostic]:
        """Per-file findings (default: none)."""
        return iter(())

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Diagnostic]:
        """Whole-fileset findings (default: none)."""
        return iter(())

    def diagnostic(
        self, module: SourceModule, line: int, col: int, message: str
    ) -> Diagnostic:
        """A finding of this rule anchored into ``module``."""
        return Diagnostic(
            rule=self.id,
            path=module.display_path,
            line=line,
            col=col,
            message=message,
        )


_REGISTRY: dict[str, Type[Rule]] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load the built-in rule catalog on first registry access (lazily,
    so rule modules can import :mod:`repro.analysis` without a cycle)."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        from . import rules  # noqa: F401  (registers built-ins on import)

        _BUILTINS_LOADED = True


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` under its ``id``."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} must define a non-empty id")
    if not cls.summary:
        raise ValueError(f"rule {cls.id!r} must define a one-line summary")
    if cls.id in _REGISTRY:
        raise ValueError(f"rule {cls.id!r} already registered")
    _REGISTRY[cls.id] = cls
    return cls


def unregister_rule(rule_id: str) -> None:
    """Remove a registered rule (no-op if absent)."""
    _REGISTRY.pop(rule_id, None)


def rule_ids() -> tuple[str, ...]:
    """Registered rule ids, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def rule_summaries() -> dict[str, str]:
    """``{id: one-line summary}`` for every registered rule."""
    _ensure_builtins()
    return {rule_id: cls.summary for rule_id, cls in _REGISTRY.items()}


def get_rule_class(rule_id: str) -> Type[Rule]:
    """Look up a registered rule class by id."""
    _ensure_builtins()
    if rule_id not in _REGISTRY:
        raise KeyError(
            f"unknown rule {rule_id!r}; available: {list(_REGISTRY)}"
        )
    return _REGISTRY[rule_id]


def build_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all registered rules by default)."""
    _ensure_builtins()
    if only is None:
        return [cls() for cls in _REGISTRY.values()]
    selected: list[Rule] = []
    for rule_id in only:
        selected.append(get_rule_class(rule_id)())
    return selected
