"""The sweep's crash journal: append-only JSONL plus an atomic index.

Every sweep-visible state transition (a run starting, finishing,
failing an attempt, being quarantined, the sweep degrading or
aborting) is journaled *before* it takes effect anywhere else, so a
sweep killed at any instant — including mid-append — resumes with zero
lost or duplicated work:

- **Appends are durable.** Each entry is one JSON line written,
  flushed and ``fsync``'d before the orchestrator acts on it.
- **Torn tails are expected.** A power cut mid-append leaves a partial
  final line with no trailing newline. Replay ignores it; reopening
  the journal for append first *repairs* it by terminating the
  garbage line and journaling an explicit ``torn_repaired`` entry, so
  later appends never glue onto damaged bytes and every repair is
  itself on the record (the orchestrator uses the repair count as an
  epoch for its fault draws, which is what guarantees forward progress
  under repeated torn-write injection).
- **Torn middles are corruption.** An unparseable line anywhere except
  directly before a repair marker raises :class:`JournalError` instead
  of silently skipping history.
- **Exactly-once is an invariant, not a hope.** Resolution refuses a
  journal that records ``done`` twice for the same run.

The sibling index file is the sweep's identity — the expanded run list
with per-spec fingerprints — written atomically (temp + fsync +
``os.replace``) exactly like the results store.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from .store import atomic_write_json

__all__ = [
    "JournalEntry",
    "JournalError",
    "RUN_STATES",
    "SWEEP_SCOPE",
    "SweepJournal",
    "read_index",
    "write_index",
]

#: Pseudo run-id for sweep-level entries (repairs, degradation, abort).
SWEEP_SCOPE = "__sweep__"

#: Per-run lifecycle states. "failed" marks one exhausted *attempt*
#: (the run will be retried); "done"/"quarantined" are terminal.
RUN_STATES = frozenset(
    {"running", "done", "failed", "quarantined"}
)

#: Sweep-scope states (only valid with run_id == SWEEP_SCOPE).
_SWEEP_STATES = frozenset(
    {"torn_repaired", "resumed", "degraded", "aborted", "complete"}
)

_INDEX_VERSION = 1


class JournalError(RuntimeError):
    """The journal is corrupt or records an impossible history."""


@dataclass(frozen=True)
class JournalEntry:
    """One journaled state transition."""

    seq: int
    run_id: str
    state: str
    attempt: int = 0
    detail: str = ""

    def __post_init__(self) -> None:
        valid = _SWEEP_STATES if self.run_id == SWEEP_SCOPE else RUN_STATES
        if self.state not in valid:
            raise JournalError(
                f"invalid state {self.state!r} for {self.run_id!r}"
            )

    def to_line(self) -> str:
        return json.dumps(
            {
                "seq": self.seq,
                "run_id": self.run_id,
                "state": self.state,
                "attempt": self.attempt,
                "detail": self.detail,
            },
            sort_keys=True,
            separators=(",", ":"),
        ) + "\n"

    @classmethod
    def from_dict(cls, record: dict) -> "JournalEntry":
        try:
            return cls(
                seq=int(record["seq"]),
                run_id=str(record["run_id"]),
                state=str(record["state"]),
                attempt=int(record.get("attempt", 0)),
                detail=str(record.get("detail", "")),
            )
        except KeyError as exc:
            raise JournalError(
                f"journal entry missing field {exc.args[0]!r}: {record!r}"
            ) from exc


def replay_text(text: str) -> tuple[list[JournalEntry], bool]:
    """Parse journal text into entries.

    Returns ``(entries, torn_tail)`` where ``torn_tail`` flags a
    trailing partial line (ignored — it never took effect). A damaged
    line in the *interior* is tolerated only when the next entry is a
    ``torn_repaired`` marker (that is exactly what repair leaves
    behind); anywhere else it is corruption and raises.
    """
    entries: list[JournalEntry] = []
    segments = text.split("\n")
    torn_tail = segments[-1] != ""
    body, tail = segments[:-1], segments[-1]
    pending_damage: str | None = None
    for lineno, line in enumerate(body, start=1):
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except ValueError:
            if pending_damage is not None:
                raise JournalError(
                    f"journal line {lineno - 1} is damaged and was "
                    "never repaired"
                ) from None
            pending_damage = line
            continue
        entry = JournalEntry.from_dict(record)
        if pending_damage is not None:
            if not (
                entry.run_id == SWEEP_SCOPE
                and entry.state == "torn_repaired"
            ):
                raise JournalError(
                    f"journal line {lineno - 1} is damaged and not "
                    "followed by a repair marker"
                )
            pending_damage = None
        if entry.seq != len(entries):
            raise JournalError(
                f"journal line {lineno}: seq {entry.seq} != expected "
                f"{len(entries)} (lost or reordered appends)"
            )
        entries.append(entry)
    if pending_damage is not None:
        raise JournalError(
            "journal ends with a damaged line that was terminated but "
            "never repaired"
        )
    del tail  # a torn tail never took effect; repair handles it
    return entries, torn_tail


def resolve_states(
    entries: list[JournalEntry],
) -> dict[str, tuple[str, int]]:
    """Last-wins (state, attempts_used) per run id.

    ``attempts_used`` counts journaled ``failed`` attempts, so a
    resumed sweep continues the retry budget exactly where the killed
    one stopped. Raises :class:`JournalError` if any run records
    ``done`` more than once — the exactly-once invariant.
    """
    states: dict[str, tuple[str, int]] = {}
    done_counts: dict[str, int] = {}
    for entry in entries:
        if entry.run_id == SWEEP_SCOPE:
            continue
        _, attempts = states.get(entry.run_id, ("pending", 0))
        if entry.state == "failed":
            attempts = max(attempts, entry.attempt + 1)
        if entry.state == "done":
            done_counts[entry.run_id] = done_counts.get(entry.run_id, 0) + 1
            if done_counts[entry.run_id] > 1:
                raise JournalError(
                    f"run {entry.run_id!r} journaled done twice "
                    "(exactly-once violated)"
                )
        states[entry.run_id] = (entry.state, attempts)
    return states


class SweepJournal:
    """Append-only, fsync'd JSONL journal with torn-tail repair."""

    def __init__(
        self,
        path: str | Path,
        entries: list[JournalEntry],
        repaired_tail: bool,
    ) -> None:
        self.path = Path(path)
        self.entries = entries
        self.repaired_tail = repaired_tail
        self._handle = None

    # -- construction --------------------------------------------------
    @classmethod
    def open(cls, path: str | Path) -> "SweepJournal":
        """Open (creating or replaying) a journal for appending.

        A torn tail left by a previous crash is repaired: the partial
        line is terminated and an explicit ``torn_repaired`` entry is
        appended so the damage is on the record.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = path.read_text() if path.exists() else ""
        entries, torn_tail = replay_text(text)
        journal = cls(path, entries, repaired_tail=torn_tail)
        if torn_tail:
            # Terminate the garbage bytes, then journal the repair.
            handle = journal._open_handle()
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
            journal.append(
                SWEEP_SCOPE, "torn_repaired",
                detail="terminated torn tail from a previous crash",
            )
        return journal

    @classmethod
    def replay(cls, path: str | Path) -> list[JournalEntry]:
        """Read-only replay (tolerates a torn tail without repairing)."""
        path = Path(path)
        if not path.exists():
            return []
        entries, _ = replay_text(path.read_text())
        return entries

    # -- appending -----------------------------------------------------
    def _open_handle(self):
        if self._handle is None:
            self._handle = self.path.open("a")
        return self._handle

    @property
    def next_seq(self) -> int:
        return len(self.entries)

    @property
    def repair_epoch(self) -> int:
        """How many torn-tail repairs this journal has on record."""
        return sum(
            1 for e in self.entries
            if e.run_id == SWEEP_SCOPE and e.state == "torn_repaired"
        )

    def append(
        self,
        run_id: str,
        state: str,
        attempt: int = 0,
        detail: str = "",
        torn: bool = False,
    ) -> JournalEntry:
        """Durably append one transition (fsync before returning).

        ``torn`` simulates a power cut mid-append for the chaos suite:
        only a prefix of the line reaches the disk and no newline is
        written — exactly the artifact :meth:`open` knows how to
        repair. The entry is *not* recorded in memory (it never took
        effect).
        """
        entry = JournalEntry(
            seq=self.next_seq, run_id=run_id, state=state,
            attempt=attempt, detail=detail,
        )
        line = entry.to_line()
        handle = self._open_handle()
        if torn:
            handle.write(line[: max(1, len(line) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            return entry
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
        self.entries.append(entry)
        return entry

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# The sweep index (identity of the expanded grid)
# ----------------------------------------------------------------------
def write_index(path: str | Path, payload: dict) -> None:
    """Atomically write the sweep index (adds the format version)."""
    atomic_write_json(path, {"format_version": _INDEX_VERSION, **payload})


def read_index(path: str | Path) -> dict:
    """Read an index written by :func:`write_index` (strict version)."""
    with Path(path).open() as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != _INDEX_VERSION:
        raise JournalError(
            f"unsupported sweep index version {version!r} "
            f"(expected {_INDEX_VERSION})"
        )
    return payload
