"""Declarative experiment specs: the sweep's (and runner's) unit of work.

A :class:`RunSpec` pins one experiment completely: the method, model,
dataset, target density, scale preset, seed, Dirichlet alpha, pool
size, and any :class:`~repro.fl.simulation.FLConfig` knob as a
``overrides`` mapping. It is the single place the experiment layer
translates keyword arguments into an ``FLConfig`` — the runner builds
every context through :meth:`RunSpec.fl_config`, so a new config knob
added to :meth:`repro.experiments.configs.ScalePreset.fl_config` is
immediately sweepable and cannot drift between call sites.

Specs are JSON-round-trippable and carry a stable content fingerprint
(:meth:`RunSpec.fingerprint`): the sweep journal uses it to re-verify
completed runs on resume, exactly like
:class:`~repro.nn.checkpoint.RunCheckpoint` fingerprints individual
runs. Execution-only knobs (``checkpoint_dir``/``checkpoint_every``/
``resume``) are excluded from the fingerprint — they change how a run
executes, never what it computes.

:func:`expand_grid` turns a declarative axes mapping (axis name →
value list) into the deterministic list of specs a sweep executes.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .configs import ScalePreset

__all__ = [
    "CONFIG_OVERRIDE_KEYS",
    "RunSpec",
    "expand_grid",
    "parse_axis_value",
]

#: Keyword aliases accepted for historical reasons (``run_experiment``
#: always called the quantization knob ``quantize_bits``).
_OVERRIDE_ALIASES = {"quantize_bits": "quantize_upload_bits"}

#: Spec fields with first-class meaning (not FLConfig overrides).
_CORE_AXES = {
    "method": "method",
    "model": "model",
    "dataset": "dataset",
    "density": "target_density",
    "target_density": "target_density",
    "scale": "scale",
    "alpha": "dirichlet_alpha",
    "dirichlet_alpha": "dirichlet_alpha",
    "seed": "seed",
    "pool_size": "pool_size",
}

#: FLConfig knobs that steer *execution* (crash-resume plumbing), not
#: the computed result: excluded from the spec fingerprint so a run
#: resumed through a checkpoint re-verifies as the same run.
_EXECUTION_ONLY_KEYS = frozenset(
    {"checkpoint_dir", "checkpoint_every", "resume"}
)


def _config_override_keys() -> frozenset[str]:
    """Valid ``overrides`` keys, derived from the fl_config signature.

    ``dirichlet_alpha`` and ``seed`` are first-class RunSpec fields, so
    they are not overridable; everything else ScalePreset.fl_config
    accepts is.
    """
    params = inspect.signature(ScalePreset.fl_config).parameters
    return frozenset(params) - {"self", "dirichlet_alpha", "seed"}


#: The valid keys for :attr:`RunSpec.overrides` (plus the aliases in
#: ``_OVERRIDE_ALIASES``), kept in lockstep with ``ScalePreset.fl_config``
#: by deriving them from its signature at import time.
CONFIG_OVERRIDE_KEYS: frozenset[str] = _config_override_keys()

_JSON_SCALARS = (str, int, float, bool, type(None))


def normalize_overrides(overrides: Mapping[str, Any]) -> dict[str, Any]:
    """Validate/canonicalize FLConfig override kwargs.

    Aliases are resolved, ``None`` values dropped (they mean "use the
    preset default", exactly as the old explicit keyword plumbing did),
    and unknown keys rejected with the full valid-key list.
    """
    cleaned: dict[str, Any] = {}
    for key, value in overrides.items():
        key = _OVERRIDE_ALIASES.get(key, key)
        if key not in CONFIG_OVERRIDE_KEYS:
            raise ValueError(
                f"unknown config override {key!r}; valid keys: "
                f"{sorted(CONFIG_OVERRIDE_KEYS | set(_OVERRIDE_ALIASES))}"
            )
        if value is None:
            continue
        if not isinstance(value, _JSON_SCALARS):
            raise ValueError(
                f"config override {key}={value!r} is not a JSON scalar; "
                "specs must stay JSON-round-trippable"
            )
        if key in cleaned and cleaned[key] != value:
            raise ValueError(f"conflicting values for override {key!r}")
        cleaned[key] = value
    return cleaned


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one experiment run.

    ``overrides`` maps FLConfig knob names (any keyword of
    ``ScalePreset.fl_config`` except ``dirichlet_alpha``/``seed``) to
    JSON-scalar values; it is canonicalized (aliases resolved, ``None``
    dropped, keys sorted) so equal configurations always produce equal
    fingerprints.
    """

    method: str
    model: str = "resnet18"
    dataset: str = "cifar10"
    target_density: float = 0.05
    scale: str = "bench"
    dirichlet_alpha: float | None = 0.5
    seed: int = 0
    pool_size: int | None = None
    overrides: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.method:
            raise ValueError("RunSpec needs a method name")
        if not 0.0 < self.target_density <= 1.0:
            raise ValueError(
                f"target_density must be in (0, 1], got {self.target_density}"
            )
        raw = self.overrides
        mapping = dict(raw) if not isinstance(raw, Mapping) else dict(raw)
        cleaned = normalize_overrides(mapping)
        object.__setattr__(
            self, "overrides", tuple(sorted(cleaned.items()))
        )

    @property
    def overrides_dict(self) -> dict[str, Any]:
        return dict(self.overrides)

    def fl_config(self, preset: ScalePreset, **extra: Any):
        """The run's FLConfig — the one call site for every knob.

        ``extra`` lets the orchestration layer thread execution-only
        knobs (per-run checkpoint dirs, resume flags) without widening
        the spec's identity.
        """
        kwargs = self.overrides_dict
        for key, value in extra.items():
            if key not in CONFIG_OVERRIDE_KEYS:
                raise ValueError(f"unknown config override {key!r}")
            if value is not None:
                kwargs[key] = value
        return preset.fl_config(
            dirichlet_alpha=self.dirichlet_alpha, seed=self.seed, **kwargs
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "method": self.method,
            "model": self.model,
            "dataset": self.dataset,
            "target_density": self.target_density,
            "scale": self.scale,
            "dirichlet_alpha": self.dirichlet_alpha,
            "seed": self.seed,
            "pool_size": self.pool_size,
            "overrides": self.overrides_dict,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "RunSpec":
        return cls(
            method=record["method"],
            model=record.get("model", "resnet18"),
            dataset=record.get("dataset", "cifar10"),
            target_density=record.get("target_density", 0.05),
            scale=record.get("scale", "bench"),
            dirichlet_alpha=record.get("dirichlet_alpha"),
            seed=record.get("seed", 0),
            pool_size=record.get("pool_size"),
            overrides=tuple(dict(record.get("overrides", {})).items()),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the spec's *identity*.

        Execution-only override keys are excluded: resuming a run
        through its checkpoint plumbing must not change which spec the
        journal thinks it is.
        """
        canonical = self.to_dict()
        canonical["overrides"] = {
            key: value
            for key, value in self.overrides
            if key not in _EXECUTION_ONLY_KEYS
        }
        encoded = json.dumps(
            canonical, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Compact human-readable identity for logs and reports."""
        return (
            f"{self.method}/{self.model}/{self.dataset}"
            f"@d={self.target_density:g},seed={self.seed}"
        )


def parse_axis_value(text: str) -> Any:
    """Parse one grid-axis value: int, float, bool, None, or string."""
    raw = text.strip()
    lowered = raw.lower()
    if lowered in ("none", "null"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(raw)
    except ValueError:  # repro-lint: allow[silent-except] -- type probe:
        pass            # non-int axis values fall through to float/str
    try:
        return float(raw)
    except ValueError:  # repro-lint: allow[silent-except] -- type probe:
        pass            # non-numeric axis values are plain strings
    return raw


def expand_grid(
    axes: Mapping[str, Sequence[Any]],
    base: Mapping[str, Any] | None = None,
) -> list[RunSpec]:
    """Expand a declarative grid into a deterministic list of RunSpecs.

    ``axes`` maps axis names to value lists; axis names are either
    core spec fields (``method``/``model``/``dataset``/``density``/
    ``scale``/``alpha``/``seed``/``pool_size``) or any FLConfig
    override key. ``base`` supplies values for core fields that are
    not gridded. Expansion order is the cartesian product with the
    *last* axis varying fastest — a pure function of the mapping's
    insertion order, so the same grid always enumerates the same queue.
    """
    for name, values in axes.items():
        if not values:
            raise ValueError(f"grid axis {name!r} has no values")
        if name not in _CORE_AXES:
            # Raises with the valid-key list on unknown names.
            normalize_overrides({name: values[0]})
    names = list(axes)
    specs: list[RunSpec] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        fields: dict[str, Any] = dict(base or {})
        overrides: dict[str, Any] = dict(fields.pop("overrides", {}))
        for name, value in zip(names, combo):
            if name in _CORE_AXES:
                fields[_CORE_AXES[name]] = value
            else:
                overrides[name] = value
        specs.append(
            RunSpec(**{**fields, "overrides": tuple(overrides.items())})
        )
    return specs
