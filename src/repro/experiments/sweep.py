"""Crash-resumable sweep orchestration over the experiment grid.

The paper's headline artifacts are grids (method × dataset × density ×
non-IID α); this module is the front door for running them with
production-grade robustness, lifting the PR-8 round-level machinery
(:class:`~repro.fl.faults.RetryPolicy`,
:class:`~repro.fl.faults.FailureRecord`,
:class:`~repro.fl.faults.FaultSchedule`) to the fleet-of-runs level:

- **Journaled queue.** Every sweep-visible state transition is written
  to the append-only :class:`~repro.experiments.journal.SweepJournal`
  *before* it takes effect, and a run's result file is durably on disk
  *before* its ``done`` entry — classic write-ahead discipline. A
  ``kill -9`` at any instant resumes with zero lost or duplicated
  work; completed runs re-verify by :meth:`RunSpec.fingerprint`
  exactly as :class:`~repro.nn.checkpoint.RunCheckpoint` fingerprints
  individual runs (which keep their own mid-round crash-resume via
  ``checkpoint_runs=True``).
- **Per-run fault isolation.** Each run executes in a spawned child
  process with its own shm arena, under a wall-clock watchdog. A
  crashed or hung run is killed, journaled, recorded as a structured
  :class:`FailureRecord`, retried under the :class:`RetryPolicy`, and
  **quarantined** after exhaustion — one poisoned config can never
  stall the sweep.
- **Graceful degradation.** Spawn-layer breakage (the pool analogue)
  degrades the sweep to in-process serial execution after
  ``pool_failure_limit`` strikes, mirroring the round loop's
  process→serial fallback; ``max_failures`` aborts cleanly with a
  summary instead of grinding through a broken environment.
- **Ask/tell scheduling.** Run order comes from a pluggable scheduler
  (:class:`GridScheduler` and :class:`RandomScheduler` built in): the
  orchestrator ``ask()``s for the next run index and ``tell()``s the
  terminal state plus the result record back, which is exactly the
  surface a hyper-parameter tuner needs.

Determinism contract: all sweep-level fault draws are counter-based on
the sweep seed — run faults at ``(run_index, 0, attempt)``, journal
tears at ``(seq, 1, repair_epoch)`` — so an interrupted-and-resumed
sweep executes the same faults, quarantines the same configs, and
assembles a ``results.json`` byte-identical to an uninterrupted sweep.
The wall clock is used only to *bound* runs (the watchdog), never to
seed or order them.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..fl.faults import FailureRecord, FaultSchedule, RetryPolicy
from ..metrics.tracker import RunResult
from .journal import (
    SWEEP_SCOPE,
    JournalError,
    SweepJournal,
    read_index,
    resolve_states,
    write_index,
)
from .runner import run_spec
from .specs import RunSpec
from .store import atomic_write_json, result_to_record, save_records

__all__ = [
    "GridScheduler",
    "RandomScheduler",
    "SweepKilled",
    "SweepOrchestrator",
    "SweepReport",
    "available_schedulers",
    "register_scheduler",
]

_LOG = logging.getLogger(__name__)

#: Fault-draw channels (the ``client_id`` coordinate of the
#: counter-based stream): run-level faults vs journal-append tears
#: never share a coordinate, so one cannot shift the other.
_RUN_CHANNEL = 0
_JOURNAL_CHANNEL = 1

_SCHED_SALT = 0x53434844  # "SCHD"

#: Exit code an injected ``run_crash`` child dies with (distinguishable
#: from a real traceback's exit 1 in the journal detail).
_CRASH_EXIT = 41
_HANG_SECONDS = 3600.0

#: The sweep-level marker used in :class:`FailureRecord.round_index`
#: (sweep failures are not attached to any federated round).
_SWEEP_ROUND = -1


class SweepKilled(RuntimeError):
    """The sweep died mid-flight (injected tear or test kill hook).

    Raised where a real ``kill -9`` would have stopped the process:
    the journal holds everything up to the kill point and the sweep
    resumes with ``resume=True`` / ``repro sweep --resume``.
    """


class _RunFailure(RuntimeError):
    """One failed attempt of one run (crash, hang, or exception)."""

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


# ----------------------------------------------------------------------
# Ask/tell schedulers
# ----------------------------------------------------------------------
class GridScheduler:
    """FIFO over the grid-expansion order (the default).

    The ask/tell protocol: ``ask()`` returns the next run index to
    execute (``None`` when the queue is drained); ``tell(index, state,
    record)`` reports the terminal state (``"done"``/``"quarantined"``)
    and, for completed runs, the result record — the hook an adaptive
    tuner uses to steer what it asks for next.
    """

    def __init__(
        self,
        specs: list[RunSpec],
        seed: int = 0,
        completed: frozenset[int] = frozenset(),
    ) -> None:
        self._queue = [
            index for index in range(len(specs))
            if index not in completed
        ]

    def ask(self) -> int | None:
        return self._queue.pop(0) if self._queue else None

    def tell(self, index: int, state: str, record: dict | None) -> None:
        pass


class RandomScheduler(GridScheduler):
    """Deterministically shuffled order (counter-based on the seed).

    The permutation is a pure function of the sweep seed, so a resumed
    sweep walks the identical order as the uninterrupted one.
    """

    def __init__(
        self,
        specs: list[RunSpec],
        seed: int = 0,
        completed: frozenset[int] = frozenset(),
    ) -> None:
        rng = np.random.default_rng([seed, _SCHED_SALT])
        order = rng.permutation(len(specs))
        self._queue = [
            int(index) for index in order if int(index) not in completed
        ]


_SCHEDULERS: dict[str, Callable[..., GridScheduler]] = {
    "grid": GridScheduler,
    "random": RandomScheduler,
}


def register_scheduler(
    name: str, factory: Callable[..., GridScheduler]
) -> None:
    """Register an ask/tell scheduler (e.g. a hyper-parameter tuner).

    ``factory(specs, seed, completed)`` must return an object with the
    :class:`GridScheduler` ask/tell protocol.
    """
    if name in _SCHEDULERS:
        raise ValueError(f"scheduler {name!r} is already registered")
    _SCHEDULERS[name] = factory


def available_schedulers() -> list[str]:
    return sorted(_SCHEDULERS)


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclass
class SweepReport:
    """What one orchestrator invocation accomplished."""

    total: int
    done: int = 0
    quarantined: int = 0
    pending: int = 0
    executed: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    aborted: bool = False
    degraded: bool = False
    resumed: bool = False
    store_path: str | None = None
    failures: list[FailureRecord] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        record = {
            key: value for key, value in vars(self).items()
            if key != "failures"
        }
        record["failures"] = [vars(f) for f in self.failures]
        return record

    def summary_lines(self) -> list[str]:
        lines = [
            f"runs              : {self.total}",
            f"done              : {self.done}",
            f"quarantined       : {self.quarantined}",
            f"executed now      : {self.executed}",
            f"retries           : {self.retries}",
        ]
        if self.pending:
            lines.append(f"still pending     : {self.pending}")
        if self.degraded:
            lines.append("degraded          : process -> serial isolation")
        if self.aborted:
            lines.append("ABORTED           : --max-failures exceeded")
        if self.store_path:
            lines.append(f"results store     : {self.store_path}")
        return lines


# ----------------------------------------------------------------------
# Child-process entry point (module level: spawn-picklable)
# ----------------------------------------------------------------------
def _child_main(
    spec_dict: dict,
    config_extras: dict,
    payload_path: str,
    fault: str | None,
) -> None:
    """Execute one run inside its own process (and shm arena).

    Injected sweep faults enact here so the failure is *real*: a
    ``run_crash`` child dies without cleanup exactly like a segfault,
    and a ``run_hang`` child wedges until the parent's watchdog kills
    it. Both fire before any training state exists, so the retry
    executes bit-identically.
    """
    if fault == "run_crash":
        os._exit(_CRASH_EXIT)
    if fault == "run_hang":
        time.sleep(_HANG_SECONDS)
        os._exit(_CRASH_EXIT)  # pragma: no cover - watchdog kills first
    try:
        spec = RunSpec.from_dict(spec_dict)
        result = run_spec(spec, config_extras=config_extras)
        atomic_write_json(
            payload_path, {"record": result_to_record(result)}
        )
    except BaseException:
        # Exit with the run-crash code so the parent can tell "this
        # config is poisoned" (retry, then quarantine) apart from
        # "the spawn layer is broken" (degrade to serial) — a child
        # that dies during interpreter bootstrap never reaches here
        # and exits with a different code.
        print(traceback.format_exc(), file=sys.stderr)
        os._exit(_CRASH_EXIT)


def _serial_runner(spec: RunSpec, config_extras: dict) -> RunResult:
    return run_spec(spec, config_extras=config_extras)


def _sweep_fingerprint(
    specs: list[RunSpec],
    scheduler: str,
    sweep_seed: int,
    faults: str | None,
) -> str:
    payload = {
        "fingerprints": [spec.fingerprint() for spec in specs],
        "scheduler": scheduler,
        "sweep_seed": sweep_seed,
        "faults": faults or "",
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------
class SweepOrchestrator:
    """Execute a queue of :class:`RunSpec` runs with crash-resume.

    ``specs`` is required for a fresh sweep and optional on resume
    (the journaled index is authoritative; when both are given they
    must fingerprint-match). Identity knobs — the grid, scheduler,
    sweep seed, fault spec, retry policy, ``max_failures``,
    ``checkpoint_runs`` — are persisted in the index and *restored* on
    resume so the resumed sweep cannot diverge; ``isolation`` and
    ``watchdog_seconds`` are per-invocation execution knobs (resuming
    a sweep in serial isolation is legitimate and bit-identical).

    ``runner`` injects the per-run execution callable
    (``runner(spec, config_extras) -> RunResult``) for tests; it
    forces serial isolation. ``kill_after_events`` raises
    :class:`SweepKilled` after that many journal appends — the chaos
    suite's seeded kill points.
    """

    def __init__(
        self,
        out_dir: str | Path,
        specs: list[RunSpec] | None = None,
        *,
        resume: bool = False,
        scheduler: str = "grid",
        sweep_seed: int = 0,
        faults: str | None = None,
        isolation: str = "process",
        watchdog_seconds: float = 300.0,
        retry: RetryPolicy | None = None,
        max_failures: int | None = None,
        checkpoint_runs: bool = False,
        runner: Callable[[RunSpec, dict], RunResult] | None = None,
        kill_after_events: int | None = None,
    ) -> None:
        if isolation not in ("process", "serial"):
            raise ValueError(
                f"isolation must be 'process' or 'serial', got {isolation!r}"
            )
        if watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be > 0")
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be >= 0")
        self.out_dir = Path(out_dir)
        self.specs = list(specs) if specs is not None else None
        self.resume = resume
        self.scheduler_name = scheduler
        self.sweep_seed = sweep_seed
        self.faults = faults
        self.isolation = "serial" if runner is not None else isolation
        self.watchdog_seconds = watchdog_seconds
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_failures = max_failures
        self.checkpoint_runs = checkpoint_runs
        self.runner = runner
        self.kill_after_events = kill_after_events
        self.journal: SweepJournal | None = None
        self.run_ids: list[str] = []
        self.report = SweepReport(total=0)
        self._states: dict[str, tuple[str, int]] = {}
        self._schedule: FaultSchedule | None = None
        self._events = 0
        self._pool_breakages = 0

    # -- paths ---------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.out_dir / "sweep-index.json"

    @property
    def journal_path(self) -> Path:
        return self.out_dir / "sweep.journal"

    @property
    def runs_dir(self) -> Path:
        return self.out_dir / "runs"

    @property
    def store_path(self) -> Path:
        return self.out_dir / "results.json"

    def _run_file(self, run_id: str) -> Path:
        return self.runs_dir / f"{run_id}.json"

    # -- setup ---------------------------------------------------------
    def _prepare(self) -> None:
        if self.resume:
            self._prepare_resume()
        else:
            self._prepare_fresh()
        assert self.specs is not None
        fingerprints = [spec.fingerprint() for spec in self.specs]
        self.run_ids = [
            f"{index:04d}-{fp[:12]}"
            for index, fp in enumerate(fingerprints)
        ]
        if self.faults:
            self._schedule = FaultSchedule.parse(
                self.faults, seed=self.sweep_seed
            )
        self.journal = SweepJournal.open(self.journal_path)
        self._states = resolve_states(self.journal.entries)
        self._verify_done_artifacts(fingerprints)
        self.report = SweepReport(total=len(self.specs))
        for run_id in self.run_ids:
            state, _ = self._states.get(run_id, ("pending", 0))
            if state == "done":
                self.report.done += 1
            elif state == "quarantined":
                self.report.quarantined += 1
        if self.resume:
            self.report.resumed = True
            self._journal_event(
                SWEEP_SCOPE, "resumed",
                detail=f"done={self.report.done} "
                       f"quarantined={self.report.quarantined}",
            )

    def _prepare_fresh(self) -> None:
        if self.index_path.exists():
            raise JournalError(
                f"{self.out_dir} already holds a sweep; pass "
                "resume=True (CLI: --resume) or pick a new directory"
            )
        if not self.specs:
            raise ValueError("a fresh sweep needs at least one RunSpec")
        fingerprints = [spec.fingerprint() for spec in self.specs]
        if len(set(fingerprints)) != len(fingerprints):
            raise ValueError(
                "duplicate RunSpecs in the grid; exactly-once execution "
                "needs every spec to be unique"
            )
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        write_index(self.index_path, {
            "sweep": {
                "fingerprint": _sweep_fingerprint(
                    self.specs, self.scheduler_name,
                    self.sweep_seed, self.faults,
                ),
                "scheduler": self.scheduler_name,
                "sweep_seed": self.sweep_seed,
                "faults": self.faults,
                "max_failures": self.max_failures,
                "checkpoint_runs": self.checkpoint_runs,
                "retry": vars(self.retry),
            },
            "runs": [
                {
                    "index": index,
                    "run_id": f"{index:04d}-{fp[:12]}",
                    "fingerprint": fp,
                    "spec": spec.to_dict(),
                }
                for index, (spec, fp) in enumerate(
                    zip(self.specs, fingerprints)
                )
            ],
        })

    def _prepare_resume(self) -> None:
        if not self.index_path.exists():
            raise JournalError(
                f"nothing to resume: {self.index_path} does not exist"
            )
        payload = read_index(self.index_path)
        stored = [
            RunSpec.from_dict(row["spec"]) for row in payload["runs"]
        ]
        for row, spec in zip(payload["runs"], stored):
            if spec.fingerprint() != row["fingerprint"]:
                raise JournalError(
                    f"run {row['run_id']}: the journaled spec no longer "
                    "matches its fingerprint (index tampered with, or "
                    "the config schema changed underneath the sweep)"
                )
        sweep_meta = payload["sweep"]
        if self.specs is not None:
            supplied = _sweep_fingerprint(
                self.specs, self.scheduler_name,
                self.sweep_seed, self.faults,
            )
            if supplied != sweep_meta["fingerprint"]:
                raise JournalError(
                    "the supplied grid does not match the journaled "
                    "sweep; resume without grid arguments or start a "
                    "fresh sweep in a new directory"
                )
        # Identity knobs come from the index: the resumed sweep must
        # draw the same faults and quarantine the same configs.
        self.specs = stored
        self.scheduler_name = sweep_meta["scheduler"]
        self.sweep_seed = sweep_meta["sweep_seed"]
        self.faults = sweep_meta["faults"]
        self.max_failures = sweep_meta["max_failures"]
        self.checkpoint_runs = sweep_meta["checkpoint_runs"]
        self.retry = RetryPolicy(**sweep_meta["retry"])
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    def _verify_done_artifacts(self, fingerprints: list[str]) -> None:
        """Re-verify completed runs by config fingerprint.

        The journal can only vouch for work whose artifacts are still
        what it journaled: a ``done`` run with a missing or mismatched
        result file means the store was modified behind the journal's
        back, and resuming would silently ship wrong results.
        """
        for run_id, fingerprint in zip(self.run_ids, fingerprints):
            state, _ = self._states.get(run_id, ("pending", 0))
            if state != "done":
                continue
            path = self._run_file(run_id)
            if not path.exists():
                raise JournalError(
                    f"journal says run {run_id} is done but its result "
                    f"file {path} is missing"
                )
            with path.open() as handle:
                payload = json.load(handle)
            if payload.get("fingerprint") != fingerprint:
                raise JournalError(
                    f"run {run_id}: result file fingerprint does not "
                    "match the journaled spec"
                )

    # -- journaling ----------------------------------------------------
    def _journal_event(
        self, run_id: str, state: str, attempt: int = 0, detail: str = ""
    ) -> None:
        """Durably journal one transition, with chaos injection.

        A drawn ``journal_torn_write`` writes only a prefix of the line
        (a power cut mid-append) and raises :class:`SweepKilled`; the
        ``kill_after_events`` hook raises *after* a durable append.
        Draws are keyed on ``(seq, repair_epoch)`` so a torn append is
        re-drawn under the next epoch on resume — injection cannot
        livelock the journal.
        """
        assert self.journal is not None
        seq = self.journal.next_seq
        if self._schedule is not None:
            kind = self._schedule.draw(
                seq, _JOURNAL_CHANNEL, self.journal.repair_epoch
            )
            if kind == "journal_torn_write":
                self.journal.append(
                    run_id, state, attempt=attempt, detail=detail,
                    torn=True,
                )
                raise SweepKilled(
                    f"journal append torn at seq {seq} (injected)"
                )
        self.journal.append(
            run_id, state, attempt=attempt, detail=detail
        )
        self._states = resolve_states(self.journal.entries)
        self._events += 1
        if (
            self.kill_after_events is not None
            and self._events >= self.kill_after_events
        ):
            raise SweepKilled(
                f"killed after {self._events} journal events (injected)"
            )

    # -- fault plumbing ------------------------------------------------
    def _draw_run_fault(self, index: int, attempt: int) -> str | None:
        if self._schedule is None:
            return None
        kind = self._schedule.draw(index, _RUN_CHANNEL, attempt)
        if kind in ("run_crash", "run_hang"):
            return kind
        # Round-level kinds in a shared spec string draw no-ops here,
        # exactly as sweep kinds are no-ops inside the round runner.
        return None

    def _note_pool_breakage(self, index: int, detail: str) -> None:
        """Spawn-layer breakage: count it and degrade if it persists."""
        self._pool_breakages += 1
        _LOG.warning(
            "sweep spawn layer broke (%d/%d): %s",
            self._pool_breakages, self.retry.pool_failure_limit, detail,
        )
        self.report.failures.append(
            FailureRecord(
                _SWEEP_ROUND, index, 0, "pool_failure", "retried",
                detail=detail,
            )
        )
        if (
            self._pool_breakages >= self.retry.pool_failure_limit
            and self.isolation == "process"
        ):
            self.isolation = "serial"
            self.report.degraded = True
            self.report.failures.append(
                FailureRecord(
                    _SWEEP_ROUND, index, 0,
                    "pool_failure", "degraded_executor",
                    detail=f"breakages={self._pool_breakages}",
                )
            )
            self._journal_event(
                SWEEP_SCOPE, "degraded",
                detail=f"breakages={self._pool_breakages}",
            )

    # -- run execution -------------------------------------------------
    def _config_extras(self, run_id: str) -> dict:
        if not self.checkpoint_runs:
            return {}
        # Individual runs keep their own mid-round crash-resume: the
        # PR-8 RunCheckpoint machinery snapshots every round and
        # resumes bit-for-bit (a missing checkpoint means fresh start).
        checkpoint_dir = self.out_dir / "checkpoints" / run_id
        return {
            "checkpoint_dir": str(checkpoint_dir),
            "checkpoint_every": 1,
            "resume": True,
        }

    def _attempt_serial(
        self,
        index: int,
        spec: RunSpec,
        run_id: str,
        fault: str | None,
        config_extras: dict,
    ) -> dict:
        if fault == "run_crash":
            raise _RunFailure(
                "run_crash", "injected crash before the run started"
            )
        if fault == "run_hang":
            raise _RunFailure(
                "run_hang",
                f"injected hang; watchdog "
                f"({self.watchdog_seconds:g}s) fired",
            )
        runner = self.runner if self.runner is not None else _serial_runner
        try:
            result = runner(spec, config_extras)
        except Exception as exc:
            _LOG.warning("run %s failed in-process: %r", run_id, exc)
            raise _RunFailure("run_exception", repr(exc)) from exc
        return result_to_record(result)

    def _attempt_process(
        self,
        index: int,
        spec: RunSpec,
        run_id: str,
        fault: str | None,
        config_extras: dict,
    ) -> dict:
        payload_path = self.runs_dir / f"{run_id}.child.json"
        if payload_path.exists():
            payload_path.unlink()
        ctx = multiprocessing.get_context("spawn")
        try:
            child = ctx.Process(
                target=_child_main,
                args=(
                    spec.to_dict(), dict(config_extras),
                    str(payload_path), fault,
                ),
            )
            child.start()
        except OSError as exc:
            _LOG.warning("could not spawn run child: %r", exc)
            self._note_pool_breakage(index, f"spawn failed: {exc!r}")
            return self._attempt_serial(
                index, spec, run_id, fault, config_extras
            )
        deadline = time.monotonic() + self.watchdog_seconds
        while child.is_alive() and time.monotonic() < deadline:
            child.join(timeout=0.05)
        if child.is_alive():
            child.kill()
            child.join()
            raise _RunFailure(
                "run_hang",
                f"watchdog killed the run after "
                f"{self.watchdog_seconds:g}s",
            )
        if child.exitcode != 0:
            exitcode = child.exitcode if child.exitcode is not None else 1
            if exitcode == _CRASH_EXIT or exitcode < 0:
                # The run itself died (injected crash, a traceback out
                # of the experiment, or a signal): a property of the
                # config, so it burns a retry attempt.
                raise _RunFailure(
                    "run_crash", f"child exited with code {exitcode}"
                )
            # Any other exit code means the child never reached the
            # run (interpreter/spawn bootstrap failure): that is the
            # spawn layer breaking, not the config.
            self._note_pool_breakage(
                index, f"child bootstrap failed with code {exitcode}"
            )
            return self._attempt_serial(
                index, spec, run_id, fault, config_extras
            )
        if not payload_path.exists():
            # A clean exit with no result is spawn-layer breakage, not
            # a property of the config: fall back to serial in-process.
            self._note_pool_breakage(
                index, "child exited 0 without a result payload"
            )
            return self._attempt_serial(
                index, spec, run_id, fault, config_extras
            )
        with payload_path.open() as handle:
            payload = json.load(handle)
        payload_path.unlink()
        return payload["record"]

    def _attempt(
        self,
        index: int,
        spec: RunSpec,
        run_id: str,
        fault: str | None,
        config_extras: dict,
    ) -> dict:
        if self.isolation == "serial":
            return self._attempt_serial(
                index, spec, run_id, fault, config_extras
            )
        return self._attempt_process(
            index, spec, run_id, fault, config_extras
        )

    def _quarantine(
        self, index: int, run_id: str, attempt: int, detail: str
    ) -> None:
        self._journal_event(
            run_id, "quarantined", attempt=attempt, detail=detail
        )
        self.report.quarantined += 1
        self.report.failures.append(
            FailureRecord(
                _SWEEP_ROUND, index, attempt,
                "retry_exhausted", "quarantined", detail=detail,
            )
        )
        _LOG.warning("run %s quarantined: %s", run_id, detail)

    def _run_one(self, index: int) -> tuple[str, dict | None]:
        """Drive one run to a terminal state (``done``/``quarantined``)."""
        spec = self.specs[index]
        run_id = self.run_ids[index]
        fingerprint = spec.fingerprint()
        state, attempts_used = self._states.get(run_id, ("pending", 0))
        if state in ("done", "quarantined"):
            return state, None
        if attempts_used >= self.retry.max_attempts:
            # Killed after the last failed attempt, before the
            # quarantine entry landed: finish the transition now.
            self._quarantine(
                index, run_id, attempts_used - 1,
                "retry budget exhausted before the previous kill",
            )
            return "quarantined", None
        config_extras = self._config_extras(run_id)
        for attempt in range(attempts_used, self.retry.max_attempts):
            self._journal_event(
                run_id, "running", attempt=attempt, detail=spec.label()
            )
            fault = self._draw_run_fault(index, attempt)
            try:
                record = self._attempt(
                    index, spec, run_id, fault, config_extras
                )
            except _RunFailure as failure:
                _LOG.warning(
                    "run %s attempt %d failed: %s",
                    run_id, attempt, failure,
                )
                self._journal_event(
                    run_id, "failed", attempt=attempt,
                    detail=f"{failure.kind}: {failure.detail}",
                )
                self.report.failures.append(
                    FailureRecord(
                        _SWEEP_ROUND, index, attempt,
                        failure.kind, "retried", detail=failure.detail,
                    )
                )
                if attempt + 1 < self.retry.max_attempts:
                    self.report.retries += 1
                    # Backoff is charged as *simulated* seconds (same
                    # discipline as the round loop) — sleeping for real
                    # would punish the innocent rest of the grid.
                    self.report.backoff_seconds += self.retry.backoff(
                        self.sweep_seed, index, _RUN_CHANNEL, attempt
                    )
                continue
            # Write-ahead: the result is durable before "done" lands,
            # so a kill between the two re-runs the attempt and
            # rewrites the identical bytes (runs are deterministic).
            atomic_write_json(self._run_file(run_id), {
                "run_id": run_id,
                "fingerprint": fingerprint,
                "record": record,
            })
            self._journal_event(run_id, "done", attempt=attempt)
            self.report.done += 1
            return "done", record
        self._quarantine(
            index, run_id, self.retry.max_attempts - 1,
            f"retry budget exhausted "
            f"({self.retry.max_attempts} attempts)",
        )
        return "quarantined", None

    # -- the sweep -----------------------------------------------------
    def execute(self) -> SweepReport:
        """Run (or resume) the sweep to completion.

        Returns the :class:`SweepReport`; raises :class:`SweepKilled`
        where an injected fault or kill hook stops the process (resume
        with ``resume=True``).
        """
        self._prepare()
        assert self.specs is not None and self.journal is not None
        try:
            factory = _SCHEDULERS.get(self.scheduler_name)
            if factory is None:
                raise ValueError(
                    f"unknown scheduler {self.scheduler_name!r}; "
                    f"available: {available_schedulers()}"
                )
            completed = frozenset(
                index for index, run_id in enumerate(self.run_ids)
                if self._states.get(run_id, ("pending", 0))[0]
                in ("done", "quarantined")
            )
            scheduler = factory(
                self.specs, self.sweep_seed, completed
            )
            while True:
                index = scheduler.ask()
                if index is None:
                    break
                state, record = self._run_one(index)
                self.report.executed += 1
                scheduler.tell(index, state, record)
                if (
                    self.max_failures is not None
                    and self.report.quarantined > self.max_failures
                ):
                    self.report.aborted = True
                    self._journal_event(
                        SWEEP_SCOPE, "aborted",
                        detail=f"quarantined={self.report.quarantined} "
                               f"> max_failures={self.max_failures}",
                    )
                    break
            self.report.pending = self.report.total - (
                self.report.done + self.report.quarantined
            )
            if not self.report.aborted:
                self._assemble_store()
                self._journal_event(
                    SWEEP_SCOPE, "complete",
                    detail=f"done={self.report.done} "
                           f"quarantined={self.report.quarantined}",
                )
            return self.report
        finally:
            self.journal.close()

    def _assemble_store(self) -> None:
        """Assemble ``results.json`` from the per-run files, in grid
        order, through the byte-level store writer — so an interrupted
        and resumed sweep ships the identical bytes."""
        records: list[dict] = []
        for run_id in self.run_ids:
            state, _ = self._states.get(run_id, ("pending", 0))
            if state != "done":
                continue
            with self._run_file(run_id).open() as handle:
                records.append(json.load(handle)["record"])
        save_records(records, self.store_path)
        self.report.store_path = str(self.store_path)
