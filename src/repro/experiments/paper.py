"""One function per table/figure of the paper's evaluation section.

Every function regenerates the corresponding artifact at a configurable
scale and returns an :class:`ExperimentOutput` holding both the raw
results and a formatted, paper-style table. The benchmark harness under
``benchmarks/`` calls these once each; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import AdaptiveBNSelection, optimal_pool_size
from ..fl.training import server_pretrain
from ..metrics.flops import training_flops_per_sample
from ..metrics.tracker import RunResult
from ..nn.models import build_model
from ..pruning import generate_candidate_pool, model_blocks
from ..sparse.storage import bytes_to_mb
from .configs import ScalePreset, get_scale
from .reporting import (
    format_accuracy_matrix,
    format_density_series,
    format_table,
    format_table1,
)
from .runner import make_context, run_experiment

__all__ = [
    "ExperimentOutput",
    "fig2_block_partition",
    "fig3_density_sweep",
    "table1_accuracy_and_cost",
    "fig4_ablation",
    "fig5_pool_size",
    "table2_bn_overhead",
    "table3_schedules",
    "fig6_noniid",
    "table4_small_model_datasets",
    "table5_small_model_densities",
]

FIG3_METHODS = ("fl-pqsu", "snip", "synflow", "prunefl", "feddst", "fedtiny")
TABLE1_METHODS = (
    "fl-pqsu", "snip", "synflow", "prunefl", "feddst", "lotteryfl", "fedtiny",
)
ABLATION_METHODS = (
    "vanilla", "adaptive_bn_only", "vanilla+progressive", "fedtiny",
)


@dataclass
class ExperimentOutput:
    """Raw results plus the formatted paper-style artifact."""

    experiment_id: str
    table: str
    results: list[RunResult] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - console convenience
        return f"== {self.experiment_id} ==\n{self.table}"


def _resolve(scale: str | ScalePreset) -> ScalePreset:
    return get_scale(scale) if isinstance(scale, str) else scale


# ----------------------------------------------------------------------
# Fig. 2 — block partition of the two models
# ----------------------------------------------------------------------

def fig2_block_partition(
    scale: str | ScalePreset = "bench",
) -> ExperimentOutput:
    """Print the five-block partition of VGG-11 and ResNet-18."""
    preset = _resolve(scale)
    rows = []
    for model_name in ("vgg11", "resnet18"):
        model = build_model(
            model_name,
            width_multiplier=preset.width_multiplier,
            image_size=preset.image_size,
        )
        for index, block in enumerate(model_blocks(model), start=1):
            rows.append([model_name, f"block {index}", ", ".join(block)])
    table = format_table(["Model", "Block", "Prunable layers"], rows)
    return ExperimentOutput("fig2", table, data={"rows": rows})


# ----------------------------------------------------------------------
# Fig. 3 — accuracy vs density on four datasets
# ----------------------------------------------------------------------

def fig3_density_sweep(
    scale: str | ScalePreset = "bench",
    datasets: tuple[str, ...] = ("cifar10", "svhn", "cifar100", "cinic10"),
    densities: tuple[float, ...] = (0.01, 0.05, 0.25),
    methods: tuple[str, ...] = FIG3_METHODS,
    seed: int = 0,
) -> ExperimentOutput:
    """Top-1 accuracy of every method across the density grid."""
    preset = _resolve(scale)
    results: list[RunResult] = []
    series: dict[str, dict[str, dict[float, float]]] = {}
    for dataset in datasets:
        series[dataset] = {method: {} for method in methods}
        for density in densities:
            for method in methods:
                result = run_experiment(
                    method, "resnet18", dataset, density,
                    scale=preset, seed=seed,
                )
                results.append(result)
                series[dataset][method][density] = result.final_accuracy
    sections = []
    for dataset in datasets:
        sections.append(
            f"[{dataset}]\n" + format_density_series(series[dataset])
        )
    return ExperimentOutput(
        "fig3", "\n\n".join(sections), results=results,
        data={"series": series},
    )


# ----------------------------------------------------------------------
# Table I — accuracy + max training FLOPs + memory footprint
# ----------------------------------------------------------------------

def table1_accuracy_and_cost(
    scale: str | ScalePreset = "bench",
    models: tuple[str, ...] = ("resnet18", "vgg11"),
    densities: tuple[float, ...] = (0.05, 0.02, 0.01),
    methods: tuple[str, ...] = TABLE1_METHODS,
    dataset: str = "cifar10",
    seed: int = 0,
) -> ExperimentOutput:
    """The full cost/accuracy comparison, one block per model."""
    preset = _resolve(scale)
    results: list[RunResult] = []
    sections = []
    data: dict = {}
    for model_name in models:
        fedavg = run_experiment(
            "fedavg", model_name, dataset, 1.0, scale=preset, seed=seed,
        )
        results.append(fedavg)
        dense_flops = fedavg.max_training_flops_per_round
        by_density: dict[float, list[RunResult]] = {1.0: [fedavg]}
        for density in densities:
            rows = []
            for method in methods:
                result = run_experiment(
                    method, model_name, dataset, density,
                    scale=preset, seed=seed,
                )
                results.append(result)
                rows.append(result)
            by_density[density] = rows
        sections.append(
            f"[{model_name}] (dense FLOPs/round = {dense_flops:.3e})\n"
            + format_table1(by_density, dense_flops)
        )
        data[model_name] = {
            str(d): [r.to_dict() for r in rs]
            for d, rs in by_density.items()
        }
    return ExperimentOutput(
        "table1", "\n\n".join(sections), results=results, data=data,
    )


# ----------------------------------------------------------------------
# Fig. 4 — module ablation
# ----------------------------------------------------------------------

def fig4_ablation(
    scale: str | ScalePreset = "bench",
    densities: tuple[float, ...] = (0.01, 0.05, 0.25),
    dataset: str = "cifar10",
    model: str = "resnet18",
    seed: int = 0,
) -> ExperimentOutput:
    """Vanilla / adaptive BN / vanilla+progressive / FedTiny."""
    preset = _resolve(scale)
    results: list[RunResult] = []
    series: dict[str, dict[float, float]] = {
        method: {} for method in ABLATION_METHODS
    }
    for density in densities:
        for method in ABLATION_METHODS:
            result = run_experiment(
                method, model, dataset, density, scale=preset, seed=seed,
            )
            results.append(result)
            series[method][density] = result.final_accuracy
    return ExperimentOutput(
        "fig4", format_density_series(series), results=results,
        data={"series": series},
    )


# ----------------------------------------------------------------------
# Fig. 5 — candidate pool size vs accuracy and communication
# ----------------------------------------------------------------------

def fig5_pool_size(
    scale: str | ScalePreset = "bench",
    densities: tuple[float, ...] = (0.05, 0.02, 0.01),
    pool_sizes: tuple[int, ...] = (1, 2, 4, 8),
    dataset: str = "cifar10",
    model: str = "vgg11",
    seed: int = 0,
) -> ExperimentOutput:
    """Accuracy and selection communication cost per pool size."""
    preset = _resolve(scale)
    results: list[RunResult] = []
    rows = []
    accuracy_data: dict = {}
    comm_data: dict = {}
    for density in densities:
        accuracy_data[density] = {}
        comm_data[density] = {}
        for pool_size in pool_sizes:
            result = run_experiment(
                "fedtiny", model, dataset, density,
                scale=preset, pool_size=pool_size, seed=seed,
            )
            results.append(result)
            comm_mb = bytes_to_mb(result.selection_comm_bytes)
            accuracy_data[density][pool_size] = result.final_accuracy
            comm_data[density][pool_size] = comm_mb
            rows.append(
                [
                    f"{density:g}",
                    str(pool_size),
                    f"{density * pool_size:.3f}",
                    f"{result.final_accuracy:.4f}",
                    f"{comm_mb:.3f}MB",
                ]
            )
    table = format_table(
        ["Density", "Pool size", "Density*Pool", "Top-1 Acc",
         "Selection comm"],
        rows,
    )
    return ExperimentOutput(
        "fig5", table, results=results,
        data={"accuracy": accuracy_data, "comm_mb": comm_data},
    )


# ----------------------------------------------------------------------
# Table II — extra FLOPs of the adaptive BN selection module
# ----------------------------------------------------------------------

def table2_bn_overhead(
    scale: str | ScalePreset = "bench",
    densities: tuple[float, ...] = (0.05, 0.02, 0.01),
    dataset: str = "cifar10",
    model: str = "vgg11",
    seed: int = 0,
) -> ExperimentOutput:
    """Selection-module FLOPs vs one round of sparse training.

    No federated training needed: this runs only pretraining, pool
    generation and the selection protocol, then compares against the
    analytic per-round training cost (paper Table II).
    """
    preset = _resolve(scale)
    rows = []
    data = {}
    for density in densities:
        ctx, public = make_context(model, dataset, preset, seed=seed)
        server_pretrain(
            ctx.model, public, epochs=preset.pretrain_epochs,
            batch_size=preset.batch_size, lr=preset.lr, seed=seed,
        )
        from ..fl.state import get_state

        ctx.server.commit_state(get_state(ctx.model))
        pool_size = min(optimal_pool_size(density), 25)
        pool = generate_candidate_pool(
            ctx.model, density, pool_size, np.random.default_rng(seed),
        )
        selector = AdaptiveBNSelection(batch_size=preset.batch_size)
        chosen, report = selector.select(ctx, pool)
        train_flops = (
            training_flops_per_sample(ctx.profile, chosen.masks)
            * preset.local_epochs
            * max(ctx.sample_counts)
        )
        rows.append(
            [
                f"{density:g}",
                str(pool_size),
                f"{report.flops_per_device:.3e}",
                f"{train_flops:.3e}",
                f"{report.flops_per_device / train_flops:.2f}",
            ]
        )
        data[density] = {
            "pool_size": pool_size,
            "selection_flops": report.flops_per_device,
            "train_flops_per_round": train_flops,
        }
    table = format_table(
        ["Density", "Pool size", "Extra FLOPs in selection",
         "Training FLOPs in one round", "Ratio"],
        rows,
    )
    return ExperimentOutput("table2", table, data=data)


# ----------------------------------------------------------------------
# Table III — pruning scheduling strategies
# ----------------------------------------------------------------------

def table3_schedules(
    scale: str | ScalePreset = "bench",
    densities: tuple[float, ...] = (0.05, 0.02, 0.01),
    dataset: str = "cifar10",
    model: str = "vgg11",
    seed: int = 0,
) -> ExperimentOutput:
    """Granularity x order x frequency grid (paper Table III)."""
    preset = _resolve(scale)
    # (label, granularity, backward, delta_rounds, stop_round) scaled to
    # the preset's round budget the same way the paper scales 5/10/25/50
    # against Rstop=100/50.
    base_delta, base_stop = preset.delta_rounds, preset.stop_round
    strategies = [
        ("layer", "layer", False, base_delta, base_stop),
        ("layer (b)", "layer", True, base_delta, base_stop),
        ("block", "block", False, base_delta, base_stop),
        ("block (b)", "block", True, base_delta, base_stop),
        ("block (b) fast", "block", True,
         max(1, base_delta // 2), max(1, base_stop // 2)),
        ("entire", "entire", False, base_delta * 2, base_stop),
        ("entire fast", "entire", False, base_delta, max(1, base_stop // 2)),
    ]
    results: list[RunResult] = []
    rows = []
    data: dict = {}
    for label, granularity, backward, delta, stop in strategies:
        row = [label, f"{delta}/{stop}"]
        data[label] = {}
        for density in densities:
            schedule = preset.schedule(
                granularity=granularity, backward_order=backward,
                delta_rounds=delta, stop_round=stop,
            )
            result = run_experiment(
                "fedtiny", model, dataset, density,
                scale=preset, schedule=schedule, seed=seed,
            )
            results.append(result)
            row.append(f"{result.final_accuracy:.4f}")
            data[label][density] = result.final_accuracy
        rows.append(row)
    headers = ["Granularity", "dR/Rstop"] + [
        f"Density {d:g}" for d in densities
    ]
    return ExperimentOutput(
        "table3", format_table(headers, rows), results=results, data=data,
    )


# ----------------------------------------------------------------------
# Fig. 6 — heterogeneous data distributions
# ----------------------------------------------------------------------

def fig6_noniid(
    scale: str | ScalePreset = "bench",
    alphas: tuple[float, ...] = (0.3, 0.5, 1.0, 10.0),
    methods: tuple[str, ...] = ("synflow", "prunefl", "fedtiny"),
    density: float = 0.02,
    dataset: str = "cifar10",
    model: str = "resnet18",
    seed: int = 0,
) -> ExperimentOutput:
    """Accuracy vs Dirichlet alpha (lower alpha = more non-iid)."""
    preset = _resolve(scale)
    results: list[RunResult] = []
    series: dict[str, dict[float, float]] = {m: {} for m in methods}
    for alpha in alphas:
        for method in methods:
            result = run_experiment(
                method, model, dataset, density,
                scale=preset, dirichlet_alpha=alpha, seed=seed,
            )
            results.append(result)
            series[method][alpha] = result.final_accuracy
    rows = []
    for method in methods:
        rows.append(
            [method]
            + [f"{series[method][alpha]:.4f}" for alpha in alphas]
        )
    headers = ["Method"] + [f"alpha={a:g}" for a in alphas]
    return ExperimentOutput(
        "fig6", format_table(headers, rows), results=results,
        data={"series": series},
    )


# ----------------------------------------------------------------------
# Tables IV & V — small dense model comparison
# ----------------------------------------------------------------------

def table4_small_model_datasets(
    scale: str | ScalePreset = "bench",
    datasets: tuple[str, ...] = ("cifar10", "cinic10", "svhn", "cifar100"),
    density: float = 0.02,
    methods: tuple[str, ...] = (
        "synflow", "prunefl", "small_model", "fedtiny",
    ),
    model: str = "resnet18",
    seed: int = 0,
) -> ExperimentOutput:
    """ResNet-18 at a fixed low density vs a parameter-matched small CNN."""
    preset = _resolve(scale)
    results: list[RunResult] = []
    matrix: dict[str, dict[str, float]] = {m: {} for m in methods}
    for dataset in datasets:
        for method in methods:
            result = run_experiment(
                method, model, dataset, density, scale=preset, seed=seed,
            )
            results.append(result)
            matrix[method][dataset] = result.final_accuracy
    return ExperimentOutput(
        "table4", format_accuracy_matrix(matrix), results=results,
        data={"matrix": matrix},
    )


def table5_small_model_densities(
    scale: str | ScalePreset = "bench",
    densities: tuple[float, ...] = (0.05, 0.02, 0.01, 0.006),
    dataset: str = "cifar10",
    methods: tuple[str, ...] = (
        "synflow", "prunefl", "small_model", "fedtiny",
    ),
    model: str = "resnet18",
    seed: int = 0,
) -> ExperimentOutput:
    """Small models matched to each density on CIFAR-10 (paper Table V)."""
    preset = _resolve(scale)
    results: list[RunResult] = []
    matrix: dict[str, dict[str, float]] = {m: {} for m in methods}
    for density in densities:
        for method in methods:
            result = run_experiment(
                method, model, dataset, density, scale=preset, seed=seed,
            )
            results.append(result)
            matrix[method][f"{density:g}"] = result.final_accuracy
    return ExperimentOutput(
        "table5", format_accuracy_matrix(matrix), results=results,
        data={"matrix": matrix},
    )
