"""Persist experiment results to JSON for later analysis.

Benchmark runs are expensive; this module saves :class:`RunResult`
records (including the full per-round trajectory) so tables and plots
can be regenerated without re-running the federation.

Writes are crash-safe: the payload lands in a sibling temp file which
is fsync'd and moved into place with :func:`os.replace` — the same
discipline as :func:`repro.nn.checkpoint.save_run_checkpoint` — so a
process killed mid-dump leaves the previous store intact instead of a
torn JSON file.

Format history: v2 added the PR-8 failure accounting (per-round
``faults_injected``/``retries``/``quarantined_uploads``/
``recovery_actions`` plus the structured ``failures`` log) to the
round-trip; v1 files load leniently with those fields defaulted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..fl.faults import FailureRecord
from ..metrics.tracker import RoundRecord, RunResult

__all__ = ["save_results", "load_results", "result_to_record",
           "record_to_result", "save_records", "atomic_write_json"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, _FORMAT_VERSION)


def atomic_write_json(path: str | Path, payload: dict) -> None:
    """Dump ``payload`` to ``path`` via write-temp-fsync-``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def result_to_record(result: RunResult) -> dict:
    """Full JSON-safe dict including the per-round trajectory."""
    record = result.to_dict()
    record["rounds"] = [
        {
            "round_index": r.round_index,
            "test_accuracy": r.test_accuracy,
            "test_loss": r.test_loss,
            "density": r.density,
            "upload_bytes": r.upload_bytes,
            "download_bytes": r.download_bytes,
            "train_flops": r.train_flops,
            "sim_time_seconds": r.sim_time_seconds,
            "dropped_clients": r.dropped_clients,
            "faults_injected": r.faults_injected,
            "retries": r.retries,
            "quarantined_uploads": r.quarantined_uploads,
            "recovery_actions": r.recovery_actions,
        }
        for r in result.rounds
    ]
    return record


def record_to_result(record: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_record` output.

    Lenient on fields newer than the record (v1 files carry no failure
    accounting): missing counters default to zero and the failure log
    to empty, so old stores keep loading.
    """
    result = RunResult(
        method=record["method"],
        dataset=record["dataset"],
        model=record["model"],
        target_density=record["target_density"],
    )
    for row in record.get("rounds", []):
        result.record_round(
            RoundRecord(
                round_index=row["round_index"],
                test_accuracy=row["test_accuracy"],
                test_loss=row["test_loss"],
                density=row["density"],
                upload_bytes=row["upload_bytes"],
                download_bytes=row["download_bytes"],
                train_flops=row["train_flops"],
                sim_time_seconds=row.get("sim_time_seconds", 0.0),
                dropped_clients=row.get("dropped_clients", 0),
                faults_injected=row.get("faults_injected", 0),
                retries=row.get("retries", 0),
                quarantined_uploads=row.get("quarantined_uploads", 0),
                recovery_actions=row.get("recovery_actions", 0),
            )
        )
    result.memory_footprint_bytes = record.get("memory_footprint_bytes", 0)
    result.selection_comm_bytes = record.get("selection_comm_bytes", 0)
    result.selection_flops = record.get("selection_flops", 0.0)
    result.metadata = dict(record.get("metadata", {}))
    result.failures = [
        FailureRecord(
            round_index=row["round_index"],
            client_id=row["client_id"],
            attempt=row["attempt"],
            kind=row["kind"],
            action=row["action"],
            detail=row.get("detail", ""),
        )
        for row in record.get("failures", [])
    ]
    return result


def save_records(records: list[dict], path: str | Path) -> None:
    """Atomically write already-encoded result records to a store file.

    This is the byte-level writer behind :func:`save_results`; the
    sweep orchestrator uses it directly so an assembled store is
    byte-identical whether the records came from live runs or from
    per-run files written by an earlier (possibly killed) sweep.
    """
    atomic_write_json(path, {
        "format_version": _FORMAT_VERSION,
        "results": records,
    })


def save_results(results: list[RunResult], path: str | Path) -> None:
    """Write a list of results to a JSON file (creates parent dirs)."""
    save_records([result_to_record(r) for r in results], path)


def load_results(path: str | Path) -> list[RunResult]:
    """Read results written by :func:`save_results`.

    Accepts the current format and the lenient v1 read path; anything
    else raises.
    """
    with Path(path).open() as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported results format version {version!r} "
            f"(expected one of {list(_SUPPORTED_VERSIONS)})"
        )
    return [record_to_result(r) for r in payload["results"]]
