"""Persist experiment results to JSON for later analysis.

Benchmark runs are expensive; this module saves :class:`RunResult`
records (including the full per-round trajectory) so tables and plots
can be regenerated without re-running the federation.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..metrics.tracker import RoundRecord, RunResult

__all__ = ["save_results", "load_results", "result_to_record",
           "record_to_result"]

_FORMAT_VERSION = 1


def result_to_record(result: RunResult) -> dict:
    """Full JSON-safe dict including the per-round trajectory."""
    record = result.to_dict()
    record["rounds"] = [
        {
            "round_index": r.round_index,
            "test_accuracy": r.test_accuracy,
            "test_loss": r.test_loss,
            "density": r.density,
            "upload_bytes": r.upload_bytes,
            "download_bytes": r.download_bytes,
            "train_flops": r.train_flops,
            "sim_time_seconds": r.sim_time_seconds,
            "dropped_clients": r.dropped_clients,
        }
        for r in result.rounds
    ]
    return record


def record_to_result(record: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_record` output."""
    result = RunResult(
        method=record["method"],
        dataset=record["dataset"],
        model=record["model"],
        target_density=record["target_density"],
    )
    for row in record.get("rounds", []):
        result.record_round(
            RoundRecord(
                round_index=row["round_index"],
                test_accuracy=row["test_accuracy"],
                test_loss=row["test_loss"],
                density=row["density"],
                upload_bytes=row["upload_bytes"],
                download_bytes=row["download_bytes"],
                train_flops=row["train_flops"],
                sim_time_seconds=row.get("sim_time_seconds", 0.0),
                dropped_clients=row.get("dropped_clients", 0),
            )
        )
    result.memory_footprint_bytes = record.get("memory_footprint_bytes", 0)
    result.selection_comm_bytes = record.get("selection_comm_bytes", 0)
    result.selection_flops = record.get("selection_flops", 0.0)
    result.metadata = dict(record.get("metadata", {}))
    return result


def save_results(results: list[RunResult], path: str | Path) -> None:
    """Write a list of results to a JSON file (creates parent dirs)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": _FORMAT_VERSION,
        "results": [result_to_record(r) for r in results],
    }
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)


def load_results(path: str | Path) -> list[RunResult]:
    """Read results written by :func:`save_results` (strict on version)."""
    with Path(path).open() as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return [record_to_result(r) for r in payload["results"]]
