"""Terminal (ASCII) line plots for experiment series.

The paper's figures are line plots (accuracy vs density, accuracy vs
alpha, cost vs pool size). This module renders the same series in a
terminal so the benchmark harness and CLI can show the *shape* of each
figure without a plotting dependency.
"""

from __future__ import annotations

import math

__all__ = ["ascii_line_plot"]

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def ascii_line_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Args:
        series: mapping of series name to (x, y) points.
        log_x: plot x on a log10 axis (densities span decades).

    Returns:
        A multi-line string: the chart, axis ranges, and a legend
        mapping each marker character to its series name.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    def transform_x(x: float) -> float:
        if log_x:
            if x <= 0:
                raise ValueError("log_x requires positive x values")
            return math.log10(x)
        return x

    points_by_name = {
        name: [(transform_x(x), y) for x, y in sorted(points)]
        for name, points in series.items()
        if points
    }
    if not points_by_name:
        raise ValueError("all series are empty")
    all_x = [x for pts in points_by_name.values() for x, _ in pts]
    all_y = [y for pts in points_by_name.values() for _, y in pts]
    x_low, x_high = min(all_x), max(all_x)
    y_low, y_high = min(all_y), max(all_y)
    if y_low == y_high:
        y_low -= 0.5
        y_high += 0.5

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, points) in enumerate(points_by_name.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in points:
            col = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:8.3f} |"
        elif row_index == height - 1:
            label = f"{y_low:8.3f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    x_low_label = 10 ** x_low if log_x else x_low
    x_high_label = 10 ** x_high if log_x else x_high
    axis = f"{x_label}: {x_low_label:g} .. {x_high_label:g}"
    if log_x:
        axis += " (log scale)"
    lines.append(f"          {axis}   [{y_label}]")
    lines.append("          " + "   ".join(legend))
    return "\n".join(lines)
