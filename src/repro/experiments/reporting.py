"""Paper-style table and series formatting for experiment results."""

from __future__ import annotations

from ..metrics.tracker import RunResult
from ..sparse.storage import bytes_to_mb

__all__ = [
    "format_table",
    "table1_row",
    "format_table1",
    "format_density_series",
    "format_accuracy_matrix",
]


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table1_row(
    result: RunResult, dense_flops_per_round: float
) -> list[str]:
    """One Table-I row: method, accuracy, relative FLOPs, memory MB."""
    relative = (
        result.max_training_flops_per_round / dense_flops_per_round
        if dense_flops_per_round > 0
        else float("nan")
    )
    return [
        result.method,
        f"{result.final_accuracy:.4f}",
        f"{relative:.3f}x",
        f"{bytes_to_mb(result.memory_footprint_bytes):.2f}MB",
    ]


def format_table1(
    results_by_density: dict[float, list[RunResult]],
    dense_flops_per_round: float,
) -> str:
    """The paper's Table I layout: one block per density."""
    headers = ["Density", "Method", "Top-1 Acc", "Max Train FLOPs", "Memory"]
    rows = []
    for density in sorted(results_by_density, reverse=True):
        for result in results_by_density[density]:
            cells = table1_row(result, dense_flops_per_round)
            rows.append([f"{density:g}"] + cells)
    return format_table(headers, rows)


def format_density_series(
    series: dict[str, dict[float, float]]
) -> str:
    """Fig.-3-style series: accuracy per method per density."""
    densities = sorted(
        {d for per_method in series.values() for d in per_method}
    )
    headers = ["Method"] + [f"d={d:g}" for d in densities]
    rows = []
    for method in sorted(series):
        row = [method]
        for density in densities:
            value = series[method].get(density)
            row.append("-" if value is None else f"{value:.4f}")
        rows.append(row)
    return format_table(headers, rows)


def format_accuracy_matrix(
    matrix: dict[str, dict[str, float]], column_label: str = "Dataset"
) -> str:
    """Table-IV/V-style matrix: method rows, named columns."""
    columns: list[str] = []
    for per_method in matrix.values():
        for key in per_method:
            if key not in columns:
                columns.append(key)
    headers = ["Method"] + list(columns)
    rows = []
    for method in matrix:
        row = [method]
        for column in columns:
            value = matrix[method].get(column)
            row.append("-" if value is None else f"{value:.4f}")
        rows.append(row)
    return format_table(headers, rows)
