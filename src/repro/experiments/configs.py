"""Experiment scale presets (the method registry lives in repro.methods).

The paper's experiments run ResNet-18/VGG-11 for 200-300 federated
rounds on full datasets; this reproduction exposes the same experiment
definitions at three scales:

- ``tiny``  — seconds; used by the integration test suite;
- ``bench`` — minutes; used by the benchmark harness that regenerates
  every paper table and figure (qualitative shapes, not absolute
  numbers);
- ``paper`` — the paper's own hyper-parameters (documented; running it
  on this NumPy substrate would take GPU-class time).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fl.simulation import FLConfig
from ..pruning.schedule import PruningSchedule

__all__ = ["ScalePreset", "SCALES", "get_scale", "METHOD_NAMES"]


@dataclass(frozen=True)
class ScalePreset:
    """Everything that changes between tiny / bench / paper scale."""

    name: str
    width_multiplier: float
    image_size: int
    num_train: int
    num_test: int
    public_fraction: float  # share of train data held by the server as D_s
    num_clients: int
    rounds: int
    local_epochs: int
    batch_size: int
    lr: float
    delta_rounds: int
    stop_round: int
    pretrain_epochs: int
    snip_iterations: int
    synflow_iterations: int
    max_pool_size: int  # cap on the auto pool size C* = 0.1/d

    def fl_config(
        self,
        dirichlet_alpha: float | None = 0.5,
        seed: int = 0,
        rounds: int | None = None,
        local_epochs: int | None = None,
        participation_fraction: float | None = None,
        quantize_upload_bits: int | None = None,
        executor: str | None = None,
        executor_workers: int | None = None,
        fleet: str | None = None,
        round_policy: str | None = None,
        deadline_fraction: float | None = None,
        deadline_over_select: float | None = None,
        dropout_rate: float | None = None,
        async_buffer_fraction: float | None = None,
        staleness_discount: float | None = None,
        client_backend: str | None = None,
        virtual_shard_size: int | None = None,
        aggregation_fan_in: int | None = None,
        faults: str | None = None,
        retry_max_attempts: int | None = None,
        retry_backoff_seconds: float | None = None,
        retry_timeout_seconds: float | None = None,
        transport_timeout: float | None = None,
        heartbeat_interval: float | None = None,
        max_reconnects: int | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int | None = None,
        resume: bool = False,
    ) -> FLConfig:
        return FLConfig(
            num_clients=self.num_clients,
            rounds=rounds if rounds is not None else self.rounds,
            local_epochs=(
                local_epochs if local_epochs is not None
                else self.local_epochs
            ),
            batch_size=self.batch_size,
            lr=self.lr,
            dirichlet_alpha=dirichlet_alpha,
            participation_fraction=(
                participation_fraction
                if participation_fraction is not None else 1.0
            ),
            quantize_upload_bits=quantize_upload_bits,
            executor=executor if executor is not None else "serial",
            executor_workers=executor_workers,
            fleet=fleet if fleet is not None else "uniform",
            round_policy=(
                round_policy if round_policy is not None else "sync"
            ),
            deadline_fraction=(
                deadline_fraction if deadline_fraction is not None else 1.5
            ),
            deadline_over_select=(
                deadline_over_select
                if deadline_over_select is not None else 1.5
            ),
            dropout_rate=dropout_rate if dropout_rate is not None else 0.1,
            async_buffer_fraction=(
                async_buffer_fraction
                if async_buffer_fraction is not None else 0.5
            ),
            staleness_discount=(
                staleness_discount
                if staleness_discount is not None else 0.5
            ),
            client_backend=(
                client_backend
                if client_backend is not None else "materialized"
            ),
            virtual_shard_size=virtual_shard_size,
            aggregation_fan_in=aggregation_fan_in,
            faults=faults,
            retry_max_attempts=(
                retry_max_attempts if retry_max_attempts is not None else 3
            ),
            retry_backoff_seconds=(
                retry_backoff_seconds
                if retry_backoff_seconds is not None else 0.5
            ),
            retry_timeout_seconds=(
                retry_timeout_seconds
                if retry_timeout_seconds is not None else 5.0
            ),
            transport_timeout=(
                transport_timeout
                if transport_timeout is not None else 30.0
            ),
            heartbeat_interval=(
                heartbeat_interval
                if heartbeat_interval is not None else 1.0
            ),
            max_reconnects=(
                max_reconnects if max_reconnects is not None else 3
            ),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=(
                checkpoint_every if checkpoint_every is not None else 1
            ),
            resume=resume,
            seed=seed,
        )

    def schedule(
        self, granularity: str = "block", backward_order: bool = True,
        delta_rounds: int | None = None, stop_round: int | None = None,
    ) -> PruningSchedule:
        return PruningSchedule(
            delta_rounds=(
                delta_rounds if delta_rounds is not None else
                self.delta_rounds
            ),
            stop_round=(
                stop_round if stop_round is not None else self.stop_round
            ),
            granularity=granularity,
            backward_order=backward_order,
        )


SCALES: dict[str, ScalePreset] = {
    "tiny": ScalePreset(
        name="tiny",
        width_multiplier=0.125,
        image_size=16,
        num_train=400,
        num_test=150,
        public_fraction=0.15,
        num_clients=4,
        rounds=4,
        local_epochs=1,
        batch_size=32,
        lr=0.05,
        delta_rounds=2,
        stop_round=3,
        pretrain_epochs=1,
        snip_iterations=3,
        synflow_iterations=5,
        max_pool_size=3,
    ),
    "bench": ScalePreset(
        name="bench",
        width_multiplier=0.125,
        image_size=16,
        num_train=600,
        num_test=240,
        public_fraction=0.12,
        num_clients=6,
        rounds=10,
        local_epochs=1,
        batch_size=32,
        lr=0.05,
        delta_rounds=2,
        stop_round=6,
        pretrain_epochs=2,
        snip_iterations=4,
        synflow_iterations=10,
        max_pool_size=6,
    ),
    "paper": ScalePreset(
        name="paper",
        width_multiplier=1.0,
        image_size=32,
        num_train=50_000,
        num_test=10_000,
        public_fraction=0.02,
        num_clients=10,
        rounds=300,
        local_epochs=5,
        batch_size=64,
        lr=0.05,
        delta_rounds=10,
        stop_round=100,
        pretrain_epochs=2,
        snip_iterations=100,
        synflow_iterations=100,
        max_pool_size=50,
    ),
}


def get_scale(name: str) -> ScalePreset:
    """Look up a scale preset by name (tiny / bench / paper)."""
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(SCALES)}")
    return SCALES[name]


def __getattr__(name: str):
    # METHOD_NAMES is derived live from the method registry (PEP 562)
    # so it stays lazy — importing this module doesn't load the method
    # catalog — and reflects methods registered after import.
    if name == "METHOD_NAMES":
        from ..methods import method_names

        return method_names()
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
