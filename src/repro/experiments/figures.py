"""Render paper figures as ASCII charts from experiment outputs.

Couples the per-figure experiment functions (`repro.experiments.paper`)
with the terminal plotter (`repro.experiments.plotting`), so the CLI
and notebooks can show the *shape* of Fig. 3/4/5/6 without any plotting
dependency.
"""

from __future__ import annotations

from .paper import ExperimentOutput
from .plotting import ascii_line_plot

__all__ = [
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_accuracy_curves",
]


def render_fig3(output: ExperimentOutput, dataset: str) -> str:
    """Accuracy-vs-density chart for one dataset of a fig3 output."""
    series = output.data["series"]
    if dataset not in series:
        raise KeyError(
            f"dataset {dataset!r} not in output; have {sorted(series)}"
        )
    plot_series = {
        method: sorted(per_density.items())
        for method, per_density in series[dataset].items()
    }
    return ascii_line_plot(
        plot_series, log_x=True, x_label="density",
        y_label=f"top-1 accuracy ({dataset})",
    )


def render_fig4(output: ExperimentOutput) -> str:
    """Ablation chart (accuracy vs density per arm)."""
    plot_series = {
        method: sorted(per_density.items())
        for method, per_density in output.data["series"].items()
    }
    return ascii_line_plot(
        plot_series, log_x=True, x_label="density",
        y_label="top-1 accuracy",
    )


def render_fig5(output: ExperimentOutput) -> tuple[str, str]:
    """(accuracy chart, communication chart) vs density * pool size."""
    accuracy = {
        f"d={density:g}": sorted(
            (density * pool, acc) for pool, acc in per_pool.items()
        )
        for density, per_pool in output.data["accuracy"].items()
    }
    comm = {
        f"d={density:g}": sorted(
            (density * pool, mb) for pool, mb in per_pool.items()
        )
        for density, per_pool in output.data["comm_mb"].items()
    }
    return (
        ascii_line_plot(accuracy, x_label="density * pool size",
                        y_label="top-1 accuracy"),
        ascii_line_plot(comm, x_label="density * pool size",
                        y_label="selection comm (MB)"),
    )


def render_fig6(output: ExperimentOutput) -> str:
    """Accuracy vs Dirichlet alpha per method."""
    plot_series = {
        method: sorted(per_alpha.items())
        for method, per_alpha in output.data["series"].items()
    }
    return ascii_line_plot(
        plot_series, log_x=True, x_label="alpha",
        y_label="top-1 accuracy",
    )


def render_accuracy_curves(results, width: int = 60, height: int = 14) -> str:
    """Accuracy-vs-round chart for a list of RunResults."""
    plot_series = {
        f"{r.method}@{r.target_density:g}": [
            (float(i), acc) for i, acc in r.accuracy_curve()
        ]
        for r in results
    }
    return ascii_line_plot(
        plot_series, width=width, height=height,
        x_label="round", y_label="top-1 accuracy",
    )
