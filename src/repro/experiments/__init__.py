"""Experiment registry, runners and paper-style reporting."""

from .configs import SCALES, ScalePreset, get_scale
from .figures import (
    render_accuracy_curves,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
)
from .plotting import ascii_line_plot
from .reporting import (
    format_accuracy_matrix,
    format_density_series,
    format_table,
    format_table1,
    table1_row,
)
from .runner import (
    build_method,
    make_context,
    prepare_data,
    run_experiment,
    run_spec,
)
from .specs import RunSpec, expand_grid
from .store import (
    load_results,
    record_to_result,
    result_to_record,
    save_records,
    save_results,
)
from .sweep import SweepKilled, SweepOrchestrator, SweepReport


def __getattr__(name: str):
    # Live view of the method registry (see configs.__getattr__).
    if name == "METHOD_NAMES":
        from .configs import METHOD_NAMES

        return METHOD_NAMES
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "METHOD_NAMES",
    "RunSpec",
    "SCALES",
    "ScalePreset",
    "SweepKilled",
    "SweepOrchestrator",
    "SweepReport",
    "expand_grid",
    "run_spec",
    "save_records",
    "ascii_line_plot",
    "build_method",
    "format_accuracy_matrix",
    "format_density_series",
    "format_table",
    "format_table1",
    "get_scale",
    "load_results",
    "make_context",
    "prepare_data",
    "record_to_result",
    "render_accuracy_curves",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "result_to_record",
    "run_experiment",
    "save_results",
    "table1_row",
]
