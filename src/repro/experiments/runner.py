"""Build and run a named (method, model, dataset, density) experiment.

Methods resolve through the pluggable registry in :mod:`repro.methods`;
this module supplies the data/context plumbing around it. The unit of
work is a :class:`~repro.experiments.specs.RunSpec`: every public entry
point (:func:`run_experiment`, :func:`make_context`, the sweep
orchestrator) funnels into :func:`run_spec`, which builds the
``FLConfig`` exactly once via :meth:`RunSpec.fl_config` — the small-
model branch reuses that same frozen config instead of re-plumbing two
dozen keyword arguments a second time.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..baselines import build_small_model_context
from ..data.dataset import Dataset
from ..data.synthetic import build_dataset
from ..fl.simulation import FederatedContext, FLConfig
from ..methods import build_method, get_method_spec
from ..metrics.tracker import RunResult
from ..nn.models import build_model
from ..pruning.schedule import PruningSchedule
from .configs import ScalePreset, get_scale
from .specs import RunSpec, normalize_overrides

__all__ = [
    "prepare_data",
    "make_context",
    "build_method",
    "run_experiment",
    "run_spec",
]

Splits = tuple[Dataset, Dataset, Dataset]


def prepare_data(
    dataset_name: str, scale: ScalePreset, seed: int = 0
) -> Splits:
    """(public D_s, federated train, test) splits for a named dataset."""
    train, test = build_dataset(
        dataset_name,
        num_train=scale.num_train,
        num_test=scale.num_test,
        image_size=scale.image_size,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 777)
    public, federated = train.split(scale.public_fraction, rng)
    return public, federated, test


def make_context(
    model_name: str,
    dataset_name: str,
    scale: ScalePreset,
    dirichlet_alpha: float | None = 0.5,
    seed: int = 0,
    rounds: int | None = None,
    splits: Splits | None = None,
    config: FLConfig | None = None,
    **config_overrides: Any,
) -> tuple[FederatedContext, Dataset]:
    """A fresh federated context plus the server's public dataset.

    ``splits`` lets callers reuse an already-built
    :func:`prepare_data` result instead of regenerating the dataset.
    ``config`` short-circuits config construction entirely (the spec
    runner passes the one it already built); otherwise any keyword of
    :meth:`ScalePreset.fl_config` is accepted as an override.
    """
    if splits is None:
        splits = prepare_data(dataset_name, scale, seed)
    public, federated, test = splits
    model = build_model(
        model_name,
        num_classes=test.num_classes,
        width_multiplier=scale.width_multiplier,
        image_size=scale.image_size,
        seed=seed + 1,
    )
    if config is None:
        if rounds is not None:
            config_overrides["rounds"] = rounds
        config = scale.fl_config(
            dirichlet_alpha=dirichlet_alpha,
            seed=seed,
            **normalize_overrides(config_overrides),
        )
    elif config_overrides or rounds is not None:
        raise ValueError(
            "make_context takes either a prebuilt config or overrides, "
            "not both"
        )
    ctx = FederatedContext(
        model,
        federated,
        test,
        config,
        dataset_name=dataset_name,
        model_name=model_name,
    )
    return ctx, public


def run_spec(
    spec: RunSpec,
    schedule: PruningSchedule | None = None,
    preset: ScalePreset | None = None,
    config_extras: dict[str, Any] | None = None,
) -> RunResult:
    """Execute one :class:`RunSpec` end to end.

    ``config_extras`` threads execution-only knobs (per-run checkpoint
    directories, resume flags) into the config without changing the
    spec's identity; ``preset`` lets callers pass an ad-hoc
    :class:`ScalePreset` instance instead of a registered scale name.
    """
    if preset is None:
        preset = get_scale(spec.scale)
    splits = prepare_data(spec.dataset, preset, spec.seed)
    config = spec.fl_config(preset, **(config_extras or {}))
    ctx, public = make_context(
        spec.model, spec.dataset, preset,
        seed=spec.seed, splits=splits, config=config,
    )
    method = build_method(
        spec.method, spec.target_density, preset,
        schedule=schedule, pool_size=spec.pool_size,
    )
    if get_method_spec(spec.method).replaces_model:
        # The small model replaces the big one entirely; it reuses the
        # already-built splits and the *same* frozen config — no second
        # trip through the keyword plumbing.
        _, federated, test = splits
        ctx = build_small_model_context(
            ctx, spec.target_density, federated, test, config,
        )
    try:
        return method.run(ctx, public)
    finally:
        ctx.close()


def run_experiment(
    method_name: str,
    model_name: str,
    dataset_name: str,
    target_density: float,
    scale: str | ScalePreset = "bench",
    dirichlet_alpha: float | None = 0.5,
    seed: int = 0,
    schedule: PruningSchedule | None = None,
    pool_size: int | None = None,
    **config_overrides: Any,
) -> RunResult:
    """End-to-end: build data, context and method, then run it.

    Any keyword of :meth:`ScalePreset.fl_config` (``rounds``,
    ``executor``, ``faults``, ``checkpoint_dir``, ...) is accepted and
    folded into the run's :class:`RunSpec`, so this remains a drop-in
    superset of the old 25-keyword signature.
    """
    preset = get_scale(scale) if isinstance(scale, str) else scale
    spec = RunSpec(
        method=method_name,
        model=model_name,
        dataset=dataset_name,
        target_density=target_density,
        scale=preset.name,
        dirichlet_alpha=dirichlet_alpha,
        seed=seed,
        pool_size=pool_size,
        overrides=tuple(config_overrides.items()),
    )
    return run_spec(spec, schedule=schedule, preset=preset)
