"""Build and run a named (method, model, dataset, density) experiment.

Methods resolve through the pluggable registry in :mod:`repro.methods`;
this module supplies the data/context plumbing around it.
"""

from __future__ import annotations

import numpy as np

from ..baselines import build_small_model_context
from ..data.dataset import Dataset
from ..data.synthetic import build_dataset
from ..fl.simulation import FederatedContext
from ..methods import build_method, get_method_spec
from ..metrics.tracker import RunResult
from ..nn.models import build_model
from ..pruning.schedule import PruningSchedule
from .configs import ScalePreset, get_scale

__all__ = ["prepare_data", "make_context", "build_method", "run_experiment"]

Splits = tuple[Dataset, Dataset, Dataset]


def prepare_data(
    dataset_name: str, scale: ScalePreset, seed: int = 0
) -> Splits:
    """(public D_s, federated train, test) splits for a named dataset."""
    train, test = build_dataset(
        dataset_name,
        num_train=scale.num_train,
        num_test=scale.num_test,
        image_size=scale.image_size,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 777)
    public, federated = train.split(scale.public_fraction, rng)
    return public, federated, test


def make_context(
    model_name: str,
    dataset_name: str,
    scale: ScalePreset,
    dirichlet_alpha: float | None = 0.5,
    seed: int = 0,
    rounds: int | None = None,
    splits: Splits | None = None,
    local_epochs: int | None = None,
    participation_fraction: float | None = None,
    quantize_upload_bits: int | None = None,
    executor: str | None = None,
    fleet: str | None = None,
    round_policy: str | None = None,
    deadline_fraction: float | None = None,
    deadline_over_select: float | None = None,
    dropout_rate: float | None = None,
    async_buffer_fraction: float | None = None,
    staleness_discount: float | None = None,
    client_backend: str | None = None,
    virtual_shard_size: int | None = None,
    aggregation_fan_in: int | None = None,
    faults: str | None = None,
    retry_max_attempts: int | None = None,
    retry_backoff_seconds: float | None = None,
    retry_timeout_seconds: float | None = None,
    transport_timeout: float | None = None,
    heartbeat_interval: float | None = None,
    max_reconnects: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
) -> tuple[FederatedContext, Dataset]:
    """A fresh federated context plus the server's public dataset.

    ``splits`` lets callers reuse an already-built
    :func:`prepare_data` result instead of regenerating the dataset.
    """
    if splits is None:
        splits = prepare_data(dataset_name, scale, seed)
    public, federated, test = splits
    model = build_model(
        model_name,
        num_classes=test.num_classes,
        width_multiplier=scale.width_multiplier,
        image_size=scale.image_size,
        seed=seed + 1,
    )
    ctx = FederatedContext(
        model,
        federated,
        test,
        scale.fl_config(
            dirichlet_alpha=dirichlet_alpha,
            seed=seed,
            rounds=rounds,
            local_epochs=local_epochs,
            participation_fraction=participation_fraction,
            quantize_upload_bits=quantize_upload_bits,
            executor=executor,
            fleet=fleet,
            round_policy=round_policy,
            deadline_fraction=deadline_fraction,
            deadline_over_select=deadline_over_select,
            dropout_rate=dropout_rate,
            async_buffer_fraction=async_buffer_fraction,
            staleness_discount=staleness_discount,
            client_backend=client_backend,
            virtual_shard_size=virtual_shard_size,
            aggregation_fan_in=aggregation_fan_in,
            faults=faults,
            retry_max_attempts=retry_max_attempts,
            retry_backoff_seconds=retry_backoff_seconds,
            retry_timeout_seconds=retry_timeout_seconds,
            transport_timeout=transport_timeout,
            heartbeat_interval=heartbeat_interval,
            max_reconnects=max_reconnects,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
        ),
        dataset_name=dataset_name,
        model_name=model_name,
    )
    return ctx, public


def run_experiment(
    method_name: str,
    model_name: str,
    dataset_name: str,
    target_density: float,
    scale: str | ScalePreset = "bench",
    dirichlet_alpha: float | None = 0.5,
    seed: int = 0,
    schedule: PruningSchedule | None = None,
    pool_size: int | None = None,
    rounds: int | None = None,
    local_epochs: int | None = None,
    participation_fraction: float | None = None,
    quantize_bits: int | None = None,
    executor: str | None = None,
    fleet: str | None = None,
    round_policy: str | None = None,
    deadline_fraction: float | None = None,
    deadline_over_select: float | None = None,
    dropout_rate: float | None = None,
    async_buffer_fraction: float | None = None,
    staleness_discount: float | None = None,
    client_backend: str | None = None,
    virtual_shard_size: int | None = None,
    aggregation_fan_in: int | None = None,
    faults: str | None = None,
    retry_max_attempts: int | None = None,
    retry_backoff_seconds: float | None = None,
    retry_timeout_seconds: float | None = None,
    transport_timeout: float | None = None,
    heartbeat_interval: float | None = None,
    max_reconnects: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
) -> RunResult:
    """End-to-end: build data, context and method, then run it."""
    preset = get_scale(scale) if isinstance(scale, str) else scale
    splits = prepare_data(dataset_name, preset, seed)
    ctx, public = make_context(
        model_name, dataset_name, preset,
        dirichlet_alpha=dirichlet_alpha, seed=seed, rounds=rounds,
        splits=splits,
        local_epochs=local_epochs,
        participation_fraction=participation_fraction,
        quantize_upload_bits=quantize_bits,
        executor=executor,
        fleet=fleet,
        round_policy=round_policy,
        deadline_fraction=deadline_fraction,
        deadline_over_select=deadline_over_select,
        dropout_rate=dropout_rate,
        async_buffer_fraction=async_buffer_fraction,
        staleness_discount=staleness_discount,
        client_backend=client_backend,
        virtual_shard_size=virtual_shard_size,
        aggregation_fan_in=aggregation_fan_in,
        faults=faults,
        retry_max_attempts=retry_max_attempts,
        retry_backoff_seconds=retry_backoff_seconds,
        retry_timeout_seconds=retry_timeout_seconds,
        transport_timeout=transport_timeout,
        heartbeat_interval=heartbeat_interval,
        max_reconnects=max_reconnects,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        resume=resume,
    )
    method = build_method(
        method_name, target_density, preset,
        schedule=schedule, pool_size=pool_size,
    )
    if get_method_spec(method_name).replaces_model:
        # The small model replaces the big one entirely; reuse the
        # already-built splits rather than regenerating the dataset.
        _, federated, test = splits
        ctx = build_small_model_context(
            ctx, target_density, federated, test,
            preset.fl_config(
                dirichlet_alpha=dirichlet_alpha, seed=seed, rounds=rounds,
                local_epochs=local_epochs,
                participation_fraction=participation_fraction,
                quantize_upload_bits=quantize_bits,
                executor=executor,
                fleet=fleet,
                round_policy=round_policy,
                deadline_fraction=deadline_fraction,
                deadline_over_select=deadline_over_select,
                dropout_rate=dropout_rate,
                async_buffer_fraction=async_buffer_fraction,
                staleness_discount=staleness_discount,
                client_backend=client_backend,
                virtual_shard_size=virtual_shard_size,
                aggregation_fan_in=aggregation_fan_in,
                faults=faults,
                retry_max_attempts=retry_max_attempts,
                retry_backoff_seconds=retry_backoff_seconds,
                retry_timeout_seconds=retry_timeout_seconds,
                transport_timeout=transport_timeout,
                heartbeat_interval=heartbeat_interval,
                max_reconnects=max_reconnects,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                resume=resume,
            ),
        )
    try:
        return method.run(ctx, public)
    finally:
        ctx.close()
