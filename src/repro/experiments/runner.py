"""Build and run a named (method, model, dataset, density) experiment."""

from __future__ import annotations

import numpy as np

from ..baselines import (
    FedAvgBaseline,
    FedDSTBaseline,
    FLPQSUBaseline,
    LotteryFLBaseline,
    PruneFLBaseline,
    SmallModelBaseline,
    SNIPBaseline,
    SynFlowBaseline,
    build_small_model_context,
)
from ..core import FedTiny, FedTinyConfig
from ..data.dataset import Dataset
from ..data.synthetic import build_dataset
from ..fl.simulation import FederatedContext
from ..metrics.tracker import RunResult
from ..nn.models import build_model
from ..pruning.schedule import PruningSchedule
from .configs import ScalePreset, get_scale

__all__ = ["prepare_data", "make_context", "build_method", "run_experiment"]


def prepare_data(
    dataset_name: str, scale: ScalePreset, seed: int = 0
) -> tuple[Dataset, Dataset, Dataset]:
    """(public D_s, federated train, test) splits for a named dataset."""
    train, test = build_dataset(
        dataset_name,
        num_train=scale.num_train,
        num_test=scale.num_test,
        image_size=scale.image_size,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 777)
    public, federated = train.split(scale.public_fraction, rng)
    return public, federated, test


def make_context(
    model_name: str,
    dataset_name: str,
    scale: ScalePreset,
    dirichlet_alpha: float | None = 0.5,
    seed: int = 0,
    rounds: int | None = None,
) -> tuple[FederatedContext, Dataset]:
    """A fresh federated context plus the server's public dataset."""
    public, federated, test = prepare_data(dataset_name, scale, seed)
    model = build_model(
        model_name,
        num_classes=test.num_classes,
        width_multiplier=scale.width_multiplier,
        image_size=scale.image_size,
        seed=seed + 1,
    )
    ctx = FederatedContext(
        model,
        federated,
        test,
        scale.fl_config(dirichlet_alpha=dirichlet_alpha, seed=seed,
                        rounds=rounds),
        dataset_name=dataset_name,
        model_name=model_name,
    )
    return ctx, public


def build_method(
    method_name: str,
    target_density: float,
    scale: ScalePreset,
    schedule: PruningSchedule | None = None,
    pool_size: int | None = None,
):
    """Instantiate a method object exposing ``run(ctx, public_data)``."""
    if schedule is None:
        schedule = scale.schedule()
    name = method_name.lower()
    if name == "fedavg":
        return FedAvgBaseline(pretrain_epochs=scale.pretrain_epochs)
    if name == "fl-pqsu":
        return FLPQSUBaseline(
            target_density, pretrain_epochs=scale.pretrain_epochs
        )
    if name == "snip":
        return SNIPBaseline(
            target_density,
            pretrain_epochs=scale.pretrain_epochs,
            iterations=scale.snip_iterations,
        )
    if name == "synflow":
        return SynFlowBaseline(
            target_density,
            pretrain_epochs=scale.pretrain_epochs,
            iterations=scale.synflow_iterations,
        )
    if name == "prunefl":
        return PruneFLBaseline(
            target_density,
            schedule=schedule,
            pretrain_epochs=scale.pretrain_epochs,
        )
    if name == "feddst":
        return FedDSTBaseline(
            target_density,
            schedule=schedule,
            pretrain_epochs=scale.pretrain_epochs,
        )
    if name == "lotteryfl":
        return LotteryFLBaseline(
            target_density,
            schedule=schedule,
            pretrain_epochs=scale.pretrain_epochs,
        )
    if name == "small_model":
        return SmallModelBaseline(
            target_density, pretrain_epochs=scale.pretrain_epochs
        )
    ablations = {
        "fedtiny": (True, True),
        "vanilla": (False, False),
        "adaptive_bn_only": (True, False),
        "vanilla+progressive": (False, True),
    }
    if name in ablations:
        use_bn, use_progressive = ablations[name]
        if pool_size is None:
            # Cap the paper's C* = 0.1/d rule by the preset's budget so
            # reduced-scale runs don't spend all their time in selection.
            from ..core.fedtiny import optimal_pool_size

            pool_size = min(
                optimal_pool_size(target_density), scale.max_pool_size
            )
        return FedTiny(
            FedTinyConfig(
                target_density=target_density,
                pool_size=pool_size,
                use_adaptive_bn=use_bn,
                use_progressive=use_progressive,
                schedule=schedule,
                pretrain_epochs=scale.pretrain_epochs,
            )
        )
    raise KeyError(f"unknown method {method_name!r}")


def run_experiment(
    method_name: str,
    model_name: str,
    dataset_name: str,
    target_density: float,
    scale: str | ScalePreset = "bench",
    dirichlet_alpha: float | None = 0.5,
    seed: int = 0,
    schedule: PruningSchedule | None = None,
    pool_size: int | None = None,
    rounds: int | None = None,
) -> RunResult:
    """End-to-end: build data, context and method, then run it."""
    preset = get_scale(scale) if isinstance(scale, str) else scale
    ctx, public = make_context(
        model_name, dataset_name, preset,
        dirichlet_alpha=dirichlet_alpha, seed=seed, rounds=rounds,
    )
    method = build_method(
        method_name, target_density, preset,
        schedule=schedule, pool_size=pool_size,
    )
    if method_name.lower() == "small_model":
        # The small model replaces the big one entirely.
        public2, federated, test = prepare_data(dataset_name, preset, seed)
        small_ctx = build_small_model_context(
            ctx, target_density, federated, test,
            preset.fl_config(dirichlet_alpha=dirichlet_alpha, seed=seed,
                             rounds=rounds),
        )
        return method.run(small_ctx, public2)
    return method.run(ctx, public)
