"""Federated experiment context and the shared round loop.

Every method (FedTiny and each baseline) runs against a
:class:`FederatedContext`: a shared model instance, the client
population, the test set, cost profiles, and a communication tracker.
The context provides the one primitive all methods share — a FedAvg
training round over sparse models — while mask manipulation stays in
the method implementations.

The round loop is a *systems simulation*, not just a learning loop:
each client carries a :class:`~repro.fl.latency.DeviceProfile` drawn
from the configured fleet, a simulated wall clock advances by the
per-round compute+transfer time the configured
:class:`~repro.fl.policies.RoundPolicy` charges, and every round record
carries the cumulative ``sim_time_seconds`` — so accuracy-vs-wall-clock
curves fall out of ordinary runs.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.dataset import Dataset
from ..data.partition import VirtualShardPlan, partition_dataset, \
    plan_partition
from ..metrics.accuracy import evaluate
from ..metrics.flops import ModelProfile, profile_model, \
    training_flops_per_sample
from ..metrics.tracker import RoundRecord, RunResult
from ..nn.module import Module
from ..sparse.mask import MaskSet
from .aggregation import HierarchicalAggregator
from .client import Client
from .comm import CommTracker
from .executor import available_executors, build_executor
from .faults import FailureRecord, FaultSchedule, FaultTolerantRunner, \
    RetryPolicy, RoundFaultStats
from .fleet import ClientDirectory, MaterializedDirectory, \
    VirtualClientDirectory, cohort_size
from .latency import FleetPlan, build_fleet, parse_fleet_spec
from .payload import packed_nbytes
from .policies import RoundInfo, SynchronousPolicy, available_policies, \
    build_policy
from .server import Server
from .state import set_state
from .transport import TransportConfig

__all__ = ["FLConfig", "FederatedContext"]

_LOG = logging.getLogger(__name__)


@dataclass(frozen=True)
class FLConfig:
    """Hyper-parameters of the federated protocol (paper Section IV-A1)."""

    num_clients: int = 10
    rounds: int = 300
    local_epochs: int = 5
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    dirichlet_alpha: float | None = 0.5
    dev_fraction: float = 0.1
    participation_fraction: float = 1.0
    quantize_upload_bits: int | None = None
    eval_every: int = 1
    augment: bool = False
    executor: str = "serial"
    executor_workers: int | None = None
    # Fleet-scale knobs: with the "virtual" backend clients exist as
    # IDs until selected (see repro.fl.fleet). virtual_shard_size
    # switches the partition to derived overlapping shards so the
    # population can vastly exceed the dataset; aggregation_fan_in
    # groups uploads under simulated edge aggregators;
    # min_partition_samples is the Dirichlet per-client floor.
    client_backend: str = "materialized"
    virtual_shard_size: int | None = None
    aggregation_fan_in: int | None = None
    min_partition_samples: int = 2
    # Systems-simulation knobs: the device fleet spec (see
    # repro.fl.latency.parse_fleet_spec) and the round policy plus its
    # parameters (see repro.fl.policies).
    fleet: str = "uniform"
    round_policy: str = "sync"
    deadline_fraction: float = 1.5
    deadline_over_select: float = 1.5
    dropout_rate: float = 0.1
    async_buffer_fraction: float = 0.5
    staleness_discount: float = 0.5
    # Fault-tolerance knobs (see repro.fl.faults). ``faults`` is a
    # schedule spec ("kind:prob,..." or a preset name); None disables
    # injection entirely and the round loop stays byte-identical to the
    # fault-free golden run. The retry knobs parameterize the
    # RetryPolicy that defends against whatever the schedule throws.
    faults: str | None = None
    retry_max_attempts: int = 3
    retry_backoff_seconds: float = 0.5
    retry_backoff_factor: float = 2.0
    retry_timeout_seconds: float = 5.0
    pool_failure_limit: int = 2
    # Networked-transport knobs (see repro.fl.transport): the socket
    # read/write timeout (doubling as the server's in-flight task
    # deadline), the worker heartbeat cadence, and the reconnect /
    # task-reassignment budget. Only the "network" executor reads them;
    # they are validated for every config so a bad flag fails fast.
    transport_timeout: float = 30.0
    heartbeat_interval: float = 1.0
    max_reconnects: int = 3
    # Crash-resume knobs: with checkpoint_dir set the method's round
    # loop snapshots the full run state every ``checkpoint_every``
    # rounds; ``resume=True`` restarts from the latest snapshot
    # bit-for-bit instead of from round 1.
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    resume: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.local_epochs < 1:
            raise ValueError("local_epochs must be >= 1")
        if not 0.0 < self.dev_fraction <= 1.0:
            raise ValueError("dev_fraction must be in (0, 1]")
        if not 0.0 < self.participation_fraction <= 1.0:
            raise ValueError("participation_fraction must be in (0, 1]")
        if self.quantize_upload_bits is not None and not (
            2 <= self.quantize_upload_bits <= 16
        ):
            raise ValueError("quantize_upload_bits must be in [2, 16]")
        if self.executor not in available_executors():
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"available: {available_executors()}"
            )
        if self.executor_workers is not None and self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        if self.client_backend not in ("materialized", "virtual"):
            raise ValueError(
                f"unknown client backend {self.client_backend!r}; "
                f"expected 'materialized' or 'virtual'"
            )
        if self.virtual_shard_size is not None:
            if self.client_backend != "virtual":
                raise ValueError(
                    "virtual_shard_size requires client_backend='virtual'"
                )
            if self.virtual_shard_size < 1:
                raise ValueError("virtual_shard_size must be >= 1")
        if self.aggregation_fan_in is not None and self.aggregation_fan_in < 1:
            raise ValueError("aggregation_fan_in must be >= 1")
        if self.min_partition_samples < 1:
            raise ValueError("min_partition_samples must be >= 1")
        parse_fleet_spec(self.fleet)  # raises on malformed specs
        if self.round_policy not in available_policies():
            raise ValueError(
                f"unknown round policy {self.round_policy!r}; "
                f"available: {available_policies()}"
            )
        if self.deadline_fraction <= 0.0:
            raise ValueError("deadline_fraction must be positive")
        if self.deadline_over_select < 1.0:
            raise ValueError("deadline_over_select must be >= 1")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        if not 0.0 < self.async_buffer_fraction <= 1.0:
            raise ValueError("async_buffer_fraction must be in (0, 1]")
        if not 0.0 < self.staleness_discount <= 1.0:
            raise ValueError("staleness_discount must be in (0, 1]")
        if self.faults is not None:
            FaultSchedule.parse(self.faults)  # raises on malformed specs
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if self.retry_backoff_seconds < 0.0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.retry_timeout_seconds < 0.0:
            raise ValueError("retry_timeout_seconds must be >= 0")
        if self.pool_failure_limit < 1:
            raise ValueError("pool_failure_limit must be >= 1")
        self.transport_config()  # raises on malformed transport knobs
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        if self.checkpoint_dir is not None and self.round_policy == "async":
            # The async policy buffers late uploads across rounds in
            # process-local state the checkpoint cannot capture; a
            # resumed run would silently drop them.
            raise ValueError(
                "checkpointing does not support round_policy='async'"
            )

    def transport_config(self) -> TransportConfig:
        """The networked executor's transport knobs as one object."""
        return TransportConfig(
            timeout=self.transport_timeout,
            heartbeat_interval=self.heartbeat_interval,
            max_reconnects=self.max_reconnects,
        )


class FederatedContext:
    """Everything a federated pruning method needs to run."""

    def __init__(
        self,
        model: Module,
        train_data: Dataset,
        test_data: Dataset,
        config: FLConfig,
        dataset_name: str = "synthetic",
        model_name: str = "model",
    ) -> None:
        self.model = model
        self.test_data = test_data
        self.config = config
        self.dataset_name = dataset_name
        self.model_name = model_name
        self.comm = CommTracker()
        self.rng = np.random.default_rng(config.seed)

        self.directory: ClientDirectory
        if config.client_backend == "virtual":
            if config.virtual_shard_size is not None:
                # Derived overlapping shards: the population can exceed
                # the dataset, and no per-client state exists up front.
                plan = VirtualShardPlan(
                    len(train_data),
                    config.num_clients,
                    config.virtual_shard_size,
                    seed=config.seed,
                )
            else:
                # Exact partition, computed as index arrays only; this
                # consumes self.rng exactly like partition_dataset, so
                # downstream draws match the materialized backend.
                plan = plan_partition(
                    train_data,
                    config.num_clients,
                    config.dirichlet_alpha,
                    self.rng,
                    min_samples=config.min_partition_samples,
                )
            self.directory = VirtualClientDirectory(
                train_data,
                plan,
                FleetPlan(config.fleet, config.num_clients, config.seed),
                dev_fraction=config.dev_fraction,
                seed=config.seed,
            )
        else:
            shards = partition_dataset(
                train_data,
                config.num_clients,
                config.dirichlet_alpha,
                self.rng,
                min_samples=config.min_partition_samples,
            )
            fleet = build_fleet(
                config.fleet, config.num_clients, config.seed
            )
            self.directory = MaterializedDirectory(
                [
                    Client(
                        client_id=index,
                        train_data=shard,
                        dev_fraction=config.dev_fraction,
                        seed=config.seed,
                        device=fleet[index],
                    )
                    for index, shard in enumerate(shards)
                ]
            )
        self.profile: ModelProfile = profile_model(
            model, train_data.image_shape
        )
        self.server = Server(
            model, aggregation_fan_in=config.aggregation_fan_in
        )
        self.executor = build_executor(
            config.executor,
            max_workers=config.executor_workers,
            transport=config.transport_config(),
        )
        self.round_policy = build_policy(config.round_policy, config)
        # Simulation-only randomness (availability draws) lives on its
        # own stream so systems realism never perturbs client sampling
        # or batch order.
        self.sim_rng = np.random.default_rng(config.seed * 52_711 + 13)
        self.sim_time = 0.0
        # Real (wall-clock) seconds spent inside executor training
        # calls. The simulated clock stays authoritative for policy
        # decisions (that is the byte-parity contract); this counter
        # observes what the actual transport/compute cost, which is
        # only meaningfully nonzero under real-transport backends.
        self.real_time_seconds = 0.0
        self.last_round_info: RoundInfo | None = None
        self._dropped_since_record = 0
        # Fault tolerance: the schedule/runner exist only when faults
        # are enabled, so the fault-free round loop takes the exact
        # code path (and RNG consumption) it always did.
        self.retry_policy = RetryPolicy(
            max_attempts=config.retry_max_attempts,
            backoff_seconds=config.retry_backoff_seconds,
            backoff_factor=config.retry_backoff_factor,
            timeout_seconds=config.retry_timeout_seconds,
            pool_failure_limit=config.pool_failure_limit,
        )
        self.fault_schedule: FaultSchedule | None = (
            FaultSchedule.parse(config.faults, seed=config.seed)
            if config.faults is not None else None
        )
        self.fault_runner: FaultTolerantRunner | None = (
            FaultTolerantRunner(
                self.fault_schedule, self.retry_policy, seed=config.seed
            )
            if self.fault_schedule is not None else None
        )
        # Full structured failure log for the run, plus the deltas not
        # yet folded into a round record (same discipline as the comm
        # counters: record_round drains them).
        self.failure_log: list[FailureRecord] = []
        self._failures_since_record: list[FailureRecord] = []
        self._fault_stats_since_record = RoundFaultStats()
        self._round_counter = 0
        # Lazily defaults to the whole fleet: eagerly listing it here
        # would materialize every virtual client before the first round.
        self._last_participants: list[Client] | None = None
        # Comm totals already folded into earlier round records, so each
        # record holds this round's delta (RunResult sums them back up).
        self._recorded_upload = 0
        self._recorded_download = 0

    # ------------------------------------------------------------------
    # Shared primitives
    # ------------------------------------------------------------------
    @property
    def clients(self) -> list[Client]:
        """Every client, materialized (compatibility surface; O(N))."""
        return self.directory.all_clients()

    @property
    def last_participants(self) -> list[Client]:
        """Clients aggregated in the last round (whole fleet before
        any round has run)."""
        if self._last_participants is None:
            self._last_participants = list(self.directory.all_clients())
        return self._last_participants

    @last_participants.setter
    def last_participants(self, value: list[Client]) -> None:
        self._last_participants = value

    @property
    def sample_counts(self) -> list[int]:
        return self.directory.sample_counts()

    def new_result(self, method: str, target_density: float) -> RunResult:
        return RunResult(
            method=method,
            dataset=self.dataset_name,
            model=self.model_name,
            target_density=target_density,
        )

    def sample_participants(
        self, fraction: float | None = None
    ) -> list[Client]:
        """Clients taking part in the next round.

        With ``participation_fraction < 1`` a random subset (at least
        one client) is drawn each round, as in standard FedAvg client
        sampling; the selection is stored on ``last_participants`` so
        mask-adjustment protocols query the same devices that trained.
        ``fraction`` overrides the configured participation fraction
        (round policies over-select through it).
        """
        return [
            self.directory.materialize(client_id)
            for client_id in self.sample_participant_ids(fraction)
        ]

    def sample_participant_ids(
        self, fraction: float | None = None
    ) -> list[int]:
        """Sorted cohort IDs for the next round, no clients built.

        The cohort size follows the explicit
        :func:`~repro.fl.fleet.cohort_size` rule — ``max(1,
        ceil(fraction * n))`` — shared with the materialized sampler
        (the historical ``int(round(...))`` rule was banker's-rounded).
        Full participation consumes no randomness, matching the
        historical fast path.
        """
        if fraction is None:
            fraction = self.config.participation_fraction
        population = self.directory.num_clients
        if fraction >= 1.0:
            return list(range(population))
        count = cohort_size(fraction, population)
        chosen = self.rng.choice(population, size=count, replace=False)
        return sorted(int(i) for i in chosen)

    def participant_round_times(
        self, participants: list[Client]
    ) -> list[float]:
        """Simulated seconds each participant needs for one round.

        Compute time comes from the method's per-sample training FLOPs
        at the current mask density; transfer time from the same byte
        accounting the communication tracker charges.
        """
        flops_per_sample = training_flops_per_sample(
            self.profile, self.server.masks
        )
        upload = self.upload_bytes_per_client()
        download = self.model_exchange_bytes()
        epochs = self.config.local_epochs
        return [
            float(
                client.device.time_for(
                    flops_per_sample * epochs * client.num_samples,
                    upload,
                    download,
                )
            )
            for client in participants
        ]

    def run_fedavg_round(
        self, need_states: bool = True
    ) -> list[dict[str, np.ndarray]]:
        """One policy-driven round: select, train, aggregate, tick.

        The configured :class:`~repro.fl.policies.RoundPolicy` picks the
        participants, decides which of them train and upload in time on
        the simulated fleet, and folds the surviving uploads into the
        global state; the context's simulated wall clock advances by the
        round's elapsed seconds. Local training is delegated to the
        configured :class:`~repro.fl.executor.ClientExecutor` backend.
        Returns the states aggregated at full weight this round (aligned
        with ``last_participants``; some methods inspect them before
        they are discarded).

        ``need_states=False`` declares that the caller will not read
        the returned states (its round hook ignores them). When the
        active policy is the plain synchronous barrier, uploads are
        unquantized, and the executor shipped packed payloads, the
        round then feeds those payloads straight into the sparse-aware
        :meth:`~repro.fl.server.Server.aggregate_packed` — no per-client
        dense decode — and returns an empty list. The committed global
        state is bitwise identical either way.
        """
        cfg = self.config
        policy = self.round_policy
        self._round_counter += 1
        participants = policy.select(self)
        times = self.participant_round_times(participants)
        plan = policy.plan(self, participants, times)
        trained = [participants[i] for i in plan.trained]
        download = self.model_exchange_bytes()
        upload = self.upload_bytes_per_client()
        fault_seconds = 0.0
        train_started = time.perf_counter()
        if self.fault_runner is not None and trained:
            outcome = self.fault_runner.run_round(
                self, trained, self._round_counter
            )
            fault_seconds = outcome.extra_seconds
            self.failure_log.extend(outcome.records)
            self._failures_since_record.extend(outcome.records)
            self._fault_stats_since_record.merge(outcome.stats)
            results = outcome.results
            if outcome.excluded:
                # Retry-exhausted clients leave the cohort; the plan
                # re-packs around the survivors and the excluded join
                # the dropped set (aggregation renormalizes over the
                # sample counts that actually arrived).
                keep = [
                    k for k in range(len(trained))
                    if k not in outcome.excluded
                ]
                plan = plan.without_trained(outcome.excluded)
                trained = [trained[k] for k in keep]
                results = [results[k] for k in keep]
        else:
            results = self.executor.run_clients(self, trained)
            lost = frozenset(
                i for i, r in enumerate(results) if r is None
            )
            if lost:
                # A real-transport backend could not deliver these
                # clients' tasks within the reassignment budget: they
                # leave the cohort exactly like retry-exhausted clients
                # under a fault schedule. Their RNG streams never
                # advanced, so the surviving cohort is untouched.
                lost_records = [
                    FailureRecord(
                        self._round_counter,
                        trained[i].client_id,
                        0,
                        "connection_lost",
                        "excluded",
                    )
                    for i in sorted(lost)
                ]
                self.failure_log.extend(lost_records)
                self._failures_since_record.extend(lost_records)
                self._fault_stats_since_record.recoveries += len(lost)
                keep = [
                    k for k in range(len(trained)) if k not in lost
                ]
                plan = plan.without_trained(lost)
                trained = [trained[k] for k in keep]
                results = [results[k] for k in keep]
        self.real_time_seconds += time.perf_counter() - train_started
        drain = getattr(self.executor, "drain_records", None)
        if drain is not None:
            # Transport-level adjudications (deduped replays after a
            # reconnect, quarantined bytes) join the structured failure
            # log; the deterministic fault counters are untouched, so
            # chaos accounting still compares across executors.
            transport_records = drain()
            if transport_records:
                self.failure_log.extend(transport_records)
                self._failures_since_record.extend(transport_records)
        packed_fast_path = (
            not need_states
            and cfg.quantize_upload_bits is None
            and type(policy) is SynchronousPolicy
            and bool(results)
            and all(r.payload is not None for r in results)
        )
        states: list[dict[str, np.ndarray]] = []
        for result in results:
            if not packed_fast_path:
                state = result.resolve_state()
                if cfg.quantize_upload_bits is not None:
                    # Lossy round trip: the server only ever sees the
                    # dequantized upload (FL-PQSU's quantization stage).
                    from ..sparse.quantize import (
                        dequantize_state,
                        quantize_state,
                    )

                    state = dequantize_state(
                        quantize_state(state, cfg.quantize_upload_bits)
                    )
                states.append(state)
            self.comm.record_download(download)
            self.comm.record_upload(upload)
        if plan.dropped_received_broadcast:
            # Deadline stragglers pulled the model before being cut;
            # offline (dropout) clients never saw the broadcast.
            for _ in plan.dropped:
                self.comm.record_download(download)
        if not trained:
            # The whole cohort was lost (e.g. retry exhaustion on every
            # client): nothing arrived, so the round commits nothing and
            # the global state carries over unchanged.
            on_time_states = []
            self.last_participants = []
            stale_applied = 0
        elif packed_fast_path:
            # Synchronous barrier: everyone trained is aggregated, so
            # the packed uploads fold straight into the global state.
            on_time_states = []
            self.last_participants = list(trained)
            self.server.aggregate_packed(
                [r.payload for r in results],
                [client.num_samples for client in trained],
            )
            stale_applied = 0
        else:
            on_time_states = [states[p] for p in plan.on_time]
            self.last_participants = [trained[p] for p in plan.on_time]
            stale_applied = policy.aggregate(self, participants, plan, states)
        elapsed = plan.elapsed_seconds + fault_seconds
        self.sim_time += elapsed
        self._dropped_since_record += len(plan.dropped)
        on_time_set = set(plan.on_time)
        self.last_round_info = RoundInfo(
            selected_ids=tuple(c.client_id for c in participants),
            aggregated_ids=tuple(
                c.client_id for c in self.last_participants
            ),
            dropped_ids=tuple(
                participants[i].client_id for i in plan.dropped
            ),
            late_ids=tuple(
                trained[p].client_id
                for p in range(len(trained))
                if p not in on_time_set
            ),
            stale_applied=stale_applied,
            elapsed_seconds=elapsed,
        )
        return on_time_states

    def _live_model_state(self) -> dict[str, np.ndarray]:
        """The shared model's state as read-only views (no copies)."""
        view = {
            name: param.data
            for name, param in self.model.named_parameters()
        }
        for name, buf in self.model.named_buffers():
            view["buffer::" + name] = buf
        return view

    def run_streaming_sync_round(self) -> RoundInfo:
        """One synchronous FedAvg round streamed over cohort IDs.

        The fleet-scale round loop: cohort IDs are drawn without
        building clients; each selected client is materialized, pulls
        the broadcast, trains, has its live model state folded straight
        into a :class:`~repro.fl.aggregation.HierarchicalAggregator`,
        and is released before the next client is built. At most one
        client is live at a time and the server folds uploads through
        O(model) accumulators, so round memory is independent of cohort
        size. With the default fan-in the committed state, comm bytes,
        and simulated elapsed time are bitwise identical to
        :meth:`run_fedavg_round` on the same cohort.

        Limitations (by construction): synchronous barrier only,
        unquantized uploads, and ``last_participants`` is not updated —
        method round hooks belong to the materialized-compatible
        :meth:`run_fedavg_round` path.
        """
        cfg = self.config
        if cfg.round_policy != "sync":
            raise ValueError(
                "the streaming round requires round_policy='sync'"
            )
        if cfg.quantize_upload_bits is not None:
            raise ValueError(
                "the streaming round does not support quantized uploads"
            )
        participant_ids = self.sample_participant_ids()
        counts = [
            self.directory.sample_count(i) for i in participant_ids
        ]
        aggregator = HierarchicalAggregator(
            counts, fan_in=cfg.aggregation_fan_in
        )
        download = self.model_exchange_bytes()
        upload = self.upload_bytes_per_client()
        flops_per_sample = training_flops_per_sample(
            self.profile, self.server.masks
        )
        train_kwargs = dict(
            epochs=cfg.local_epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
            augment=cfg.augment,
        )
        elapsed = 0.0
        # Failure bookkeeping: a round that dies mid-way must leave no
        # trace, so snapshot the comm counters and record each cohort
        # member's round-boundary RNG position as it materializes.
        comm_before = (
            self.comm.upload_bytes, self.comm.download_bytes,
            dict(self.comm.by_phase),
        )
        round_rng_states: dict[int, dict] = {}
        self.server.broadcast()
        try:
            for client_id, count in zip(participant_ids, counts):
                client = self.directory.materialize(client_id)
                round_rng_states.setdefault(
                    client_id, client.rng.bit_generator.state
                )
                try:
                    self.server.restore_broadcast()
                    client.train(
                        self.model, collect_state=False, **train_kwargs
                    )
                    # The aggregator only reads the arrays, so the live
                    # model views go in without a get_state copy; they
                    # are consumed before the next restore_broadcast
                    # overwrites them.
                    aggregator.add_state(self._live_model_state())
                    self.comm.record_download(download)
                    self.comm.record_upload(upload)
                    seconds = float(
                        client.device.time_for(
                            flops_per_sample * cfg.local_epochs * count,
                            upload,
                            download,
                        )
                    )
                    if seconds > elapsed:
                        elapsed = seconds
                finally:
                    # Always hand the client back: a leaked live client
                    # would pin its shard and desynchronize the virtual
                    # directory's saved RNG positions.
                    self.directory.release(client_id)
        except BaseException:
            # No commit happened, so the server's authoritative state is
            # untouched; reset the shared model from the broadcast
            # snapshot instead of leaving half-trained client weights,
            # rewind every cohort RNG stream to the round boundary
            # (including clients that finished before the failure), and
            # void the aborted round's comm charges — a replay of the
            # round is bit-for-bit as if the failure never happened.
            self.server.restore_broadcast()
            self.directory.restore_rng(round_rng_states)
            upload_b, download_b, by_phase = comm_before
            self.comm.upload_bytes = upload_b
            self.comm.download_bytes = download_b
            self.comm.by_phase = by_phase
            raise
        self.server.commit_state(aggregator.finish())
        self.sim_time += elapsed
        ids = tuple(participant_ids)
        self.last_round_info = RoundInfo(
            selected_ids=ids,
            aggregated_ids=ids,
            dropped_ids=(),
            late_ids=(),
            stale_applied=0,
            elapsed_seconds=elapsed,
        )
        return self.last_round_info

    def model_exchange_bytes(self) -> int:
        """Bytes to move the current sparse model one way (float32).

        This is the *measured* size of the packed payload the transport
        codec actually ships (active values + int32 indices, dense
        fallback at the crossover), which by construction reconciles
        with the :mod:`repro.sparse.storage` accounting model — see
        :func:`repro.fl.payload.packed_nbytes`.
        """
        return packed_nbytes(self.model, self.server.masks)

    def upload_bytes_per_client(self) -> int:
        """Upload size, honoring ``quantize_upload_bits`` if enabled.

        Quantization shrinks only the *value* payload; the 4-byte flat
        indices of sparse tensors are unaffected.
        """
        bits = self.config.quantize_upload_bits
        if bits is None:
            return self.model_exchange_bytes()
        total_bits = 0
        masked = set(self.server.masks.layer_names())
        for name, param in self.model.named_parameters():
            if name in masked:
                active = self.server.masks.layer_active(name)
                total_bits += min(
                    active * (bits + 32), param.size * bits
                )
            else:
                total_bits += param.size * bits
        for _, buf in self.model.named_buffers():
            total_bits += int(buf.size) * bits
        return (total_bits + 7) // 8

    def evaluate_global(self) -> tuple[float, float]:
        """(accuracy, loss) of the global model on the test set."""
        self.server.load_into_model()
        result = evaluate(self.model, self.test_data, self.config.batch_size)
        return result.accuracy, result.loss

    def record_round(
        self,
        result: RunResult,
        round_index: int,
        train_flops: float,
    ) -> None:
        """Evaluate (if scheduled) and append a round record."""
        if (
            round_index % self.config.eval_every != 0
            and round_index != self.config.rounds
        ):
            return
        accuracy, loss = self.evaluate_global()
        upload_delta = self.comm.upload_bytes - self._recorded_upload
        download_delta = self.comm.download_bytes - self._recorded_download
        self._recorded_upload = self.comm.upload_bytes
        self._recorded_download = self.comm.download_bytes
        fault_stats = self._fault_stats_since_record
        result.record_round(
            RoundRecord(
                round_index=round_index,
                test_accuracy=accuracy,
                test_loss=loss,
                density=self.server.masks.density,
                upload_bytes=upload_delta,
                download_bytes=download_delta,
                train_flops=train_flops,
                sim_time_seconds=self.sim_time,
                dropped_clients=self._dropped_since_record,
                faults_injected=fault_stats.injected,
                retries=fault_stats.retries,
                quarantined_uploads=fault_stats.quarantined,
                recovery_actions=fault_stats.recoveries,
            )
        )
        result.failures.extend(self._failures_since_record)
        self._failures_since_record = []
        self._fault_stats_since_record = RoundFaultStats()
        self._dropped_since_record = 0

    def close(self) -> None:
        """Release the execution backend's worker resources."""
        self.executor.close()

    def __enter__(self) -> "FederatedContext":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        # The shm arena and worker pool must be released even when the
        # round loop raises; `with FederatedContext(...) as ctx:`
        # guarantees it.
        self.close()

    def degrade_executor(self) -> bool:
        """Fall back to the serial executor (graceful degradation).

        Called by the fault-recovery layer after repeated pool
        breakage. The serial backend is bitwise-identical to the pool,
        so a degraded run finishes with the same results, just without
        parallelism. Returns ``False`` when already serial.
        """
        if self.executor.name == "serial":
            return False
        _LOG.warning(
            "degrading executor %r to 'serial'", self.executor.name
        )
        self.executor.close()
        self.executor = build_executor("serial")
        return True

    def sync_comm_baseline(self) -> None:
        """Exclude traffic recorded so far from future round deltas.

        Called after one-off phases (candidate selection) whose bytes
        are accounted separately on the run result.
        """
        self._recorded_upload = self.comm.upload_bytes
        self._recorded_download = self.comm.download_bytes

    # ------------------------------------------------------------------
    # Crash-resumable runs
    # ------------------------------------------------------------------
    def checkpoint_path(self, method_name: str) -> Path | None:
        """Where this run checkpoints (``None`` when disabled)."""
        if self.config.checkpoint_dir is None:
            return None
        return Path(self.config.checkpoint_dir) / (
            f"{method_name}_{self.model_name}_{self.dataset_name}"
            f"_seed{self.config.seed}.npz"
        )

    def _checkpoint_fingerprint(self, method_name: str) -> tuple:
        """Identity of the run a checkpoint belongs to.

        ``rounds`` is deliberately absent: the trained prefix does not
        depend on the target length, so a snapshot from a shorter (or
        killed) run legitimately resumes into a longer one.
        """
        cfg = self.config
        return (
            method_name, self.model_name, self.dataset_name,
            cfg.seed, cfg.num_clients, cfg.local_epochs,
            cfg.round_policy, cfg.client_backend,
        )

    def save_checkpoint(
        self,
        path: Path,
        result: RunResult,
        round_index: int,
        method_state: dict | None = None,
    ) -> None:
        """Snapshot the full run state after ``round_index``.

        Captures everything a bit-for-bit resume needs: the committed
        global state and masks, every RNG stream position (context,
        simulation, and per-client), the simulated clock, comm and
        failure counters, the recorded round metrics, and the method's
        own cross-round state (``method_state``, from
        :meth:`~repro.methods.base.FederatedMethod.checkpoint_state`).
        The write is atomic — a kill during checkpointing leaves the
        previous snapshot usable.
        """
        from ..nn.checkpoint import save_run_checkpoint

        stats = self._fault_stats_since_record
        meta = {
            "fingerprint": self._checkpoint_fingerprint(result.method),
            "round_index": round_index,
            "round_counter": self._round_counter,
            "mask_epoch": self.server.mask_epoch,
            "sim_time": self.sim_time,
            "rng_state": self.rng.bit_generator.state,
            "sim_rng_state": self.sim_rng.bit_generator.state,
            "client_rng_states": self.directory.rng_snapshot(),
            "comm": (
                self.comm.upload_bytes,
                self.comm.download_bytes,
                dict(self.comm.by_phase),
            ),
            "recorded_comm": (
                self._recorded_upload, self._recorded_download
            ),
            "dropped_since_record": self._dropped_since_record,
            "failure_log": list(self.failure_log),
            "failures_since_record": list(self._failures_since_record),
            "fault_stats_since_record": (
                stats.injected, stats.retries,
                stats.quarantined, stats.recoveries,
            ),
            "method_state": dict(method_state or {}),
            "result": {
                "rounds": [vars(r) for r in result.rounds],
                "failures": list(result.failures),
                "max_training_flops_per_round":
                    result.max_training_flops_per_round,
                "memory_footprint_bytes": result.memory_footprint_bytes,
                "selection_comm_bytes": result.selection_comm_bytes,
                "selection_flops": result.selection_flops,
                "metadata": dict(result.metadata),
            },
        }
        save_run_checkpoint(
            path,
            self.server.state,
            {name: mask for name, mask in self.server.masks.items()},
            meta,
        )

    def try_resume(
        self, path: Path, result: RunResult
    ) -> tuple[int, dict] | None:
        """Restore a :meth:`save_checkpoint` snapshot, if one exists.

        Returns ``(next_round_index, method_state)`` after installing
        the snapshot into the context and ``result``, or ``None`` when
        no checkpoint is on disk. Raises when the checkpoint belongs to
        a different run configuration — resuming across configs would
        silently produce garbage.
        """
        from ..nn.checkpoint import load_run_checkpoint

        if not path.exists():
            return None
        ckpt = load_run_checkpoint(path)
        meta = ckpt.meta
        expected = self._checkpoint_fingerprint(result.method)
        found = meta.get("fingerprint")
        if tuple(found or ()) != expected:
            raise ValueError(
                f"checkpoint {path} belongs to a different run: "
                f"{found!r} != {expected!r}"
            )
        _LOG.info(
            "resuming %s from %s after round %d",
            result.method, path, ckpt.round_index,
        )
        # Server: masks first (set_masks re-applies them to the model),
        # then the committed state, then pin the epoch counter so
        # executors' mask-keyed caches line up with the original run.
        self.server.set_masks(
            MaskSet({
                name: np.asarray(mask, dtype=bool)
                for name, mask in ckpt.masks.items()
            })
        )
        self.server.commit_state(ckpt.state)
        self.server.mask_epoch = int(meta["mask_epoch"])
        # Every RNG stream back to its exact position.
        self.rng.bit_generator.state = meta["rng_state"]
        self.sim_rng.bit_generator.state = meta["sim_rng_state"]
        self.directory.restore_rng(meta["client_rng_states"])
        # Clocks and counters.
        self.sim_time = float(meta["sim_time"])
        self._round_counter = int(meta["round_counter"])
        self._dropped_since_record = int(meta["dropped_since_record"])
        upload, download, by_phase = meta["comm"]
        self.comm.upload_bytes = int(upload)
        self.comm.download_bytes = int(download)
        self.comm.by_phase = dict(by_phase)
        self._recorded_upload, self._recorded_download = (
            int(v) for v in meta["recorded_comm"]
        )
        self.failure_log = list(meta["failure_log"])
        self._failures_since_record = list(
            meta["failures_since_record"]
        )
        self._fault_stats_since_record = RoundFaultStats(
            *meta["fault_stats_since_record"]
        )
        # Round-scoped caches are stale by definition.
        self._last_participants = None
        self.last_round_info = None
        # The run record so far.
        saved = meta["result"]
        result.rounds = [RoundRecord(**d) for d in saved["rounds"]]
        result.failures = list(saved["failures"])
        result.max_training_flops_per_round = saved[
            "max_training_flops_per_round"
        ]
        result.memory_footprint_bytes = saved["memory_footprint_bytes"]
        result.selection_comm_bytes = saved["selection_comm_bytes"]
        result.selection_flops = saved["selection_flops"]
        result.metadata = dict(saved["metadata"])
        return ckpt.round_index + 1, dict(meta.get("method_state") or {})

    # ------------------------------------------------------------------
    # Mask plumbing
    # ------------------------------------------------------------------
    def install_masks(self, masks: MaskSet) -> None:
        self.server.set_masks(masks)

    def reset_model_state(self, state: dict[str, np.ndarray]) -> None:
        """Overwrite the global state (e.g. rewind for LotteryFL)."""
        set_state(self.model, state)
        self.server.commit_state(state)
