"""Round policies: how the server opens and closes one federated round.

The paper's systems argument is that dense on-device work "may lead to
straggling issues in federated learning". A :class:`RoundPolicy` makes
that argument executable: given the participants sampled for a round
and the simulated seconds each needs on its assigned
:class:`~repro.fl.latency.DeviceProfile`, the policy decides which
clients actually train, whose uploads the server aggregates, and how
much simulated wall-clock time the round consumes. Four policies ship
built in:

- ``sync`` (:class:`SynchronousPolicy`) — the classic FedAvg barrier:
  every participant trains and is aggregated; the slowest device gates
  the round. Byte-identical to the pre-policy simulation.
- ``deadline`` (:class:`DeadlinePolicy`) — the server over-selects
  participants and closes the round ``deadline_fraction`` past the
  median device's completion time; stragglers beyond the deadline are
  dropped (their updates never arrive).
- ``dropout`` (:class:`DropoutPolicy`) — an availability model: each
  participant independently goes offline with probability
  ``dropout_rate``, re-drawn every round from the context's dedicated
  simulation RNG stream.
- ``async`` (:class:`BufferedAsyncPolicy`) — FedBuff-style buffered
  asynchrony: the round closes when an ``async_buffer_fraction`` share
  of uploads has arrived; late uploads are buffered and folded into
  the *next* aggregation with a ``staleness_discount`` weight.

New policies register via :func:`register_policy` without touching the
simulation internals, mirroring the executor registry.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from .aggregation import staleness_weighted_average_states

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .client import Client
    from .simulation import FederatedContext, FLConfig

__all__ = [
    "RoundPlan",
    "RoundInfo",
    "RoundPolicy",
    "SynchronousPolicy",
    "DeadlinePolicy",
    "DropoutPolicy",
    "BufferedAsyncPolicy",
    "available_policies",
    "build_policy",
    "register_policy",
]


@dataclass(frozen=True)
class RoundPlan:
    """The policy's decision for one round.

    Indices refer to positions in the round's participant list.
    ``on_time`` holds positions *into* ``trained`` whose uploads reach
    the server before the round closes; trained-but-not-on-time clients
    are late (buffered by asynchronous policies). ``dropped``
    participants never contribute: they either went offline before the
    broadcast (``dropped_received_broadcast=False``) or missed the
    deadline after downloading the model.
    """

    trained: tuple[int, ...]
    on_time: tuple[int, ...]
    dropped: tuple[int, ...]
    elapsed_seconds: float
    dropped_received_broadcast: bool = True

    def __post_init__(self) -> None:
        if self.elapsed_seconds < 0:
            raise ValueError("elapsed_seconds must be non-negative")
        for field_name in ("trained", "on_time", "dropped"):
            values = getattr(self, field_name)
            if any(p < 0 for p in values):
                raise ValueError(
                    f"{field_name} holds a negative position"
                )
            if len(set(values)) != len(values):
                raise ValueError(
                    f"{field_name} holds duplicate positions"
                )
        if any(p >= len(self.trained) for p in self.on_time):
            raise ValueError("on_time positions exceed the trained list")
        overlap = set(self.trained) & set(self.dropped)
        if overlap:
            # A participant both trained and dropped would be aggregated
            # twice by policies that weight the two sets differently.
            raise ValueError(
                f"participants {sorted(overlap)} appear in both "
                f"trained and dropped"
            )

    def without_trained(self, positions: frozenset[int]) -> "RoundPlan":
        """The plan with some trained-list positions moved to dropped.

        ``positions`` index into ``trained`` (not into the participant
        list). The fault-recovery layer uses this when a client exhausts
        its retries: the survivor positions are re-packed, ``on_time``
        is remapped onto them, and the excluded participants join
        ``dropped`` — so downstream aggregation sees a smaller cohort
        whose weights renormalize over the uploads that actually
        arrived.
        """
        if not positions:
            return self
        keep = [k for k in range(len(self.trained)) if k not in positions]
        remap = {old: new for new, old in enumerate(keep)}
        return RoundPlan(
            trained=tuple(self.trained[k] for k in keep),
            on_time=tuple(
                remap[p] for p in self.on_time if p in remap
            ),
            dropped=self.dropped + tuple(
                self.trained[k] for k in sorted(positions)
            ),
            elapsed_seconds=self.elapsed_seconds,
            dropped_received_broadcast=self.dropped_received_broadcast,
        )


@dataclass(frozen=True)
class RoundInfo:
    """What happened in the last round (``ctx.last_round_info``).

    Method hooks (e.g. :meth:`FederatedMethod.round_hook`) read this to
    learn which devices were dropped or arrived late, so mask-adjustment
    protocols can react to partial participation.
    """

    selected_ids: tuple[int, ...]
    aggregated_ids: tuple[int, ...]
    dropped_ids: tuple[int, ...]
    late_ids: tuple[int, ...]
    stale_applied: int
    elapsed_seconds: float

    @property
    def dropped_count(self) -> int:
        return len(self.dropped_ids)


class RoundPolicy(ABC):
    """Strategy for participant selection, completion, and aggregation."""

    name: str = "base"

    def __init__(self, config: "FLConfig") -> None:
        self.config = config

    def select(self, ctx: "FederatedContext") -> list["Client"]:
        """Sample this round's participants (policies may over-select)."""
        return ctx.sample_participants()

    @abstractmethod
    def plan(
        self,
        ctx: "FederatedContext",
        participants: list["Client"],
        times: list[float],
    ) -> RoundPlan:
        """Decide who trains/uploads and how long the round takes.

        ``times`` holds the simulated seconds each participant needs for
        the full round (download + local compute + upload) on its
        device profile, aligned with ``participants``.
        """

    def aggregate(
        self,
        ctx: "FederatedContext",
        participants: list["Client"],
        plan: RoundPlan,
        states: list[dict[str, np.ndarray]],
    ) -> int:
        """Fold this round's uploads into the global state.

        ``states`` is aligned with ``plan.trained``. Returns the number
        of stale buffered uploads applied (0 for synchronous policies).
        """
        chosen = [states[p] for p in plan.on_time]
        counts = [
            participants[plan.trained[p]].num_samples for p in plan.on_time
        ]
        ctx.server.aggregate(chosen, counts)
        return 0


class SynchronousPolicy(RoundPolicy):
    """The classic barrier: wait for everyone, aggregate everyone."""

    name = "sync"

    def plan(
        self,
        ctx: "FederatedContext",
        participants: list["Client"],
        times: list[float],
    ) -> RoundPlan:
        everyone = tuple(range(len(participants)))
        return RoundPlan(
            trained=everyone,
            on_time=everyone,
            dropped=(),
            elapsed_seconds=max(times) if times else 0.0,
        )


class DeadlinePolicy(RoundPolicy):
    """Over-select, then cut stragglers at a median-relative deadline.

    The round budget is ``deadline_fraction`` times the median
    participant's completion time; devices that would finish past the
    budget are dropped before spending local compute (the server would
    discard their upload anyway). At least the fastest participant
    always survives.
    """

    name = "deadline"

    def select(self, ctx: "FederatedContext") -> list["Client"]:
        over = self.config.deadline_over_select
        fraction = min(1.0, ctx.config.participation_fraction * over)
        return ctx.sample_participants(fraction)

    def plan(
        self,
        ctx: "FederatedContext",
        participants: list["Client"],
        times: list[float],
    ) -> RoundPlan:
        budget = self.config.deadline_fraction * float(np.median(times))
        survivors = [i for i, t in enumerate(times) if t <= budget]
        if not survivors:
            survivors = [int(np.argmin(times))]
        dropped = tuple(sorted(set(range(len(times))) - set(survivors)))
        if dropped:
            # The server closes at the budget — unless the fallback kept
            # a lone survivor who finishes after it, in which case the
            # round can only close when that upload arrives.
            elapsed = max(budget, max(times[i] for i in survivors))
        else:
            elapsed = max(times)
        return RoundPlan(
            trained=tuple(survivors),
            on_time=tuple(range(len(survivors))),
            dropped=dropped,
            elapsed_seconds=elapsed,
        )


class DropoutPolicy(RoundPolicy):
    """Per-round Bernoulli availability: offline clients skip the round.

    Failures are re-drawn every round from the context's simulation RNG
    stream, so enabling dropout never perturbs participant sampling or
    batch order. If every draw fails, the client with the luckiest draw
    stays online so the round can still aggregate.
    """

    name = "dropout"

    def plan(
        self,
        ctx: "FederatedContext",
        participants: list["Client"],
        times: list[float],
    ) -> RoundPlan:
        draws = ctx.sim_rng.random(len(participants))
        alive = [
            i for i, d in enumerate(draws) if d >= self.config.dropout_rate
        ]
        if not alive:
            alive = [int(np.argmax(draws))]
        dropped = tuple(sorted(set(range(len(times))) - set(alive)))
        return RoundPlan(
            trained=tuple(alive),
            on_time=tuple(range(len(alive))),
            dropped=dropped,
            elapsed_seconds=max(times[i] for i in alive),
            dropped_received_broadcast=False,
        )


class BufferedAsyncPolicy(RoundPolicy):
    """Buffered asynchronous aggregation with staleness discounting.

    The server closes the round once ``ceil(async_buffer_fraction * n)``
    uploads have arrived. Every participant still trains (its update is
    in flight), but late uploads land in a buffer and join the *next*
    aggregation with weight ``|D_k| * staleness_discount**staleness``,
    the new weighting path in :mod:`repro.fl.aggregation`.
    """

    name = "async"

    def __init__(self, config: "FLConfig") -> None:
        super().__init__(config)
        # (state, num_samples, rounds-stale-at-next-aggregation - 1)
        self._buffer: list[tuple[dict[str, np.ndarray], int, int]] = []

    def plan(
        self,
        ctx: "FederatedContext",
        participants: list["Client"],
        times: list[float],
    ) -> RoundPlan:
        n = len(participants)
        k = max(1, int(np.ceil(self.config.async_buffer_fraction * n)))
        order = np.argsort(times, kind="stable")
        on_time = tuple(sorted(int(i) for i in order[:k]))
        return RoundPlan(
            trained=tuple(range(n)),
            on_time=on_time,
            dropped=(),
            elapsed_seconds=float(times[order[k - 1]]),
        )

    def aggregate(
        self,
        ctx: "FederatedContext",
        participants: list["Client"],
        plan: RoundPlan,
        states: list[dict[str, np.ndarray]],
    ) -> int:
        stale = [(s, n, age + 1) for s, n, age in self._buffer]
        self._buffer = []
        fresh = [
            (states[p], participants[plan.trained[p]].num_samples, 0)
            for p in plan.on_time
        ]
        entries = fresh + stale
        merged = staleness_weighted_average_states(
            [e[0] for e in entries],
            [e[1] for e in entries],
            [e[2] for e in entries],
            discount=self.config.staleness_discount,
        )
        ctx.server.commit_state(merged)
        on_time = set(plan.on_time)
        for p in range(len(plan.trained)):
            if p not in on_time:
                self._buffer.append(
                    (states[p], participants[plan.trained[p]].num_samples, 0)
                )
        return len(stale)


_POLICIES: dict[str, Callable[["FLConfig"], RoundPolicy]] = {}


def register_policy(
    name: str, factory: Callable[["FLConfig"], RoundPolicy]
) -> None:
    """Register a round-policy factory under ``name`` (case-insensitive).

    The factory is called as ``factory(config)`` with the run's
    :class:`FLConfig`; one policy instance lives per context, so
    stateful policies (the async buffer) stay run-local.
    """
    key = name.lower()
    if key in _POLICIES:
        raise ValueError(f"round policy {name!r} already registered")
    _POLICIES[key] = factory


def available_policies() -> list[str]:
    """Sorted names of registered round policies."""
    return sorted(_POLICIES)


def build_policy(name: str, config: "FLConfig") -> RoundPolicy:
    """Build a registered round policy by name."""
    key = name.lower()
    if key not in _POLICIES:
        raise KeyError(
            f"unknown round policy {name!r}; "
            f"available: {available_policies()}"
        )
    return _POLICIES[key](config)


register_policy("sync", SynchronousPolicy)
register_policy("deadline", DeadlinePolicy)
register_policy("dropout", DropoutPolicy)
register_policy("async", BufferedAsyncPolicy)
