"""Deterministic fault injection and recovery for federated rounds.

Real fleets are defined by failure: clients crash mid-training, worker
processes die, uploads arrive corrupted, duplicated, late, or built
against a mask structure the server has since replaced. This module
makes those failures *reproducible*: a :class:`FaultSchedule` draws
faults per ``(round, client, attempt)`` from counter-based RNG streams
(`np.random.default_rng([seed, salt, round, client, attempt])`), so

- with faults disabled nothing here runs and the golden run stays
  byte-identical;
- with faults enabled the exact same failures fire on every run of the
  same seed, independent of executor backend, retry count, or the order
  in which other streams are consumed.

The defense side lives in :class:`RetryPolicy` (bounded retries with
exponential backoff and deterministic jitter, charged to the *simulated*
clock) and :class:`FaultTolerantRunner`, which wraps the executor call
of one round: each client gets an attempt loop, transport faults are
applied to real wire bytes and adjudicated by the server's ingest
pipeline (see :meth:`repro.fl.server.Server.begin_ingest`), worker
deaths respawn the pool, repeated pool breakage degrades the run to the
serial executor (bitwise-identical results), and a client that exhausts
its retries is excluded — the cohort reweights automatically because
aggregation normalizes over the sample counts actually submitted.

Fault semantics are chosen so a *recovered* fault is bitwise-invisible:
client-side faults (exception, worker crash) fire before training, so
the retry trains the untouched client RNG identically; transport faults
(corruption, truncation, duplicate, stale epoch, timeout, connection
drop, slow delivery, server restart) fire after training, so the retry
re-delivers the exact same bytes. Under a real-transport backend the
``connection_drop``/``server_restart``/``worker_crash`` kinds tear at
the actual transport through the executor hooks (a session is severed,
the endpoint rebinds, a worker process dies) while delivery
adjudication stays in this runner's deterministic ingest — so the
injected churn is real, and the accounting is still a pure function of
the seed.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .payload import pack_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .client import Client, LocalTrainResult
    from .simulation import FederatedContext

__all__ = [
    "FAULT_KINDS",
    "FAULT_PRESETS",
    "SWEEP_FAULT_KINDS",
    "FailureRecord",
    "FaultSchedule",
    "FaultSpec",
    "FaultTolerantRunner",
    "RetryPolicy",
    "RoundFaultStats",
    "corrupt_wire",
    "truncate_wire",
]

_LOG = logging.getLogger(__name__)

#: The injectable fault catalog. Client-side kinds fire before the
#: client trains; transport kinds fire on the trained upload's delivery.
FAULT_KINDS: tuple[str, ...] = (
    "client_exception",   # local training raises before it starts
    "worker_crash",       # a pool worker process dies (pool breakage)
    "corrupt_payload",    # structural bytes of the upload are damaged
    "truncate_payload",   # the upload wire is cut short
    "duplicate_upload",   # the accepted upload is re-sent verbatim
    "stale_epoch",        # the upload claims an outdated mask epoch
    "client_timeout",     # the upload misses the round's window
    "connection_drop",    # the client's transport session is severed
    "slow_client",        # delivery arrives a full timeout window late
    "server_restart",     # the server endpoint restarts mid-delivery
    # Sweep-level kinds (see repro.experiments.sweep): they target a
    # whole run or the sweep journal, not one client's upload, and are
    # inert inside the round-level runner below.
    "run_crash",          # a run's child process dies before training
    "run_hang",           # a run wedges until the watchdog kills it
    "journal_torn_write", # the sweep journal tears mid-append (power cut)
)

_CLIENT_SIDE = frozenset({"client_exception", "worker_crash"})

#: Fault kinds drawn by the sweep orchestrator per (run, attempt) or
#: per journal append. A round-level schedule that names them draws
#: no-ops, so mixing one spec string across both layers stays safe.
SWEEP_FAULT_KINDS = frozenset(
    {"run_crash", "run_hang", "journal_torn_write"}
)

#: Named schedules for ``--faults`` / ``repro chaos``.
FAULT_PRESETS: dict[str, str] = {
    "chaos": (
        "client_exception:0.06,worker_crash:0.04,corrupt_payload:0.06,"
        "truncate_payload:0.04,duplicate_upload:0.06,stale_epoch:0.04,"
        "client_timeout:0.06,connection_drop:0.04,slow_client:0.04,"
        "server_restart:0.02"
    ),
    "flaky_clients": "client_exception:0.15,client_timeout:0.10",
    "bad_transport": (
        "corrupt_payload:0.10,truncate_payload:0.05,"
        "duplicate_upload:0.10,stale_epoch:0.05,"
        "connection_drop:0.08,slow_client:0.05"
    ),
    "sweep_chaos": (
        "run_crash:0.12,run_hang:0.06,journal_torn_write:0.08"
    ),
}

# Stream salts: fault draws, injection randomness (which byte to damage)
# and backoff jitter each live on their own counter-based stream so no
# consumer can shift another.
_DRAW_SALT = 0x4641554C  # "FAUL"
_DAMAGE_SALT = 0x44414D47  # "DAMG"
_JITTER_SALT = 0x4A495454  # "JITT"


@dataclass(frozen=True)
class FailureRecord:
    """One structured entry in the run's failure log.

    ``kind`` names the fault (one of :data:`FAULT_KINDS`) or the defense
    observation (``payload_format``, ``retry_exhausted``,
    ``pool_failure``, ``connection_lost`` — a real-transport backend
    exhausted a task's reassignment budget); ``action`` is what the
    defense layer did about it (``retried``, ``quarantined``,
    ``deduplicated``, ``rejected_stale``, ``respawned_pool``,
    ``degraded_executor``, ``excluded``, ``reconnected``, ``delayed``,
    ``restarted_server``).
    """

    round_index: int
    client_id: int
    attempt: int
    kind: str
    action: str
    detail: str = ""


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind and its per-attempt probability."""

    kind: str
    probability: float

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"available: {list(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}"
            )


class FaultSchedule:
    """Seed-driven fault draws, independent per (round, client, attempt).

    Draws are *counter-based*: each query seeds a fresh generator from
    ``[seed, salt, round, client, attempt]`` instead of consuming a
    shared stream, so the set of faults a given coordinate receives is a
    pure function of the seed — retries, executor backends, and
    evaluation cadence cannot shift it.
    """

    def __init__(self, specs: list[FaultSpec], seed: int = 0) -> None:
        if not specs:
            raise ValueError("a fault schedule needs at least one fault")
        total = sum(spec.probability for spec in specs)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault probabilities sum to {total:.3f} > 1"
            )
        seen = [spec.kind for spec in specs]
        if len(set(seen)) != len(seen):
            raise ValueError("duplicate fault kinds in schedule")
        self.specs = list(specs)
        self.seed = seed

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultSchedule":
        """Build a schedule from ``"kind:prob,kind:prob"`` or a preset.

        Preset names (:data:`FAULT_PRESETS`) expand to their spec
        string, so ``--faults chaos`` and
        ``--faults corrupt_payload:0.1`` share one grammar.
        """
        text = FAULT_PRESETS.get(spec.strip(), spec).strip()
        specs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, prob = part.partition(":")
            if not sep:
                raise ValueError(
                    f"malformed fault spec {part!r}; expected 'kind:prob'"
                )
            try:
                probability = float(prob)
            except ValueError as exc:
                raise ValueError(
                    f"malformed fault probability {prob!r} in {part!r}"
                ) from exc
            specs.append(FaultSpec(kind.strip(), probability))
        return cls(specs, seed=seed)

    def spec_string(self) -> str:
        """Canonical ``kind:prob`` form (round-trips through parse)."""
        return ",".join(
            f"{spec.kind}:{spec.probability:g}" for spec in self.specs
        )

    def draw(
        self, round_index: int, client_id: int, attempt: int
    ) -> str | None:
        """The fault (or ``None``) injected at one coordinate."""
        rng = np.random.default_rng(
            [self.seed, _DRAW_SALT, round_index, client_id, attempt]
        )
        u = float(rng.random())
        acc = 0.0
        for spec in self.specs:
            acc += spec.probability
            if u < acc:
                return spec.kind
        return None

    def damage_rng(
        self, round_index: int, client_id: int, attempt: int
    ) -> np.random.Generator:
        """The stream that picks *how* to damage this upload's bytes."""
        return np.random.default_rng(
            [self.seed, _DAMAGE_SALT, round_index, client_id, attempt]
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    Backoff (and the timeout a ``client_timeout`` fault costs) is
    charged to the *simulated* clock, never the wall clock; jitter is
    drawn counter-based from the same seed discipline as the schedule,
    so the simulated time of a faulty run is reproducible too.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.5
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    timeout_seconds: float = 5.0
    pool_failure_limit: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0.0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.timeout_seconds < 0.0:
            raise ValueError("timeout_seconds must be >= 0")
        if self.pool_failure_limit < 1:
            raise ValueError("pool_failure_limit must be >= 1")

    def backoff(
        self, seed: int, round_index: int, client_id: int, attempt: int
    ) -> float:
        """Simulated seconds to wait before the next attempt."""
        base = self.backoff_seconds * self.backoff_factor ** attempt
        rng = np.random.default_rng(
            [seed, _JITTER_SALT, round_index, client_id, attempt]
        )
        return base * (1.0 + self.jitter_fraction * float(rng.random()))


# ----------------------------------------------------------------------
# Wire damage
# ----------------------------------------------------------------------
def corrupt_wire(wire: bytes, rng: np.random.Generator) -> bytes:
    """Damage structural bytes of a payload wire form.

    The codec cannot detect a bit flip inside a *value* segment (floats
    carry no checksum), so injected corruption targets the structure the
    validator audits: the magic, the version byte, or the pickled spec
    header. Every variant is guaranteed to surface as
    :class:`~repro.fl.payload.PayloadFormatError` on ingest.
    """
    out = bytearray(wire)
    mode = int(rng.integers(0, 3))
    if mode == 0:
        out[0] ^= 0xFF  # magic
    elif mode == 1:
        out[4] ^= 0xFF  # version byte
    else:
        # Scribble over the start of the pickled spec table (offset 24:
        # the fixed header is 4s B B xx Q Q = 24 bytes).
        for offset in range(24, min(32, len(out))):
            out[offset] ^= 0x5A
    return bytes(out)


def truncate_wire(wire: bytes, rng: np.random.Generator) -> bytes:
    """Cut the wire short (always detected: the header length lies)."""
    if len(wire) <= 1:
        return b""
    cut = int(rng.integers(0, len(wire)))
    return bytes(wire[:cut])


# ----------------------------------------------------------------------
# The fault-tolerant round runner
# ----------------------------------------------------------------------
@dataclass
class RoundFaultStats:
    """Counters one round contributes to the failure accounting."""

    injected: int = 0
    retries: int = 0
    quarantined: int = 0
    recoveries: int = 0

    def merge(self, other: "RoundFaultStats") -> None:
        self.injected += other.injected
        self.retries += other.retries
        self.quarantined += other.quarantined
        self.recoveries += other.recoveries


@dataclass
class RoundOutcome:
    """What the runner produced for one round's trained cohort."""

    #: Aligned with the trained list; ``None`` marks an excluded client.
    results: list["LocalTrainResult | None"]
    #: Positions (into the trained list) excluded after retry exhaustion.
    excluded: frozenset[int]
    #: Simulated seconds of backoff/timeouts charged by retries.
    extra_seconds: float
    records: list[FailureRecord] = field(default_factory=list)
    stats: RoundFaultStats = field(default_factory=RoundFaultStats)


class FaultTolerantRunner:
    """Run one round's local training under a fault schedule.

    Wraps the context's executor with a per-client attempt loop: each
    attempt draws at most one fault, client-side faults skip training
    (so the retry trains identically), transport faults damage or
    misroute the *delivery* of an already-trained upload (so the retry
    re-sends identical bytes), and every admission decision goes through
    the server's per-round ingest session.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        retry: RetryPolicy,
        seed: int = 0,
    ) -> None:
        self.schedule = schedule
        self.retry = retry
        self.seed = seed
        self._pool_breakages = 0

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _wire_for(
        ctx: "FederatedContext", result: "LocalTrainResult"
    ) -> bytes:
        """The upload's wire bytes (packing serial results on demand)."""
        if result.payload is not None:
            return bytes(result.payload.to_wire())
        return bytes(
            pack_state(result.resolve_state(), ctx.server.masks).to_wire()
        )

    def _handle_worker_crash(
        self,
        ctx: "FederatedContext",
        round_index: int,
        client_id: int,
        attempt: int,
        records: list[FailureRecord],
        stats: RoundFaultStats,
    ) -> None:
        crashed = ctx.executor.crash_worker(ctx)
        if crashed:
            stats.recoveries += 1
            self._pool_breakages += 1
            records.append(
                FailureRecord(
                    round_index, client_id, attempt,
                    "worker_crash", "respawned_pool",
                )
            )
            if (
                self._pool_breakages >= self.retry.pool_failure_limit
                and ctx.degrade_executor()
            ):
                stats.recoveries += 1
                _LOG.warning(
                    "pool broke %d times; degrading to the serial "
                    "executor", self._pool_breakages,
                )
                records.append(
                    FailureRecord(
                        round_index, client_id, attempt,
                        "pool_failure", "degraded_executor",
                        detail=f"breakages={self._pool_breakages}",
                    )
                )
        else:
            # No worker process to kill (serial backend): the fault
            # lands as an in-process crash before training.
            records.append(
                FailureRecord(
                    round_index, client_id, attempt,
                    "worker_crash", "retried",
                )
            )

    # -- the round -----------------------------------------------------
    def run_round(
        self,
        ctx: "FederatedContext",
        trained: list["Client"],
        round_index: int,
    ) -> RoundOutcome:
        """Train + deliver each client, injecting and recovering faults."""
        ingest = ctx.server.begin_ingest(round_index)
        records: list[FailureRecord] = []
        stats = RoundFaultStats()
        results: list["LocalTrainResult | None"] = []
        excluded: set[int] = set()
        extra = 0.0
        retry = self.retry
        for position, client in enumerate(trained):
            cid = client.client_id
            result: "LocalTrainResult | None" = None
            delivered = False
            attempts_used = 0
            for attempt in range(retry.max_attempts):
                attempts_used = attempt + 1
                kind = self.schedule.draw(round_index, cid, attempt)
                if kind in SWEEP_FAULT_KINDS:
                    # Sweep-level kinds target whole runs / the sweep
                    # journal; inside a round they are no-ops (and not
                    # counted as injected).
                    kind = None
                if kind is not None:
                    stats.injected += 1
                    _LOG.debug(
                        "round %d client %d attempt %d: injecting %s",
                        round_index, cid, attempt, kind,
                    )
                if kind in _CLIENT_SIDE and result is None:
                    # The fault fires before local training starts, so
                    # the client's RNG is untouched and the retry will
                    # train bit-identically.
                    if kind == "client_exception":
                        records.append(
                            FailureRecord(
                                round_index, cid, attempt,
                                "client_exception", "retried",
                            )
                        )
                    else:
                        self._handle_worker_crash(
                            ctx, round_index, cid, attempt,
                            records, stats,
                        )
                    extra += retry.backoff(
                        self.seed, round_index, cid, attempt
                    )
                    continue
                if kind in _CLIENT_SIDE:
                    # Already trained: the crash hits the re-delivery
                    # context. The upload bytes are retained, so the
                    # retry re-sends them unchanged.
                    if kind == "worker_crash":
                        self._handle_worker_crash(
                            ctx, round_index, cid, attempt,
                            records, stats,
                        )
                    else:
                        records.append(
                            FailureRecord(
                                round_index, cid, attempt,
                                kind, "retried",
                            )
                        )
                    extra += retry.backoff(
                        self.seed, round_index, cid, attempt
                    )
                    continue
                if result is None:
                    result = ctx.executor.run_clients(ctx, [client])[0]
                    if result is None:
                        # A real-transport backend lost the task for
                        # good (assignment budget exhausted). The
                        # client's RNG never advanced, so the retry
                        # trains bit-identically.
                        records.append(
                            FailureRecord(
                                round_index, cid, attempt,
                                "connection_lost", "retried",
                            )
                        )
                        extra += retry.backoff(
                            self.seed, round_index, cid, attempt
                        )
                        continue
                epoch = ctx.server.mask_epoch
                if kind == "client_timeout":
                    records.append(
                        FailureRecord(
                            round_index, cid, attempt,
                            "client_timeout", "retried",
                        )
                    )
                    extra += retry.timeout_seconds
                    continue
                if kind == "connection_drop":
                    # Tear at the real transport when there is one: the
                    # severed worker must reconnect and resume its
                    # session. Delivery is retried either way, and the
                    # retained upload bytes re-send unchanged.
                    dropped = ctx.executor.drop_connection(ctx)
                    if dropped:
                        stats.recoveries += 1
                    records.append(
                        FailureRecord(
                            round_index, cid, attempt,
                            "connection_drop",
                            "reconnected" if dropped else "retried",
                        )
                    )
                    extra += retry.backoff(
                        self.seed, round_index, cid, attempt
                    )
                    continue
                if kind == "server_restart":
                    # A real backend restarts its endpoint (listener,
                    # connections, sessions) on the same port with
                    # round state intact; workers re-register fresh.
                    restarted = ctx.executor.restart_server(ctx)
                    if restarted:
                        stats.recoveries += 1
                    records.append(
                        FailureRecord(
                            round_index, cid, attempt,
                            "server_restart",
                            "restarted_server" if restarted
                            else "retried",
                        )
                    )
                    extra += retry.backoff(
                        self.seed, round_index, cid, attempt
                    )
                    continue
                if kind == "slow_client":
                    # The upload arrives a full timeout window late but
                    # *arrives*, on this same attempt: charge the clock
                    # and fall through to clean delivery below.
                    records.append(
                        FailureRecord(
                            round_index, cid, attempt,
                            "slow_client", "delayed",
                        )
                    )
                    extra += retry.timeout_seconds
                    kind = None
                if kind == "stale_epoch":
                    status = ingest.submit(
                        cid, attempt, mask_epoch=epoch - 1
                    )
                    assert status == "rejected_stale"
                    extra += retry.backoff(
                        self.seed, round_index, cid, attempt
                    )
                    continue
                if kind in ("corrupt_payload", "truncate_payload"):
                    rng = self.schedule.damage_rng(
                        round_index, cid, attempt
                    )
                    wire = self._wire_for(ctx, result)
                    damaged = (
                        corrupt_wire(wire, rng)
                        if kind == "corrupt_payload"
                        else truncate_wire(wire, rng)
                    )
                    status = ingest.submit(
                        cid, attempt, mask_epoch=epoch, wire=damaged
                    )
                    assert status == "quarantined"
                    stats.quarantined += 1
                    extra += retry.backoff(
                        self.seed, round_index, cid, attempt
                    )
                    continue
                # Clean delivery (kind is None or duplicate_upload —
                # the duplicate replays the accepted upload verbatim).
                status = ingest.submit(cid, attempt, mask_epoch=epoch)
                if status != "accepted":  # pragma: no cover - defensive
                    extra += retry.backoff(
                        self.seed, round_index, cid, attempt
                    )
                    continue
                if kind == "duplicate_upload":
                    replay = ingest.submit(
                        cid, attempt, mask_epoch=epoch
                    )
                    assert replay == "duplicate"
                    stats.recoveries += 1
                delivered = True
                break
            stats.retries += attempts_used - 1
            if delivered:
                results.append(result)
            else:
                results.append(None)
                excluded.add(position)
                stats.recoveries += 1  # partial-cohort reweighting
                _LOG.warning(
                    "round %d client %d excluded after %d attempts",
                    round_index, cid, attempts_used,
                )
                records.append(
                    FailureRecord(
                        round_index, cid, attempts_used - 1,
                        "retry_exhausted", "excluded",
                        detail=f"attempts={attempts_used}",
                    )
                )
        records.extend(ingest.records)
        return RoundOutcome(
            results=results,
            excluded=frozenset(excluded),
            extra_seconds=extra,
            records=records,
            stats=stats,
        )
