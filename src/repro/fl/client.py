"""Device-side logic: local training, gradient reports, BN recalibration.

A :class:`Client` owns a local dataset shard and a development subset
(the paper's ``D_hat_k``, default 10% of local data, used for the
adaptive BN selection module). Clients never own a model — the
simulation loads the global state into a shared model instance before
invoking client methods, mirroring the download step of each round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..data.transforms import augment_batch
from ..nn import engine
from ..nn.loss import CrossEntropyLoss
from ..nn.module import Module
from ..nn.optim import SGD
from ..sparse.mask import prunable_parameters
from ..sparse.topk_buffer import TopKBuffer
from . import bn as bn_utils
from .latency import DeviceProfile
from .state import get_state

__all__ = ["Client", "LocalTrainResult"]

_STREAM_CHUNK = 4096


@dataclass
class LocalTrainResult:
    """What a device uploads after local training.

    ``state`` is the flat ``{name: array}`` upload every consumer
    (policies, aggregation, method hooks) reads. Executors that move
    packed sparse uploads attach the decoded
    :class:`~repro.fl.payload.PackedPayload` as ``payload`` so byte
    accounting can be reconciled against the actually-transferred size;
    ``state`` may be ``None`` only transiently on the worker side when
    the caller asked :meth:`Client.train` not to materialize the dict
    (``collect_state=False``).
    """

    state: dict[str, np.ndarray] | None
    num_samples: int
    num_iterations: int
    mean_loss: float
    payload: object | None = None

    def resolve_state(self) -> dict[str, np.ndarray]:
        """The upload as a flat state dict, decoding the payload lazily.

        Executors that ship packed uploads leave ``state`` unset so
        fully-packed rounds (sync policy feeding
        :func:`~repro.fl.aggregation.aggregate_packed_states`) never pay
        the dense decode; consumers that do want dicts call this.
        """
        if self.state is None and self.payload is not None:
            from .payload import unpack_state

            self.state = unpack_state(self.payload, validate=False)
        return self.state


class Client:
    """One federated device with a local dataset shard."""

    def __init__(
        self,
        client_id: int,
        train_data: Dataset,
        dev_fraction: float = 0.1,
        seed: int = 0,
        device: DeviceProfile | None = None,
    ) -> None:
        if len(train_data) == 0:
            raise ValueError(f"client {client_id} has no local data")
        self.client_id = client_id
        self.train_data = train_data
        # The simulated hardware this client runs on; the round loop
        # uses it to translate per-round FLOPs/bytes into seconds.
        self.device = device
        self.rng = np.random.default_rng(seed * 100_003 + client_id)
        self.dev_data = train_data.sample_fraction(dev_fraction, self.rng)
        if len(self.dev_data) == 0:
            # An empty dev set would make evaluate_candidate_loss divide
            # by zero and recalibrate_bn silently iterate no batches —
            # fail loudly at construction, where the shard is visible.
            raise ValueError(
                f"client {client_id} drew an empty dev set from a "
                f"{len(train_data)}-sample shard "
                f"(dev_fraction={dev_fraction})"
            )
        # Materialized dev batches, keyed by batch size. Selection runs
        # 2C stats/loss sweeps over the same dev set; reusing one batch
        # list keeps the arrays' identity stable so the engine's
        # lowering cache can memoize the stem lowering across candidates
        # (contents are identical to Dataset.batches, so results are
        # bit-identical with or without the cache).
        self._dev_batch_cache: dict[int, list] = {}
        self._eval_loss_fn: CrossEntropyLoss | None = None

    def __getstate__(self) -> dict:
        # Worker processes rebuild the (derived) caches locally; keeping
        # them out of the pickle keeps pool start-up payloads lean.
        state = self.__dict__.copy()
        state["_dev_batch_cache"] = {}
        state["_eval_loss_fn"] = None
        return state

    @property
    def num_samples(self) -> int:
        return len(self.train_data)

    @property
    def num_dev_samples(self) -> int:
        return len(self.dev_data)

    def dev_batches(self, batch_size: int) -> list:
        """This client's dev set as a cached ``(images, labels)`` list."""
        batches = self._dev_batch_cache.get(batch_size)
        if batches is None:
            batches = list(self.dev_data.batches(batch_size))
            self._dev_batch_cache[batch_size] = batches
        return batches

    # ------------------------------------------------------------------
    # Local sparse SGD (paper Eq. 5)
    # ------------------------------------------------------------------
    def train(
        self,
        model: Module,
        epochs: int,
        batch_size: int,
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        augment: bool = False,
        collect_state: bool = True,
    ) -> LocalTrainResult:
        """Run ``epochs`` of local SGD and return the updated state.

        The model must already carry the global parameters and masks;
        updates are masked so pruned positions stay exactly zero.
        ``collect_state=False`` skips the full state-dict copy — for
        callers (executor workers) that read the trained values straight
        off the model, e.g. to pack a sparse upload.
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        model.train(True)
        optimizer = SGD(
            model, lr=lr, momentum=momentum, weight_decay=weight_decay
        )
        loss_fn = CrossEntropyLoss()
        loss_sum = 0.0
        iterations = 0
        # Local SGD applies masked updates (paper Eq. 5), so gradients of
        # fully-pruned output rows would be discarded anyway — let the
        # engine skip computing them. Growth-signal collection (Eq. 6)
        # happens in compute_topk_pruned_gradients, outside this context.
        with engine.masked_weight_grads():
            for _ in range(epochs):
                for images, labels in self.train_data.batches(
                    batch_size, rng=self.rng
                ):
                    if augment:
                        images = augment_batch(images, self.rng)
                    logits = model(images)
                    loss = loss_fn(logits, labels)
                    model.zero_grad()
                    model.backward(loss_fn.backward())
                    optimizer.step()
                    loss_sum += loss
                    iterations += 1
        return LocalTrainResult(
            state=get_state(model) if collect_state else None,
            num_samples=self.num_samples,
            num_iterations=iterations,
            mean_loss=loss_sum / max(1, iterations),
        )

    # ------------------------------------------------------------------
    # Gradient reports
    # ------------------------------------------------------------------
    def _backward_on_batch(self, model: Module, batch_size: int) -> None:
        """One forward/backward pass on a local batch (no update)."""
        indices = self.rng.choice(
            len(self.train_data),
            size=min(batch_size, len(self.train_data)),
            replace=False,
        )
        images = self.train_data.images[indices]
        labels = self.train_data.labels[indices]
        loss_fn = CrossEntropyLoss()
        model.train(True)
        model.zero_grad()
        loss_fn(model(images), labels)
        model.backward(loss_fn.backward())

    def compute_topk_pruned_gradients(
        self,
        model: Module,
        layer_counts: dict[str, int],
        batch_size: int,
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Top-``a_t^l`` gradients of *pruned* parameters (paper Eq. 6).

        For every requested layer the dense gradient values at pruned
        positions are streamed through an O(a_t^l) :class:`TopKBuffer`;
        only the surviving (flat index, value) pairs are returned — the
        device never stores a dense score tensor.
        """
        self._backward_on_batch(model, batch_size)
        params = dict(prunable_parameters(model))
        report: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name, count in layer_counts.items():
            if name not in params:
                raise KeyError(f"unknown prunable layer {name!r}")
            param = params[name]
            if param.mask is None:
                raise ValueError(
                    f"layer {name!r} has no mask; nothing is pruned"
                )
            if count <= 0:
                continue
            pruned_idx = np.flatnonzero(param.mask.reshape(-1) == 0)
            grad_flat = param.grad.reshape(-1)
            buffer = TopKBuffer(int(count))
            for start in range(0, pruned_idx.size, _STREAM_CHUNK):
                chunk = pruned_idx[start : start + _STREAM_CHUNK]
                buffer.push_chunk(chunk, grad_flat[chunk])
            report[name] = buffer.items()
        return report

    def compute_dense_gradients(
        self,
        model: Module,
        batch_size: int,
        layer_names: list[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Dense gradient magnitudes for the named prunable layers.

        This is the memory-hungry report PruneFL-style methods need
        (``layer_names=None`` means every prunable layer).
        """
        self._backward_on_batch(model, batch_size)
        params = dict(prunable_parameters(model))
        if layer_names is None:
            layer_names = list(params)
        report = {}
        for name in layer_names:
            if name not in params:
                raise KeyError(f"unknown prunable layer {name!r}")
            report[name] = params[name].grad.copy()
        return report

    # ------------------------------------------------------------------
    # Adaptive BN selection support (paper Algorithm 1)
    # ------------------------------------------------------------------
    def recalibrate_bn(
        self, model: Module, batch_size: int = 64
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Local BN statistics on the development dataset."""
        return bn_utils.recalibrate_bn_statistics(
            model, self.dev_batches(batch_size), batch_size
        )

    def evaluate_candidate_loss(
        self, model: Module, batch_size: int = 64
    ) -> float:
        """Mean loss of the (recalibrated) model on the dev dataset.

        The loss object is constructed once per client and the sample
        sum accumulates in a Python float (IEEE float64) in dataset
        order — the exact accumulator and summation order of the
        original per-call implementation, so values are bit-identical.
        """
        batches = self.dev_batches(batch_size)
        if not batches:
            raise ValueError(
                f"client {self.client_id} has no dev batches to "
                f"evaluate on"
            )
        loss_fn = self._eval_loss_fn
        if loss_fn is None:
            loss_fn = self._eval_loss_fn = CrossEntropyLoss()
        was_training = model.training
        model.eval()
        loss_sum = 0.0
        count = 0
        with engine.inference_mode():
            for images, labels in batches:
                loss_sum += loss_fn(model(images), labels) * len(labels)
                count += len(labels)
        model.train(was_training)
        return loss_sum / count
