"""Federated-learning substrate: clients, server, aggregation, rounds."""

from .aggregation import (
    aggregate_bn_statistics,
    aggregate_sparse_gradients,
    normalized_weights,
    staleness_weighted_average_states,
    weighted_average_states,
)
from .bn import (
    bn_layers,
    get_bn_statistics,
    recalibrate_bn_statistics,
    set_bn_statistics,
)
from .client import Client, LocalTrainResult
from .comm import CommTracker
from .executor import (
    ClientExecutor,
    ProcessPoolClientExecutor,
    SerialExecutor,
    available_executors,
    build_executor,
    register_executor,
)
from .latency import (
    DeviceProfile,
    build_fleet,
    heterogeneous_fleet,
    parse_fleet_spec,
    round_latency,
    straggler_slowdown,
    uniform_fleet,
)
from .policies import (
    BufferedAsyncPolicy,
    DeadlinePolicy,
    DropoutPolicy,
    RoundInfo,
    RoundPlan,
    RoundPolicy,
    SynchronousPolicy,
    available_policies,
    build_policy,
    register_policy,
)
from .server import Server
from .simulation import FederatedContext, FLConfig
from .state import (
    get_buffers,
    get_parameters,
    get_state,
    set_buffers,
    set_parameters,
    set_state,
    zeros_like_state,
)
from .training import server_pretrain, train_centralized

__all__ = [
    "BufferedAsyncPolicy",
    "Client",
    "ClientExecutor",
    "CommTracker",
    "DeadlinePolicy",
    "DeviceProfile",
    "DropoutPolicy",
    "FLConfig",
    "FederatedContext",
    "LocalTrainResult",
    "ProcessPoolClientExecutor",
    "RoundInfo",
    "RoundPlan",
    "RoundPolicy",
    "SerialExecutor",
    "Server",
    "SynchronousPolicy",
    "available_executors",
    "available_policies",
    "build_executor",
    "build_fleet",
    "build_policy",
    "parse_fleet_spec",
    "register_executor",
    "register_policy",
    "uniform_fleet",
    "aggregate_bn_statistics",
    "aggregate_sparse_gradients",
    "bn_layers",
    "get_bn_statistics",
    "get_buffers",
    "get_parameters",
    "get_state",
    "heterogeneous_fleet",
    "normalized_weights",
    "recalibrate_bn_statistics",
    "round_latency",
    "server_pretrain",
    "straggler_slowdown",
    "set_bn_statistics",
    "set_buffers",
    "set_parameters",
    "set_state",
    "staleness_weighted_average_states",
    "train_centralized",
    "weighted_average_states",
    "zeros_like_state",
]
