"""Federated-learning substrate: clients, server, aggregation, rounds."""

from .aggregation import (
    aggregate_bn_statistics,
    aggregate_sparse_gradients,
    normalized_weights,
    weighted_average_states,
)
from .bn import (
    bn_layers,
    get_bn_statistics,
    recalibrate_bn_statistics,
    set_bn_statistics,
)
from .client import Client, LocalTrainResult
from .comm import CommTracker
from .executor import (
    ClientExecutor,
    ProcessPoolClientExecutor,
    SerialExecutor,
    available_executors,
    build_executor,
    register_executor,
)
from .latency import (
    DeviceProfile,
    heterogeneous_fleet,
    round_latency,
    straggler_slowdown,
)
from .server import Server
from .simulation import FederatedContext, FLConfig
from .state import (
    get_buffers,
    get_parameters,
    get_state,
    set_buffers,
    set_parameters,
    set_state,
    zeros_like_state,
)
from .training import server_pretrain, train_centralized

__all__ = [
    "Client",
    "ClientExecutor",
    "CommTracker",
    "DeviceProfile",
    "FLConfig",
    "FederatedContext",
    "LocalTrainResult",
    "ProcessPoolClientExecutor",
    "SerialExecutor",
    "Server",
    "available_executors",
    "build_executor",
    "register_executor",
    "aggregate_bn_statistics",
    "aggregate_sparse_gradients",
    "bn_layers",
    "get_bn_statistics",
    "get_buffers",
    "get_parameters",
    "get_state",
    "heterogeneous_fleet",
    "normalized_weights",
    "recalibrate_bn_statistics",
    "round_latency",
    "server_pretrain",
    "straggler_slowdown",
    "set_bn_statistics",
    "set_buffers",
    "set_parameters",
    "set_state",
    "train_centralized",
    "weighted_average_states",
    "zeros_like_state",
]
