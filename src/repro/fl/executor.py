"""Pluggable client-execution backends for the federated round.

``FederatedContext.run_fedavg_round`` delegates the per-client local
training to a :class:`ClientExecutor`; the round policy (see
:mod:`repro.fl.policies`) decides *which* clients reach the executor,
so backends stay policy-agnostic. Two backends ship built in:

- ``serial`` (:class:`SerialExecutor`) — trains every participant one
  after another through the context's shared model instance. The
  per-client "download" restores the model from the server's flat
  broadcast snapshot (one memcpy, no allocation) and is bit-identical
  to the original per-client ``load_into_model`` installation;
- ``process`` (:class:`ProcessPoolClientExecutor`) — persistent worker
  processes cache the model structure from start-up and receive each
  round's state as a *packed sparse payload* through a
  ``multiprocessing.shared_memory`` arena: the master packs and writes
  once per round, every worker maps the same segment and restores its
  cached model through zero-copy ``np.frombuffer`` views. Uploads come
  back packed as well, so per-round data movement scales with the
  active-parameter count instead of the dense model size. Client RNG
  streams are shipped and restored per task, keeping the round-to-round
  batch draws identical to the serial backend;
- ``network`` (:class:`NetworkClientExecutor`) — a long-lived localhost
  round server (:mod:`repro.fl.network_server`) hosts the master's side
  of a small framed protocol; worker *processes* register with session
  tokens, heartbeat, pull the packed broadcast, and push packed uploads
  over real sockets — :class:`~repro.fl.payload.PackedPayload` bytes
  verbatim as the wire format, re-validated by the server's
  :class:`~repro.fl.server.RoundIngest` on arrival. Workers materialize
  clients from the pickled :class:`~repro.fl.fleet.ClientDirectory` and
  the master ships each task's client RNG, so a fixed-seed sync run is
  byte-for-byte identical to the serial backend. Churn (dropped
  connections, killed workers, a mid-run server restart) is survived by
  heartbeat liveness, session resume, idempotent upload replay, and
  bounded task reassignment; a client whose task exhausts the budget
  comes back as ``None`` and the round reweights it out.

All worker backends ship the population as a pickled ``ClientDirectory``
(not a flat client list), so the ``virtual`` fleet backend works under
them: a worker materializes only the clients it is actually assigned.

Backends are selected via ``FLConfig.executor`` (and the ``--executor``
CLI flag); new ones can be added with :func:`register_executor` without
touching the simulation internals.
"""

from __future__ import annotations

import logging
import os
import pickle
import struct
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..nn import engine
from ..sparse.mask import MaskSet
from .bn import set_bn_statistics
from .client import Client, LocalTrainResult
from .payload import ModelBinding, PackedPayload, StatePacker, \
    build_mask_indices, pack_model_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fleet import ClientDirectory
    from .simulation import FederatedContext
    from .transport import TransportConfig

_LOG = logging.getLogger(__name__)

__all__ = [
    "ClientExecutor",
    "NetworkClientExecutor",
    "SelectionPass",
    "SerialExecutor",
    "ProcessPoolClientExecutor",
    "available_executors",
    "build_executor",
    "register_executor",
]


@dataclass(frozen=True)
class SelectionPass:
    """One candidate-selection sweep over the clients (Algorithm 1).

    The selection engine installs a candidate into the context's shared
    model and asks the executor to run one stats or loss pass on every
    client. ``mask_token`` is a hashable tag unique to the installed
    candidate — executors that broadcast the candidate to worker
    processes key their shipped-mask caches on it, exactly like the
    server's ``mask_epoch`` during training rounds. ``masks`` carries
    the candidate's :class:`~repro.sparse.mask.MaskSet` for backends
    that pack the broadcast sparse; in-process backends read the model
    directly and ignore it.
    """

    kind: str  # "bn_stats" | "dev_loss"
    batch_size: int
    mask_token: object
    masks: MaskSet | None = None
    bn_stats: dict | None = None


class ClientExecutor(ABC):
    """Strategy for running one round of local training."""

    name: str = "base"

    @abstractmethod
    def run_clients(
        self, ctx: "FederatedContext", participants: list[Client]
    ) -> list[LocalTrainResult]:
        """Train every participant on the current global model.

        Returns one :class:`LocalTrainResult` per participant, aligned
        with ``participants``. Implementations must leave each client's
        RNG in the same state serial execution would — methods replay
        the batch stream across rounds and backends must agree.

        Backends with real transport may lose a client for good (its
        task exhausted the reassignment budget); such a client's slot is
        ``None`` and the caller excludes it from the round via
        ``RoundPlan.without_trained`` — its RNG was never advanced, so
        determinism of the surviving cohort is unaffected.
        """

    def run_selection(
        self,
        ctx: "FederatedContext",
        clients: list[Client],
        selection: SelectionPass,
    ) -> list:
        """One per-client stats/loss sweep for candidate selection.

        The candidate is already installed in ``ctx.model`` (weights,
        masks); ``selection.bn_stats`` — when present — are the
        aggregated statistics to install before scoring. Returns one
        per-client BN-stats dict (``kind="bn_stats"``) or scalar loss
        (``kind="dev_loss"``) aligned with ``clients``. The default
        implementation runs in-process on the shared model; it is
        bit-identical to the reference per-(candidate, client) loop
        because the stats/loss passes never mutate parameters and BN
        recalibration resets the running statistics it touches.
        """
        model = ctx.model
        if selection.bn_stats is not None:
            set_bn_statistics(model, selection.bn_stats)
        results = []
        for client in clients:
            if selection.kind == "bn_stats":
                results.append(
                    client.recalibrate_bn(model, selection.batch_size)
                )
            elif selection.kind == "dev_loss":
                results.append(
                    client.evaluate_candidate_loss(
                        model, selection.batch_size
                    )
                )
            else:
                raise ValueError(
                    f"unknown selection pass kind {selection.kind!r}"
                )
        return results

    def crash_worker(self, ctx: "FederatedContext") -> bool:
        """Kill one worker process, if the backend has any.

        The fault-injection hook behind the ``worker_crash`` fault
        (see :mod:`repro.fl.faults`). Returns ``True`` when a worker
        actually died and the backend repaired itself (pool respawn);
        in-process backends return ``False`` and the injector treats
        the fault as an ordinary pre-training client crash.
        """
        del ctx
        return False

    def drop_connection(self, ctx: "FederatedContext") -> bool:
        """Sever one live transport connection, if the backend has any.

        The hook behind the ``connection_drop`` fault. A real-transport
        backend drops a worker's session + socket (the worker must
        reconnect and resume); in-process backends return ``False`` and
        the injector treats the fault as a plain retried delivery.
        """
        del ctx
        return False

    def restart_server(self, ctx: "FederatedContext") -> bool:
        """Restart the backend's server endpoint, if it has one.

        The hook behind the ``server_restart`` fault. A real-transport
        backend tears down its listener, connections, and sessions and
        rebinds on the same port (round state intact); in-process
        backends return ``False`` and the injector treats the fault as
        a plain retried delivery.
        """
        del ctx
        return False

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        # Worker pools and shm arenas must die on exception paths too.
        self.close()


def _train_kwargs(ctx: "FederatedContext") -> dict:
    cfg = ctx.config
    return dict(
        epochs=cfg.local_epochs,
        batch_size=cfg.batch_size,
        lr=cfg.lr,
        momentum=cfg.momentum,
        weight_decay=cfg.weight_decay,
        augment=cfg.augment,
    )


class SerialExecutor(ClientExecutor):
    """The reference backend: one client at a time on the shared model."""

    name = "serial"

    def __init__(self, max_workers: int | None = None) -> None:
        del max_workers  # accepted for a uniform factory signature

    def run_clients(
        self, ctx: "FederatedContext", participants: list[Client]
    ) -> list[LocalTrainResult]:
        if not participants:
            return []
        kwargs = _train_kwargs(ctx)
        results = []
        # One full install + snapshot per round; each client then "downloads"
        # the broadcast with a flat in-place restore instead of re-running
        # the allocating per-tensor installation.
        ctx.server.broadcast()
        for client in participants:
            ctx.server.restore_broadcast()
            results.append(client.train(ctx.model, **kwargs))
        return results


# ----------------------------------------------------------------------
# Shared-memory broadcast arena
# ----------------------------------------------------------------------
#: Arena prologue: masks-blob length, payload length (both uint64).
_ARENA_HEADER = struct.Struct("<QQ")


def _arena_payload_offset(masks_len: int) -> int:
    """Start of the payload segment: 8-aligned past the masks blob.

    The codec guarantees 8-aligned tensor segments relative to the
    payload start; the pickled masks blob has arbitrary length, so the
    payload must be placed at an aligned offset or every worker-side
    int32/float32 view into the arena goes unaligned.
    """
    return (_ARENA_HEADER.size + masks_len + 7) & ~7


def _attach_shared_memory(name: str):
    """Attach to an existing segment without resource-tracker hijacking.

    On Python < 3.13 every attach registers the segment with a resource
    tracker that tries to unlink it again at exit (bpo-39959). The
    master owns the segment's lifetime. Under ``fork`` the workers share
    the master's tracker process and registration is a set — the
    duplicate is harmless and must *not* be unregistered (that would
    strip the master's own entry). Under ``spawn`` each worker has its
    own tracker, which would spuriously unlink at worker exit, so there
    the worker unregisters its attachment.
    """
    import multiprocessing
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method(allow_none=True) != "fork":
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except (ImportError, AttributeError, KeyError, OSError) as exc:
            # Worst case the worker's tracker unlinks the segment at
            # exit (bpo-39959); the run survives, so log and continue.
            _LOG.warning(
                "could not unregister shm attachment %s from the "
                "resource tracker: %s", name, exc,
            )
    return shm


def _pack_masks_blob(masks: MaskSet) -> bytes:
    """Bit-packed wire form of a mask structure (1 bit per parameter)."""
    packed = {
        name: (mask.shape, np.packbits(mask.reshape(-1)).tobytes())
        for name, mask in masks.items()
    }
    return pickle.dumps(packed, protocol=pickle.HIGHEST_PROTOCOL)


def _unpack_masks_blob(blob: bytes) -> MaskSet:
    packed = pickle.loads(blob)
    masks = {}
    for name, (shape, bits) in packed.items():
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        flat = np.unpackbits(
            np.frombuffer(bits, dtype=np.uint8), count=size
        )
        masks[name] = flat.astype(bool).reshape(shape)
    return MaskSet(masks)


# Worker-process caches. The client *directory* and the model structure
# ship once per worker at pool start-up; per round the worker re-reads
# only the packed broadcast from the shared-memory arena, and clients
# are materialized from the directory by ID on first assignment — so
# the virtual fleet backend works unchanged under worker pools.
_WORKER_DIRECTORY: "ClientDirectory | None" = None
_WORKER_MODEL = None
_WORKER_BCAST: dict = {
    "shm": None,
    "shm_name": None,
    "round_tag": None,
    "payload": None,
    "mask_epoch": None,
    "masks": None,
    "indices": None,
    "binding": None,
}


def _init_worker(directory_blob: bytes, model_blob: bytes) -> None:
    global _WORKER_DIRECTORY, _WORKER_MODEL
    _WORKER_DIRECTORY = pickle.loads(directory_blob)
    _WORKER_MODEL = pickle.loads(model_blob)


def _worker_client(client_id: int) -> Client:
    """This worker's live copy of one client, built on first use.

    The worker-side RNG position is irrelevant for training tasks (the
    master ships the authoritative stream with every task), but the
    materialized client itself — data shard, dev cache — is cached by
    the directory for the worker's lifetime.
    """
    if _WORKER_DIRECTORY is None:  # pragma: no cover - defensive
        raise RuntimeError("worker used before _init_worker ran")
    return _WORKER_DIRECTORY.materialize(client_id)


def _worker_refresh_broadcast(
    shm_name: str, round_tag: int, mask_epoch: object
) -> None:
    """Map this round's broadcast (arena + payload views) if not cached."""
    cache = _WORKER_BCAST
    if cache["round_tag"] == round_tag:
        return
    if cache["shm_name"] != shm_name:
        # Drop every view into the old segment before closing it, or
        # close() refuses while exported buffers exist.
        cache["payload"] = None
        if cache["binding"] is not None:
            cache["binding"].release()
        if cache["shm"] is not None:
            try:
                cache["shm"].close()
            except BufferError as exc:  # pragma: no cover - defensive
                # A straggling view keeps the old mapping alive; the
                # segment itself is owned (and unlinked) by the master.
                _LOG.warning(
                    "stale broadcast arena %s still has exported "
                    "buffers: %s", cache["shm_name"], exc,
                )
        cache["shm"] = _attach_shared_memory(shm_name)
        cache["shm_name"] = shm_name
    buf = cache["shm"].buf
    masks_len, payload_len = _ARENA_HEADER.unpack_from(buf)
    epoch_changed = cache["mask_epoch"] != mask_epoch
    if epoch_changed:
        start = _ARENA_HEADER.size
        masks = _unpack_masks_blob(bytes(buf[start : start + masks_len]))
        # Applying the masks zeroes every pruned position, which is what
        # lets each task's restore scatter only the active entries.
        masks.apply(_WORKER_MODEL)
        cache["masks"] = masks
        cache["indices"] = build_mask_indices(masks)
        cache["mask_epoch"] = mask_epoch
    offset = _arena_payload_offset(masks_len)
    payload = PackedPayload.from_bytes(
        buf[offset : offset + payload_len], copy=False
    )
    if epoch_changed or cache["binding"] is None \
            or cache["binding"].specs != payload.specs:
        cache["binding"] = ModelBinding(_WORKER_MODEL, payload.specs)
    cache["payload"] = payload
    cache["round_tag"] = round_tag


# Worker-side lowering cache: persistent across selection passes (the
# dev batch arrays it keys on live on the worker's cached clients, so
# entries stay valid for the worker's lifetime and are bounded by the
# layers that actually see raw dev batches — the stem).
_WORKER_LOWERING = engine.LoweringCache()
_WORKER_LOWERING_REGISTERED: set = set()


def _worker_lowering_cache(
    client: Client, batch_size: int
) -> engine.LoweringCache:
    key = (client.client_id, batch_size)
    if key not in _WORKER_LOWERING_REGISTERED:
        for index, (images, _) in enumerate(client.dev_batches(batch_size)):
            _WORKER_LOWERING.register_source(
                images, (client.client_id, batch_size, index)
            )
        _WORKER_LOWERING_REGISTERED.add(key)
    return _WORKER_LOWERING


def _selection_pass_shm(
    shm_name: str,
    round_tag: int,
    mask_epoch: object,
    client_id: int,
    kind: str,
    batch_size: int,
):
    """Worker-side selection body: restore the candidate, run one pass.

    The candidate broadcast travels through the same shared-memory
    arena as training rounds; ``mask_epoch`` is the candidate's mask
    token, so the worker re-installs masks once per candidate and every
    subsequent task scatter-restores only the active entries. Aggregated
    BN statistics for a dev-loss pass arrive inside the broadcast (the
    master installs them into the model's buffers before packing), so
    no per-task stats payload is shipped.
    """
    _worker_refresh_broadcast(shm_name, round_tag, mask_epoch)
    cache = _WORKER_BCAST
    model = _WORKER_MODEL
    cache["binding"].restore(cache["payload"], assume_masked=True)
    client = _worker_client(client_id)
    with engine.lowering_cache(_worker_lowering_cache(client, batch_size)):
        if kind == "bn_stats":
            return client.recalibrate_bn(model, batch_size)
        return client.evaluate_candidate_loss(model, batch_size)


def _train_client_shm(
    shm_name: str,
    round_tag: int,
    mask_epoch: int,
    client_id: int,
    rng_state: dict,
    kwargs: dict,
) -> tuple[bytes, int, int, float, dict]:
    """Worker-side round body: restore from the arena, train, pack back."""
    _worker_refresh_broadcast(shm_name, round_tag, mask_epoch)
    cache = _WORKER_BCAST
    model = _WORKER_MODEL
    # Zero-copy download: scatter the packed broadcast straight from the
    # shared segment into the cached model's storage. Pruned positions
    # are already zero (mask application on epoch change, masked SGD in
    # between), so only active entries are written.
    cache["binding"].restore(cache["payload"], assume_masked=True)
    client = _worker_client(client_id)
    # The authoritative RNG stream lives in the main process; install it
    # so batch draws match serial execution regardless of which worker
    # (with whatever stale cached state) picks the task up.
    client.rng.bit_generator.state = rng_state
    result = client.train(model, collect_state=False, **kwargs)
    packed = cache["binding"].pack(indices=cache["indices"])
    return (
        packed.to_wire(),
        result.num_samples,
        result.num_iterations,
        result.mean_loss,
        client.rng.bit_generator.state,
    )


def _exit_worker() -> None:  # pragma: no cover - runs in a worker
    """Hard-kill the worker that picks this task up (fault injection)."""
    os._exit(3)


class _BroadcastPacker:
    """Master-side per-mask-epoch packing caches for one broadcast.

    Shared by every worker-backed executor: indices, the bit-packed
    masks blob, and the :class:`StatePacker` are rebuilt only when the
    server's mask epoch changes, and the upload ``spec_cache`` is
    cleared with them (headers from dead epochs can never recur).
    """

    def __init__(self) -> None:
        self.epoch: int | None = None
        self.indices: dict[str, np.ndarray] | None = None
        self.masks_blob: bytes | None = None
        self.packer: StatePacker | None = None
        self.spec_cache: dict = {}

    def publish(self, server) -> tuple[bytes, PackedPayload]:
        """Pack the server's current state; returns (masks blob, payload)."""
        if self.epoch != server.mask_epoch:
            self.indices = build_mask_indices(server.masks)
            self.masks_blob = _pack_masks_blob(server.masks)
            self.packer = StatePacker(
                server.state, server.masks, indices=self.indices
            )
            self.spec_cache.clear()
            self.epoch = server.mask_epoch
        return self.masks_blob, self.packer.pack(server.state)

    def reset(self) -> None:
        self.epoch = None
        self.indices = None
        self.masks_blob = None
        self.packer = None
        self.spec_cache.clear()


class ProcessPoolClientExecutor(ClientExecutor):
    """Train participants concurrently on persistent worker models."""

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool = None
        self._pool_directory: "ClientDirectory | None" = None
        self._arena = None
        self._arena_name: str | None = None
        self._arena_gen = 0
        self._round_tag = 0
        self._bcast = _BroadcastPacker()

    # -- pool ----------------------------------------------------------
    def _ensure_pool(self, ctx: "FederatedContext"):
        directory = ctx.directory
        if self._pool is not None and self._pool_directory is not directory:
            self.close()
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            workers = self.max_workers
            if workers is None:
                workers = max(1, min(os.cpu_count() or 1, 8))
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(
                    pickle.dumps(
                        directory, protocol=pickle.HIGHEST_PROTOCOL
                    ),
                    pickle.dumps(
                        ctx.model, protocol=pickle.HIGHEST_PROTOCOL
                    ),
                ),
            )
            self._pool_directory = directory
        return self._pool

    # -- arena ---------------------------------------------------------
    def _ensure_arena(self, nbytes: int):
        """A shared segment with capacity for ``nbytes`` (grow-only)."""
        from multiprocessing import shared_memory

        if self._arena is not None and self._arena.size >= nbytes:
            return self._arena
        self._release_arena()
        self._arena_gen += 1
        # Slack so mask adjustments that grow the payload a little do
        # not force a remap every round. The name is OS-generated
        # (guaranteed collision-free, unlike anything derived from
        # pid/id) and shipped to workers with each task.
        capacity = max(1024, int(nbytes * 1.25))
        self._arena = shared_memory.SharedMemory(
            create=True, size=capacity
        )
        self._arena_name = self._arena.name
        return self._arena

    def _release_arena(self) -> None:
        if self._arena is not None:
            try:
                self._arena.close()
                self._arena.unlink()
            # repro-lint: allow[silent-except] -- best-effort cleanup:
            # the arena was already unlinked by another exit path.
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._arena = None
            self._arena_name = None

    def _write_arena(self, masks_blob: bytes, payload) -> int:
        """Write one broadcast (masks blob + packed payload) into the
        arena; returns the new round tag."""
        body_offset = _arena_payload_offset(len(masks_blob))
        total = body_offset + payload.wire_nbytes
        arena = self._ensure_arena(total)
        _ARENA_HEADER.pack_into(
            arena.buf, 0, len(masks_blob), payload.wire_nbytes
        )
        offset = _ARENA_HEADER.size
        arena.buf[offset : offset + len(masks_blob)] = masks_blob
        payload.write_into(arena.buf, body_offset)
        self._round_tag += 1
        return self._round_tag

    def _publish_broadcast(self, ctx: "FederatedContext") -> int:
        """Pack the global state into the arena; returns the round tag.

        One write per round: the packed payload plus the bit-packed mask
        structure (workers deserialize masks only when the server's mask
        epoch changes).
        """
        masks_blob, payload = self._bcast.publish(ctx.server)
        return self._write_arena(masks_blob, payload)

    def _publish_candidate(
        self, ctx: "FederatedContext", masks: MaskSet
    ) -> int:
        """Write the candidate currently in ``ctx.model`` into the arena.

        Selection broadcasts reuse the training arena verbatim (packed
        state + bit-packed masks); they never touch the master's
        per-mask-epoch training caches, and the next training round's
        publish rewrites the arena in full anyway.
        """
        return self._write_arena(
            _pack_masks_blob(masks), pack_model_state(ctx.model, masks)
        )

    # -- round ---------------------------------------------------------
    def run_clients(
        self, ctx: "FederatedContext", participants: list[Client]
    ) -> list[LocalTrainResult]:
        if not participants:
            # A round policy dropped everyone it could; don't publish
            # the broadcast or spin up the pool for an empty round.
            return []
        # Keep the master model in sync with the broadcast, exactly as
        # the serial backend leaves it after a round's downloads.
        ctx.server.load_into_model()
        kwargs = _train_kwargs(ctx)
        pool = self._ensure_pool(ctx)
        round_tag = self._publish_broadcast(ctx)
        mask_epoch = ctx.server.mask_epoch
        futures = [
            pool.submit(
                _train_client_shm,
                self._arena_name,
                round_tag,
                mask_epoch,
                client.client_id,
                client.rng.bit_generator.state,
                kwargs,
            )
            for client in participants
        ]
        results = []
        for client, future in zip(participants, futures):
            blob, num_samples, num_iterations, mean_loss, rng_state = (
                future.result()
            )
            # The worker trained a cached copy of the client; pull its
            # advanced RNG back so future rounds draw the same batches
            # the serial backend would.
            client.rng.bit_generator.state = rng_state
            # Trusted same-run producer; the blob backs the payload's
            # buffer zero-copy for as long as the result holds it. The
            # dense state dict is decoded lazily (resolve_state), so a
            # fully-packed aggregation path never materializes it.
            upload = PackedPayload.from_bytes(
                blob, copy=False, validate=False,
                spec_cache=self._bcast.spec_cache,
            )
            results.append(
                LocalTrainResult(
                    state=None,
                    num_samples=num_samples,
                    num_iterations=num_iterations,
                    mean_loss=mean_loss,
                    payload=upload,
                )
            )
        return results

    def run_selection(
        self,
        ctx: "FederatedContext",
        clients: list[Client],
        selection: SelectionPass,
    ) -> list:
        """Broadcast the installed candidate once, sweep clients in
        parallel on the persistent workers."""
        if not clients:
            return []
        if selection.masks is None:
            # Without the candidate's mask structure there is nothing to
            # pack the broadcast against; run the in-process reference.
            return super().run_selection(ctx, clients, selection)
        pool = self._ensure_pool(ctx)
        if selection.bn_stats is not None:
            # Bake the aggregated statistics into the broadcast's BN
            # buffers (exactly what the serial path installs into the
            # shared model) instead of pickling them into every task.
            set_bn_statistics(ctx.model, selection.bn_stats)
        round_tag = self._publish_candidate(ctx, selection.masks)
        futures = [
            pool.submit(
                _selection_pass_shm,
                self._arena_name,
                round_tag,
                selection.mask_token,
                client.client_id,
                selection.kind,
                selection.batch_size,
            )
            for client in clients
        ]
        return [future.result() for future in futures]

    def crash_worker(self, ctx: "FederatedContext") -> bool:
        """Kill one pool worker; respawn the (now broken) pool.

        ``concurrent.futures`` condemns the whole pool when any worker
        dies, so the repair is a full teardown — the next round's
        ``_ensure_pool`` rebuilds workers and arena lazily. Worker
        outputs are unaffected: clients, model structure, and RNG
        streams all re-ship from the master, so results after a respawn
        are bitwise identical.
        """
        from concurrent.futures.process import BrokenProcessPool

        pool = self._ensure_pool(ctx)
        future = pool.submit(_exit_worker)
        try:
            future.result(timeout=60)
        except BrokenProcessPool:
            _LOG.warning(
                "worker process died; respawning the process pool"
            )
            self.respawn()
            return True
        return False  # pragma: no cover - os._exit always breaks the pool

    def respawn(self) -> None:
        """Tear down a (possibly broken) pool; rebuilt on next use."""
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_directory = None
        self._release_arena()
        self._bcast.reset()


# ----------------------------------------------------------------------
# Networked executor: real sockets, heartbeat liveness, reconnect/resume
# ----------------------------------------------------------------------
def _install_network_broadcast(
    cache: dict, model, meta: dict, payload_bytes: bytes
) -> None:
    """Install one round's pulled broadcast into the worker's model.

    Mirrors ``_worker_refresh_broadcast`` for bytes that arrived over a
    socket instead of a shared-memory arena: masks re-deserialize only
    when the mask epoch changed, the payload views are zero-copy over
    the received buffer, and the binding scatters active entries only.
    """
    mask_epoch = meta["mask_epoch"]
    epoch_changed = cache["mask_epoch"] != mask_epoch
    if epoch_changed:
        masks = _unpack_masks_blob(meta["masks_blob"])
        masks.apply(model)
        cache["masks"] = masks
        cache["indices"] = build_mask_indices(masks)
        cache["mask_epoch"] = mask_epoch
    payload = PackedPayload.from_bytes(payload_bytes, copy=False)
    if epoch_changed or cache["binding"] is None \
            or cache["binding"].specs != payload.specs:
        cache["binding"] = ModelBinding(model, payload.specs)
    cache["payload"] = payload
    cache["round_tag"] = meta["round_tag"]


def _network_worker_main(
    address: tuple[str, int],
    worker_id: int,
    directory_blob: bytes,
    model_blob: bytes,
    transport: "TransportConfig",
) -> None:
    """Entry point of one networked worker process.

    Registers with the round server, heartbeats on a daemon thread,
    polls for tasks, pulls the packed broadcast when the round changes,
    materializes the assigned client from the shipped directory, trains,
    and pushes the packed upload. Failure behavior: every exchange goes
    through :class:`~repro.fl.transport.WorkerConnection`, which
    reconnects and resumes the session with bounded backoff; if the
    server stays unreachable past the reconnect budget the worker logs
    and exits — the server reassigns its task.
    """
    import threading

    from .transport import MSG, TransportError, WorkerConnection

    directory: "ClientDirectory" = pickle.loads(directory_blob)
    model = pickle.loads(model_blob)
    cache: dict = {
        "round_tag": None,
        "mask_epoch": None,
        "masks": None,
        "indices": None,
        "binding": None,
        "payload": None,
    }
    conn = WorkerConnection(address, worker_id, transport)
    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(transport.heartbeat_interval):
            try:
                conn.request(MSG.HEARTBEAT)
            except TransportError as exc:
                # The request path already retried with backoff; the
                # next beat (or the main loop's request) tries again.
                _LOG.warning(
                    "worker %d: heartbeat failed: %s", worker_id, exc
                )

    beats = threading.Thread(
        target=_heartbeat, name=f"repro-heartbeat-{worker_id}",
        daemon=True,
    )
    try:
        conn.request(MSG.HEARTBEAT)  # registers the session
        beats.start()
        while True:
            kind, meta, _ = conn.request(MSG.GET_TASK)
            if kind == MSG.SHUTDOWN:
                _LOG.info("worker %d: draining on SHUTDOWN", worker_id)
                return
            if kind == MSG.WAIT:
                time.sleep(float(meta.get("poll", transport.poll_interval)))
                continue
            if kind != MSG.TASK:
                raise TransportError(
                    f"GET_TASK answered with message type {kind}"
                )
            if cache["round_tag"] != meta["round_tag"]:
                bkind, bmeta, bblob = conn.request(
                    MSG.GET_BROADCAST, {"round_tag": meta["round_tag"]}
                )
                if bkind != MSG.BROADCAST:
                    # The round closed while we were pulling; re-poll.
                    _LOG.warning(
                        "worker %d: broadcast pull for round %r "
                        "answered %d; re-polling", worker_id,
                        meta["round_tag"], bkind,
                    )
                    continue
                _install_network_broadcast(cache, model, bmeta, bblob)
            # Per-task "download": reset the model to the broadcast
            # bytes (a second task in the same round must not see the
            # previous task's trained weights).
            cache["binding"].restore(cache["payload"], assume_masked=True)
            client = directory.materialize(int(meta["client_id"]))
            # The master's stream is authoritative; install it so batch
            # draws match serial execution bit-for-bit.
            client.rng.bit_generator.state = meta["rng_state"]
            result = client.train(
                model, collect_state=False, **meta["kwargs"]
            )
            wire = cache["binding"].pack(
                indices=cache["indices"]
            ).to_wire()
            _, ack, _ = conn.request(MSG.UPLOAD, {
                "client_id": meta["client_id"],
                "round_tag": meta["round_tag"],
                "attempt": meta["attempt"],
                "mask_epoch": cache["mask_epoch"],
                "num_samples": result.num_samples,
                "num_iterations": result.num_iterations,
                "mean_loss": result.mean_loss,
                "rng_state": client.rng.bit_generator.state,
            }, blob=wire)
            status = ack.get("status")
            if status not in ("accepted", "duplicate", "stale_round"):
                # Quarantined / stale-epoch bytes: the server requeued
                # the task; log and keep polling (we may redeliver it).
                _LOG.warning(
                    "worker %d: upload for client %s adjudicated %r",
                    worker_id, meta["client_id"], status,
                )
    except TransportError as exc:
        _LOG.error(
            "worker %d: giving up on server %s: %s",
            worker_id, address, exc,
        )
    finally:
        stop.set()
        conn.close()


class NetworkClientExecutor(ClientExecutor):
    """Train participants through a real localhost transport.

    The master runs a :class:`~repro.fl.network_server.NetworkRoundServer`
    and spawn-started worker processes (spawn, never fork: a forked
    child would inherit the listening socket and block the same-port
    rebind that the server-restart drill depends on). Each round the
    master packs one broadcast, opens an ingest session, and publishes
    the task list; workers pull, train, and push packed uploads that the
    ingest re-validates byte-by-byte before admission. Results are
    assembled in *participant order* (never arrival order), so float64
    aggregation folds identically to the serial backend and a fixed-seed
    sync run is byte-for-byte identical.

    A client whose task survives neither its assignment nor
    ``max_reconnects`` reassignments comes back as ``None``; the round
    loop reweights it out (its RNG was never advanced in the master, so
    the surviving cohort is unaffected).
    """

    name = "network"

    def __init__(
        self,
        max_workers: int | None = None,
        transport: "TransportConfig | None" = None,
    ) -> None:
        if transport is None:
            from .transport import TransportConfig

            transport = TransportConfig()
        self.transport = transport
        self.max_workers = max_workers
        self._server = None
        self._workers: list = []
        self._directory: "ClientDirectory | None" = None
        self._directory_blob: bytes | None = None
        self._model_blob: bytes | None = None
        self._round_tag = 0
        self._next_worker_id = 0
        self._supervise_respawns = 0
        self._bcast = _BroadcastPacker()
        self._records: list = []
        #: Real (wall-clock) seconds the last round's barrier took.
        self.last_round_real_seconds = 0.0
        #: Real per-client upload latencies of the last round.
        self.last_latencies: dict[int, float] = {}

    # -- lifecycle -----------------------------------------------------
    def _worker_count(self) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, min(os.cpu_count() or 1, 4))

    def _spawn_worker(self):
        import multiprocessing

        wid = self._next_worker_id
        self._next_worker_id += 1
        proc = multiprocessing.get_context("spawn").Process(
            target=_network_worker_main,
            args=(
                self._server.address,
                wid,
                self._directory_blob,
                self._model_blob,
                self.transport,
            ),
            name=f"repro-net-worker-{wid}",
            daemon=True,
        )
        proc.start()
        return proc

    def _ensure_started(self, ctx: "FederatedContext"):
        if self._server is not None and self._directory is not ctx.directory:
            self.close()
        if self._server is None:
            from .network_server import NetworkRoundServer

            self._server = NetworkRoundServer(self.transport)
            self._server.start()
            self._directory = ctx.directory
            self._directory_blob = pickle.dumps(
                ctx.directory, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._model_blob = pickle.dumps(
                ctx.model, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._workers = [
                self._spawn_worker() for _ in range(self._worker_count())
            ]
        return self._server

    def _supervise(self) -> None:
        """Respawn dead worker processes (bounded, so a crash-looping
        deployment fails the round instead of fork-bombing)."""
        limit = 3 * self._worker_count()
        for index, proc in enumerate(self._workers):
            if proc.is_alive():
                continue
            if self._supervise_respawns >= limit:
                continue  # let the stall detector fail the round loudly
            self._supervise_respawns += 1
            _LOG.warning(
                "network worker %s died (exit %s); respawning "
                "(%d/%d this run)", proc.name, proc.exitcode,
                self._supervise_respawns, limit,
            )
            self._workers[index] = self._spawn_worker()

    # -- round ---------------------------------------------------------
    def run_clients(
        self, ctx: "FederatedContext", participants: list[Client]
    ) -> list[LocalTrainResult]:
        from .network_server import TaskSpec

        if not participants:
            return []
        # Keep the master model in sync with the broadcast, exactly as
        # the serial backend leaves it after a round's downloads.
        ctx.server.load_into_model()
        server = self._ensure_started(ctx)
        kwargs = _train_kwargs(ctx)
        masks_blob, payload = self._bcast.publish(ctx.server)
        self._round_tag += 1
        ingest = ctx.server.begin_ingest(self._round_tag)
        tasks = [
            TaskSpec(
                client_id=client.client_id,
                rng_state=client.rng.bit_generator.state,
                kwargs=kwargs,
            )
            for client in participants
        ]
        server.open_round(
            self._round_tag, ctx.server.mask_epoch, masks_blob,
            bytes(payload.to_wire()), tasks, ingest,
        )
        started = time.perf_counter()
        metas = server.await_round(supervise=self._supervise)
        self.last_round_real_seconds = time.perf_counter() - started
        self.last_latencies = dict(server.last_latencies)
        # Transport-level adjudications (dedup of replayed uploads,
        # quarantines) surface in the run's failure log via
        # ``drain_records``; counters the chaos invariants compare stay
        # with the deterministic fault runner.
        self._records.extend(ingest.records)
        results: list[LocalTrainResult | None] = []
        for client in participants:
            meta = metas.get(client.client_id)
            if meta is None:
                results.append(None)
                continue
            # The worker trained a remote copy; pull the advanced RNG
            # back so future rounds draw serial-identical batches.
            client.rng.bit_generator.state = meta["rng_state"]
            results.append(
                LocalTrainResult(
                    state=None,
                    num_samples=int(meta["num_samples"]),
                    num_iterations=int(meta["num_iterations"]),
                    mean_loss=float(meta["mean_loss"]),
                    payload=ingest.accepted_payload(client.client_id),
                )
            )
        return results

    def drain_records(self) -> list:
        """Transport-level failure records since the last drain."""
        records, self._records = self._records, []
        return records

    # -- fault hooks ---------------------------------------------------
    def crash_worker(self, ctx: "FederatedContext") -> bool:
        """Kill one live worker process and respawn it.

        Unlike the futures pool, one death does not condemn the others:
        the server requeues whatever the victim held once its heartbeats
        lapse, and the respawned worker re-registers fresh.
        """
        self._ensure_started(ctx)
        for index, proc in enumerate(self._workers):
            if proc.is_alive():
                _LOG.warning(
                    "injected worker crash: terminating %s", proc.name
                )
                proc.terminate()
                proc.join(timeout=10.0)
                self._workers[index] = self._spawn_worker()
                return True
        return False

    def drop_connection(self, ctx: "FederatedContext") -> bool:
        """Sever one worker's session + socket (reconnect/resume drill)."""
        if self._server is None:
            return False
        del ctx
        return self._server.drop_one_session()

    def restart_server(self, ctx: "FederatedContext") -> bool:
        """Restart the transport endpoint on the same port."""
        if self._server is None:
            return False
        del ctx
        self._server.restart()
        return True

    def respawn(self) -> None:
        """Tear everything down; rebuilt lazily on next use."""
        self.close()

    def close(self) -> None:
        if self._server is None:
            return
        self._server.request_shutdown()
        deadline = time.monotonic() + max(
            2.0, 4.0 * self.transport.heartbeat_interval
        )
        for proc in self._workers:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._workers:
            if proc.is_alive():
                _LOG.warning(
                    "network worker %s ignored SHUTDOWN; terminating",
                    proc.name,
                )
                proc.terminate()
                proc.join(timeout=5.0)
        self._server.stop()
        self._server = None
        self._workers = []
        self._directory = None
        self._directory_blob = None
        self._model_blob = None
        self._supervise_respawns = 0
        self._bcast.reset()


_EXECUTORS: dict[str, Callable[..., ClientExecutor]] = {}


def register_executor(
    name: str, factory: Callable[..., ClientExecutor]
) -> None:
    """Register an executor factory under ``name`` (case-insensitive).

    The factory is called as ``factory(max_workers=...)``.
    """
    key = name.lower()
    if key in _EXECUTORS:
        raise ValueError(f"executor {name!r} already registered")
    _EXECUTORS[key] = factory


def available_executors() -> list[str]:
    """Sorted names of registered execution backends."""
    return sorted(_EXECUTORS)


def build_executor(
    name: str,
    max_workers: int | None = None,
    transport: "TransportConfig | None" = None,
) -> ClientExecutor:
    """Build a registered execution backend by name.

    ``transport`` (the networked backend's timeout/heartbeat/reconnect
    knobs) is forwarded only to factories that declare the parameter, so
    registered custom factories with the historical
    ``factory(max_workers=...)`` signature keep working.
    """
    key = name.lower()
    if key not in _EXECUTORS:
        raise KeyError(
            f"unknown executor {name!r}; available: {available_executors()}"
        )
    factory = _EXECUTORS[key]
    kwargs: dict = {"max_workers": max_workers}
    if transport is not None:
        import inspect

        try:
            params = inspect.signature(factory).parameters
        # repro-lint: allow[silent-except] -- capability probe: a
        # factory whose signature cannot be introspected just doesn't
        # receive the optional transport kwarg.
        except (TypeError, ValueError):  # pragma: no cover - builtins
            params = {}
        if "transport" in params or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in params.values()
        ):
            kwargs["transport"] = transport
    return factory(**kwargs)


register_executor("serial", SerialExecutor)
register_executor("process", ProcessPoolClientExecutor)
register_executor("network", NetworkClientExecutor)
