"""Pluggable client-execution backends for the federated round.

``FederatedContext.run_fedavg_round`` delegates the per-client local
training to a :class:`ClientExecutor`; the round policy (see
:mod:`repro.fl.policies`) decides *which* clients reach the executor,
so backends stay policy-agnostic. Two backends ship built in:

- ``serial`` (:class:`SerialExecutor`) — trains every participant one
  after another through the context's shared model instance, exactly
  reproducing the original single-threaded simulation byte for byte;
- ``process`` (:class:`ProcessPoolClientExecutor`) — ships a pickled
  copy of the global model to a pool of worker processes and trains
  participants concurrently, then restores each client's RNG state so
  the round-to-round batch streams stay identical to the serial
  backend.

Backends are selected via ``FLConfig.executor`` (and the ``--executor``
CLI flag); new ones can be added with :func:`register_executor` without
touching the simulation internals.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from .client import Client, LocalTrainResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulation import FederatedContext

__all__ = [
    "ClientExecutor",
    "SerialExecutor",
    "ProcessPoolClientExecutor",
    "available_executors",
    "build_executor",
    "register_executor",
]


class ClientExecutor(ABC):
    """Strategy for running one round of local training."""

    name: str = "base"

    @abstractmethod
    def run_clients(
        self, ctx: "FederatedContext", participants: list[Client]
    ) -> list[LocalTrainResult]:
        """Train every participant on the current global model.

        Returns one :class:`LocalTrainResult` per participant, aligned
        with ``participants``. Implementations must leave each client's
        RNG in the same state serial execution would — methods replay
        the batch stream across rounds and backends must agree.
        """

    def close(self) -> None:
        """Release any worker resources (idempotent)."""


def _train_kwargs(ctx: "FederatedContext") -> dict:
    cfg = ctx.config
    return dict(
        epochs=cfg.local_epochs,
        batch_size=cfg.batch_size,
        lr=cfg.lr,
        momentum=cfg.momentum,
        weight_decay=cfg.weight_decay,
        augment=cfg.augment,
    )


class SerialExecutor(ClientExecutor):
    """The reference backend: one client at a time on the shared model."""

    name = "serial"

    def __init__(self, max_workers: int | None = None) -> None:
        del max_workers  # accepted for a uniform factory signature

    def run_clients(
        self, ctx: "FederatedContext", participants: list[Client]
    ) -> list[LocalTrainResult]:
        kwargs = _train_kwargs(ctx)
        results = []
        for client in participants:
            ctx.server.load_into_model()
            results.append(client.train(ctx.model, **kwargs))
        return results


# Worker-process cache: the client population, shipped once per worker
# at pool start-up instead of once per client per round (client shards
# are by far the largest payload).
_WORKER_CLIENTS: list[Client] | None = None


def _init_worker(clients_blob: bytes) -> None:
    global _WORKER_CLIENTS
    _WORKER_CLIENTS = pickle.loads(clients_blob)


def _train_client_task(
    model_blob: bytes, client_index: int, rng_state: dict, kwargs: dict
) -> tuple[LocalTrainResult, dict]:
    """Worker-side body: unpickle a private model copy and train on it."""
    model = pickle.loads(model_blob)
    client = _WORKER_CLIENTS[client_index]
    # The authoritative RNG stream lives in the main process; install it
    # so batch draws match serial execution regardless of which worker
    # (with whatever stale cached state) picks the task up.
    client.rng.bit_generator.state = rng_state
    result = client.train(model, **kwargs)
    return result, client.rng.bit_generator.state


class ProcessPoolClientExecutor(ClientExecutor):
    """Train participants concurrently on per-process model copies."""

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool = None
        self._pool_clients: list[Client] | None = None

    def _ensure_pool(self, clients: list[Client]):
        if self._pool is not None and self._pool_clients is not clients:
            self.close()
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            workers = self.max_workers
            if workers is None:
                workers = max(1, min(os.cpu_count() or 1, 8))
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(
                    pickle.dumps(clients, protocol=pickle.HIGHEST_PROTOCOL),
                ),
            )
            self._pool_clients = clients
        return self._pool

    def run_clients(
        self, ctx: "FederatedContext", participants: list[Client]
    ) -> list[LocalTrainResult]:
        if not participants:
            # A round policy dropped everyone it could; don't pickle the
            # model or spin up the pool for an empty round.
            return []
        # One download per round: every worker starts from the same
        # global state + masks, exactly like the serial broadcast.
        ctx.server.load_into_model()
        blob = pickle.dumps(ctx.model, protocol=pickle.HIGHEST_PROTOCOL)
        kwargs = _train_kwargs(ctx)
        pool = self._ensure_pool(ctx.clients)
        index_of = {id(c): i for i, c in enumerate(ctx.clients)}
        futures = [
            pool.submit(
                _train_client_task,
                blob,
                index_of[id(client)],
                client.rng.bit_generator.state,
                kwargs,
            )
            for client in participants
        ]
        results = []
        for client, future in zip(participants, futures):
            result, rng_state = future.result()
            # The worker trained a cached copy of the client; pull its
            # advanced RNG back so future rounds draw the same batches
            # the serial backend would.
            client.rng.bit_generator.state = rng_state
            results.append(result)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_clients = None


_EXECUTORS: dict[str, Callable[..., ClientExecutor]] = {}


def register_executor(
    name: str, factory: Callable[..., ClientExecutor]
) -> None:
    """Register an executor factory under ``name`` (case-insensitive).

    The factory is called as ``factory(max_workers=...)``.
    """
    key = name.lower()
    if key in _EXECUTORS:
        raise ValueError(f"executor {name!r} already registered")
    _EXECUTORS[key] = factory


def available_executors() -> list[str]:
    """Sorted names of registered execution backends."""
    return sorted(_EXECUTORS)


def build_executor(
    name: str, max_workers: int | None = None
) -> ClientExecutor:
    """Build a registered execution backend by name."""
    key = name.lower()
    if key not in _EXECUTORS:
        raise KeyError(
            f"unknown executor {name!r}; available: {available_executors()}"
        )
    return _EXECUTORS[key](max_workers=max_workers)


register_executor("serial", SerialExecutor)
register_executor("process", ProcessPoolClientExecutor)
