"""Device latency and straggler analysis.

The paper repeatedly argues that methods requiring dense on-device
computation (PruneFL's full gradients, FedDST's extra local epochs,
LotteryFL's dense training) "may lead to straggling issues in federated
learning". This module makes that argument quantitative: given a
population of devices with heterogeneous compute speed and bandwidth,
it estimates the wall-clock time of a synchronous round as the *slowest*
device's compute+transfer time, so per-method FLOPs/bytes translate
into round latency and straggler slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DeviceProfile",
    "FleetPlan",
    "build_fleet",
    "heterogeneous_fleet",
    "parse_fleet_spec",
    "round_latency",
    "straggler_slowdown",
    "uniform_fleet",
]

_BASE_FLOPS_PER_SECOND = 5e9  # mid-range phone
_BASE_BANDWIDTH_BYTES_PER_SECOND = 1.25e6  # ~10 Mbit/s uplink


@dataclass(frozen=True)
class DeviceProfile:
    """Compute and network capability of one device."""

    device_id: int
    flops_per_second: float
    upload_bytes_per_second: float
    download_bytes_per_second: float

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")
        if self.upload_bytes_per_second <= 0:
            raise ValueError("upload_bytes_per_second must be positive")
        if self.download_bytes_per_second <= 0:
            raise ValueError("download_bytes_per_second must be positive")

    def time_for(
        self,
        compute_flops: float,
        upload_bytes: float,
        download_bytes: float,
    ) -> float:
        """Seconds this device needs for one round's work."""
        if compute_flops < 0 or upload_bytes < 0 or download_bytes < 0:
            raise ValueError("work amounts must be non-negative")
        return (
            compute_flops / self.flops_per_second
            + upload_bytes / self.upload_bytes_per_second
            + download_bytes / self.download_bytes_per_second
        )


def uniform_fleet(
    num_devices: int,
    base_flops_per_second: float = _BASE_FLOPS_PER_SECOND,
    base_bandwidth_bytes_per_second: float = _BASE_BANDWIDTH_BYTES_PER_SECOND,
) -> list[DeviceProfile]:
    """A homogeneous fleet: every device matches the base capability."""
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    return [
        DeviceProfile(
            device_id=index,
            flops_per_second=base_flops_per_second,
            upload_bytes_per_second=base_bandwidth_bytes_per_second,
            download_bytes_per_second=base_bandwidth_bytes_per_second * 4,
        )
        for index in range(num_devices)
    ]


def heterogeneous_fleet(
    num_devices: int,
    rng: np.random.Generator,
    base_flops_per_second: float = _BASE_FLOPS_PER_SECOND,
    base_bandwidth_bytes_per_second: float = _BASE_BANDWIDTH_BYTES_PER_SECOND,
    speed_spread: float = 4.0,
) -> list[DeviceProfile]:
    """A fleet with log-uniform speed spread (weakest ~1/spread of base).

    Models the paper's setting: phones and embedded boards collaborating
    with a ``speed_spread``x gap between the fastest and slowest device.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    if speed_spread < 1.0:
        raise ValueError("speed_spread must be >= 1")
    factors = np.exp(
        rng.uniform(-np.log(speed_spread), 0.0, size=num_devices)
    )
    return [
        DeviceProfile(
            device_id=index,
            flops_per_second=base_flops_per_second * factor,
            upload_bytes_per_second=base_bandwidth_bytes_per_second * factor,
            download_bytes_per_second=(
                base_bandwidth_bytes_per_second * factor * 4
            ),
        )
        for index, factor in enumerate(factors)
    ]


def parse_fleet_spec(spec: str) -> tuple[str, float | None]:
    """Parse a ``--fleet`` spec into ``(kind, parameter)``.

    Accepted forms are ``uniform`` and ``heterogeneous[:spread]``, e.g.
    ``heterogeneous:16`` for a fleet whose fastest device is 16x the
    slowest. Raises :class:`ValueError` on anything else, so
    :class:`~repro.fl.simulation.FLConfig` can validate at build time.
    """
    name, _, raw_param = spec.partition(":")
    name = name.strip().lower()
    param: float | None = None
    if raw_param:
        try:
            param = float(raw_param)
        except ValueError:
            raise ValueError(
                f"fleet parameter {raw_param!r} in {spec!r} is not a number"
            ) from None
    if name == "uniform":
        if param is not None:
            raise ValueError("the uniform fleet takes no parameter")
        return name, None
    if name == "heterogeneous":
        if param is not None and param < 1.0:
            raise ValueError(
                f"heterogeneous speed spread must be >= 1, got {param}"
            )
        return name, param
    raise ValueError(
        f"unknown fleet {spec!r}; expected 'uniform' or "
        f"'heterogeneous[:spread]'"
    )


def build_fleet(
    spec: str, num_devices: int, seed: int = 0
) -> list[DeviceProfile]:
    """Build the device fleet a :class:`FLConfig.fleet` spec describes.

    The fleet draws from its own RNG stream (derived from ``seed``) so
    that enabling heterogeneity never perturbs client sampling or batch
    order — simulation realism stays orthogonal to learning dynamics.
    """
    kind, param = parse_fleet_spec(spec)
    if kind == "uniform":
        return uniform_fleet(num_devices)
    rng = np.random.default_rng(seed * 7_919 + 97)
    return heterogeneous_fleet(
        num_devices, rng, speed_spread=param if param is not None else 4.0
    )


class FleetPlan:
    """Per-ID :class:`DeviceProfile` derivation without the O(N) list.

    ``build_fleet`` draws all heterogeneity factors in one vectorized
    ``uniform(size=N)`` call. PCG64 consumes exactly one 64-bit step per
    ``uniform`` sample, so advancing a freshly seeded bit generator by
    ``device_id`` and drawing a single sample reproduces element
    ``device_id`` of that batch bitwise — ``profile(i)`` equals
    ``build_fleet(spec, n, seed)[i]`` for any fleet size, at O(1) cost
    per lookup and O(1) storage for the plan.
    """

    def __init__(self, spec: str, num_devices: int, seed: int = 0) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self._kind, param = parse_fleet_spec(spec)
        self._spread = param if param is not None else 4.0
        self._num_devices = num_devices
        self._seed = seed

    @property
    def num_devices(self) -> int:
        return self._num_devices

    def profile(self, device_id: int) -> DeviceProfile:
        """Build one device's profile, bitwise-equal to ``build_fleet``."""
        if not 0 <= device_id < self._num_devices:
            raise IndexError(
                f"device_id {device_id} out of range "
                f"[0, {self._num_devices})"
            )
        if self._kind == "uniform":
            return DeviceProfile(
                device_id=device_id,
                flops_per_second=_BASE_FLOPS_PER_SECOND,
                upload_bytes_per_second=_BASE_BANDWIDTH_BYTES_PER_SECOND,
                download_bytes_per_second=(
                    _BASE_BANDWIDTH_BYTES_PER_SECOND * 4
                ),
            )
        rng = np.random.default_rng(self._seed * 7_919 + 97)
        rng.bit_generator.advance(device_id)
        factor = float(
            np.exp(rng.uniform(-np.log(self._spread), 0.0))
        )
        return DeviceProfile(
            device_id=device_id,
            flops_per_second=_BASE_FLOPS_PER_SECOND * factor,
            upload_bytes_per_second=(
                _BASE_BANDWIDTH_BYTES_PER_SECOND * factor
            ),
            download_bytes_per_second=(
                _BASE_BANDWIDTH_BYTES_PER_SECOND * factor * 4
            ),
        )


def round_latency(
    fleet: list[DeviceProfile],
    compute_flops: float,
    upload_bytes: float,
    download_bytes: float,
) -> float:
    """Synchronous-round latency: the slowest device gates the round."""
    if not fleet:
        raise ValueError("fleet is empty")
    return max(
        device.time_for(compute_flops, upload_bytes, download_bytes)
        for device in fleet
    )


def straggler_slowdown(
    fleet: list[DeviceProfile],
    compute_flops: float,
    upload_bytes: float,
    download_bytes: float,
) -> float:
    """Ratio of the slowest device's round time to the fleet median.

    A method whose per-round work is heavy amplifies device
    heterogeneity; values near 1 mean the round is insensitive to
    stragglers.
    """
    if not fleet:
        raise ValueError("fleet is empty")
    times = [
        device.time_for(compute_flops, upload_bytes, download_bytes)
        for device in fleet
    ]
    median = float(np.median(times))
    if median == 0.0:
        return 1.0
    return max(times) / median
