"""The localhost round server behind the ``network`` executor.

One :class:`NetworkRoundServer` hosts the master's side of the framed
protocol (:mod:`repro.fl.transport`) on a long-lived
``socketserver.ThreadingTCPServer`` bound to ``127.0.0.1``. The executor
opens a round by handing it the packed broadcast, the task list, and a
:class:`~repro.fl.server.RoundIngest` admission session; worker
processes then register, heartbeat, pull the broadcast, and push packed
uploads — real bytes over real sockets, adjudicated by the same ingest
pipeline the chaos suite hardened in PR 8.

Churn defenses (each handler states its failure behavior, per the
CONTRIBUTING rule):

- a session that misses its heartbeat window is dropped and its
  in-flight task requeued with ``attempt + 1``;
- an in-flight task that outlives the transport timeout is requeued the
  same way; a task requeued more than ``max_reconnects`` times fails,
  and the executor reweights that client out of the round;
- a worker that reconnects under its old token resumes its session; if
  the server restarted (token unknown) it transparently re-registers,
  and any upload it replays is deduplicated by the ingest — first
  delivery wins, and both deliveries carry identical bytes because the
  master shipped the client RNG with the task;
- :meth:`restart` tears down the listener and every live connection,
  forgets all sessions, and rebinds on the *same* port with the open
  round's state intact — the mid-round server-restart drill;
- if no session is live, nothing is in flight, and no progress has been
  made for a full timeout window (after the executor's supervision
  callback had a chance to respawn workers), the remaining tasks fail
  loudly instead of hanging the round barrier.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .transport import (
    MSG,
    SessionTable,
    TransportConfig,
    TransportError,
    recv_frame,
    send_frame,
)

__all__ = ["NetworkRoundServer", "TaskSpec"]

_LOG = logging.getLogger(__name__)


@dataclass
class TaskSpec:
    """One client's training assignment for the open round."""

    client_id: int
    rng_state: dict
    kwargs: dict
    attempt: int = 0


@dataclass
class _InFlight:
    task: TaskSpec
    token: str
    assigned_at: float


class _RoundState:
    """Everything the server tracks for one open round."""

    def __init__(
        self,
        round_tag: int,
        mask_epoch: int,
        masks_blob: bytes,
        payload_wire: bytes,
        tasks: list[TaskSpec],
        ingest,
    ) -> None:
        self.round_tag = round_tag
        self.mask_epoch = mask_epoch
        self.masks_blob = masks_blob
        self.payload_wire = payload_wire
        self.expected = tuple(task.client_id for task in tasks)
        self.queue: deque[TaskSpec] = deque(tasks)
        self.in_flight: dict[int, _InFlight] = {}
        #: client_id -> upload metadata (counts, loss, advanced RNG).
        self.metas: dict[int, dict] = {}
        #: Real seconds from round open to each accepted upload.
        self.latencies: dict[int, float] = {}
        self.failed: set[int] = set()
        self.ingest = ingest
        self.opened_at = time.monotonic()
        self.last_progress = self.opened_at

    def finished(self) -> bool:
        return all(
            cid in self.metas or cid in self.failed
            for cid in self.expected
        )


class _RoundTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    round_server: "NetworkRoundServer"

    def handle_error(self, request, client_address):
        # Workers are killed and connections severed on purpose during
        # churn drills; log instead of spraying tracebacks to stderr.
        _LOG.warning(
            "handler for %s raised (worker likely gone mid-exchange)",
            client_address, exc_info=True,
        )


class _Handler(socketserver.BaseRequestHandler):
    """One persistent worker connection.

    Failure behavior: a framing error or timeout on this connection
    closes it and nothing else — the worker's session stays registered
    until its heartbeats lapse, so a reconnect resumes it.
    """

    def handle(self) -> None:
        server: "NetworkRoundServer" = self.server.round_server
        sock = self.request
        sock.settimeout(server.transport.timeout)
        server._track_connection(sock)
        try:
            while not server._closing.is_set():
                try:
                    kind, meta, blob = recv_frame(sock)
                # repro-lint: allow[silent-except] -- expected churn: a
                # peer hanging up or going quiet closes this connection
                # and nothing else; the session stays registered and
                # liveness reaping owns its fate.
                except TransportError:
                    return
                reply = server._dispatch(kind, meta, blob, sock)
                if reply is None:
                    return
                send_frame(sock, *reply)
        finally:
            server._untrack_connection(sock)


class NetworkRoundServer:
    """Master-side transport endpoint for the ``network`` executor."""

    def __init__(self, transport: TransportConfig) -> None:
        self.transport = transport
        self.sessions = SessionTable(transport)
        self._lock = threading.RLock()
        self._round: _RoundState | None = None
        self._closing = threading.Event()
        self._shutdown_workers = False
        self._server: _RoundTCPServer | None = None
        self._thread: threading.Thread | None = None
        self._port: int | None = None
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        #: Observable churn accounting, asserted by the churn suite.
        self.stats = {
            "registrations": 0,
            "resumes": 0,
            "requeues": 0,
            "restarts": 0,
            "dropped_sessions": 0,
            "expired_sessions": 0,
            "failed_tasks": 0,
        }
        #: Real seconds from round open to each accepted upload, for the
        #: most recently completed round (client_id -> seconds).
        self.last_latencies: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind and serve. Reuses the previous port after a restart."""
        with self._lock:
            if self._server is not None:
                return
            server = _RoundTCPServer(
                ("127.0.0.1", self._port or 0), _Handler
            )
            server.round_server = self
            self._server = server
            self._port = server.server_address[1]
            self._closing.clear()
            self._thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-network-server",
                daemon=True,
            )
            self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        if self._port is None:
            raise TransportError("server was never started")
        return ("127.0.0.1", self._port)

    def _track_connection(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._connections.add(sock)

    def _untrack_connection(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._connections.discard(sock)

    def _sever_connections(self) -> None:
        with self._conn_lock:
            victims = list(self._connections)
            self._connections.clear()
        for sock in victims:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            # repro-lint: allow[silent-except] -- already closed by the
            # peer; nothing to recover.
            except OSError:
                pass
            try:
                sock.close()
            except OSError as exc:  # pragma: no cover - close rarely fails
                _LOG.warning("closing severed connection failed: %s", exc)

    def _stop_listener(self) -> None:
        with self._lock:
            server = self._server
            thread = self._thread
            self._server = None
            self._thread = None
        if server is None:
            return
        self._closing.set()
        server.shutdown()
        server.server_close()
        self._sever_connections()
        if thread is not None:
            thread.join(timeout=5.0)

    def restart(self) -> None:
        """Kill the transport (listener, connections, sessions) and
        rebind on the same port with the open round's state intact.

        This is the injected ``server_restart`` fault: workers see dead
        sockets, reconnect, find their tokens unknown, re-register
        fresh, and replay — the ingest deduplicates anything that was
        already accepted, and tasks stranded in flight are requeued once
        their (now unknown) sessions stop answering for them.
        """
        self._stop_listener()
        dropped = self.sessions.clear()
        self.stats["restarts"] += 1
        _LOG.warning(
            "transport restart: dropped %d live sessions, rebinding "
            "port %s", len(dropped), self._port,
        )
        self.start()

    def request_shutdown(self) -> None:
        """Answer every future GET_TASK with SHUTDOWN (drain workers)."""
        with self._lock:
            self._shutdown_workers = True

    def stop(self) -> None:
        self._stop_listener()
        self.sessions.clear()

    # ------------------------------------------------------------------
    # Round barrier
    # ------------------------------------------------------------------
    def open_round(
        self,
        round_tag: int,
        mask_epoch: int,
        masks_blob: bytes,
        payload_wire: bytes,
        tasks: list[TaskSpec],
        ingest,
    ) -> None:
        with self._lock:
            if self._round is not None:
                raise TransportError(
                    f"round {self._round.round_tag} is still open"
                )
            self._round = _RoundState(
                round_tag, mask_epoch, masks_blob, payload_wire,
                tasks, ingest,
            )

    def await_round(
        self, supervise: Callable[[], None] | None = None
    ) -> dict[int, dict | None]:
        """Block until every task is delivered or failed.

        Returns ``client_id -> upload meta`` (``None`` for clients whose
        task exhausted its reassignment budget — the executor reweights
        them out). ``supervise`` runs every poll tick so the executor
        can respawn dead worker processes.
        """
        with self._lock:
            rnd = self._round
        if rnd is None:
            raise TransportError("await_round without an open round")
        while True:
            with self._lock:
                self._reap_locked(rnd)
                if rnd.finished():
                    self._round = None
                    self.last_latencies = dict(rnd.latencies)
                    return {
                        cid: rnd.metas.get(cid) for cid in rnd.expected
                    }
                stalled = (
                    not len(self.sessions)
                    and not rnd.in_flight
                    and time.monotonic() - rnd.last_progress
                    > self.transport.timeout
                )
            if supervise is not None:
                supervise()
            if stalled:
                with self._lock:
                    # Supervision had a full timeout window to bring
                    # workers back; fail the stranded tasks loudly
                    # rather than hanging the barrier forever.
                    stranded = [
                        task.client_id for task in rnd.queue
                        if task.client_id not in rnd.metas
                        and task.client_id not in rnd.failed
                    ]
                    for cid in stranded:
                        _LOG.error(
                            "round %d: no live workers for a full "
                            "timeout window; failing client %d",
                            rnd.round_tag, cid,
                        )
                        rnd.failed.add(cid)
                        self.stats["failed_tasks"] += 1
                    rnd.queue.clear()
                    rnd.last_progress = time.monotonic()
            time.sleep(self.transport.poll_interval)

    def _requeue_locked(self, rnd: _RoundState, client_id: int) -> None:
        entry = rnd.in_flight.pop(client_id, None)
        if entry is None:
            return
        if client_id in rnd.metas or client_id in rnd.failed:
            return
        task = entry.task
        task.attempt += 1
        self.stats["requeues"] += 1
        if task.attempt > self.transport.max_reconnects:
            _LOG.warning(
                "round %d: client %d failed after %d reassignments; "
                "reweighting it out", rnd.round_tag, client_id,
                task.attempt,
            )
            rnd.failed.add(client_id)
            self.stats["failed_tasks"] += 1
            rnd.last_progress = time.monotonic()
            return
        _LOG.warning(
            "round %d: requeueing client %d (assignment attempt %d)",
            rnd.round_tag, client_id, task.attempt,
        )
        rnd.queue.append(task)

    def _reap_locked(self, rnd: _RoundState) -> None:
        now = time.monotonic()
        for session in self.sessions.expired(now):
            self.sessions.drop(session.token)
            self.stats["expired_sessions"] += 1
            _LOG.warning(
                "worker %d session %s missed its heartbeat window; "
                "dropping it", session.worker_id, session.token,
            )
        live_tokens = {s.token for s in self.sessions.live()}
        for cid, entry in list(rnd.in_flight.items()):
            if entry.token not in live_tokens:
                # Assignee's session is gone (expired, dropped, or the
                # server restarted): give the task to someone else.
                self._requeue_locked(rnd, cid)
            elif now - entry.assigned_at > self.transport.timeout:
                self._requeue_locked(rnd, cid)

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def drop_one_session(self) -> bool:
        """Sever one live worker's session + connection (injected
        ``connection_drop``). The worker's next request fails, it
        reconnects, learns its token is unknown, and re-registers; any
        re-sent upload deduplicates. Returns False with no live session.
        """
        with self._lock:
            live = self.sessions.live()
            if not live:
                return False
            victim = min(live, key=lambda s: (s.worker_id, s.token))
            self.sessions.drop(victim.token)
            self.stats["dropped_sessions"] += 1
        _LOG.warning(
            "injected connection drop: severed worker %d (session %s)",
            victim.worker_id, victim.token,
        )
        if victim.connection is not None:
            try:
                victim.connection.shutdown(socket.SHUT_RDWR)
            # repro-lint: allow[silent-except] -- the fault wanted the
            # connection dead; finding it already dead is success.
            except OSError:
                pass
        return True

    # ------------------------------------------------------------------
    # Protocol dispatch (handler threads)
    # ------------------------------------------------------------------
    def _dispatch(
        self, kind: int, meta: dict, blob: bytes, sock: socket.socket
    ) -> tuple | None:
        if kind == MSG.REGISTER:
            return self._on_register(meta, sock)
        token = meta.get("token")
        try:
            session = self.sessions.beat(token, connection=sock)
        except KeyError:
            _LOG.info(
                "request %d with unknown session %r; asking the worker "
                "to re-register", kind, token,
            )
            return (MSG.ERROR, {"reason": "unknown_session"})
        if kind == MSG.HEARTBEAT:
            return (MSG.HEARTBEAT_ACK, {})
        if kind == MSG.GET_TASK:
            return self._on_get_task(session)
        if kind == MSG.GET_BROADCAST:
            return self._on_get_broadcast(meta)
        if kind == MSG.UPLOAD:
            return self._on_upload(session, meta, blob)
        _LOG.warning("unknown message type %d from worker", kind)
        return (MSG.ERROR, {"reason": f"unknown_message:{kind}"})

    def _on_register(self, meta: dict, sock: socket.socket) -> tuple:
        session, resumed = self.sessions.register(
            int(meta["worker_id"]), meta.get("token"), connection=sock
        )
        with self._lock:
            self.stats["resumes" if resumed else "registrations"] += 1
            if self._round is not None:
                self._round.last_progress = time.monotonic()
        _LOG.info(
            "worker %d %s as session %s", session.worker_id,
            "resumed" if resumed else "registered", session.token,
        )
        return (MSG.REGISTERED, {
            "token": session.token,
            "resumed": resumed,
            "heartbeat_interval": self.transport.heartbeat_interval,
        })

    def _on_get_task(self, session) -> tuple | None:
        with self._lock:
            if self._shutdown_workers:
                return (MSG.SHUTDOWN, {})
            rnd = self._round
            wait = (MSG.WAIT, {"poll": self.transport.poll_interval})
            if rnd is None:
                return wait
            while rnd.queue:
                task = rnd.queue.popleft()
                cid = task.client_id
                if (
                    cid in rnd.metas
                    or cid in rnd.failed
                    or cid in rnd.in_flight
                ):
                    continue  # superseded while queued
                rnd.in_flight[cid] = _InFlight(
                    task, session.token, time.monotonic()
                )
                session.client_id = cid
                return (MSG.TASK, {
                    "client_id": cid,
                    "rng_state": task.rng_state,
                    "kwargs": task.kwargs,
                    "attempt": task.attempt,
                    "round_tag": rnd.round_tag,
                    "mask_epoch": rnd.mask_epoch,
                })
            return wait

    def _on_get_broadcast(self, meta: dict) -> tuple:
        with self._lock:
            rnd = self._round
            if rnd is None or meta.get("round_tag") != rnd.round_tag:
                # The round moved on while the worker was away; it will
                # re-poll and pick up the current round's task + bytes.
                return (MSG.ERROR, {"reason": "stale_round"})
            return (
                MSG.BROADCAST,
                {
                    "round_tag": rnd.round_tag,
                    "mask_epoch": rnd.mask_epoch,
                    "masks_blob": rnd.masks_blob,
                },
                rnd.payload_wire,
            )

    def _on_upload(self, session, meta: dict, blob: bytes) -> tuple:
        cid = int(meta["client_id"])
        with self._lock:
            rnd = self._round
            if rnd is None or meta.get("round_tag") != rnd.round_tag:
                # Late upload for a closed round: drop it — its client
                # was already adjudicated (delivered or reweighted out).
                _LOG.warning(
                    "stale upload from client %d for round %r dropped",
                    cid, meta.get("round_tag"),
                )
                return (MSG.UPLOAD_ACK, {"status": "stale_round"})
            status = rnd.ingest.submit(
                cid,
                attempt=int(meta.get("attempt", 0)),
                mask_epoch=int(meta["mask_epoch"]),
                wire=blob,
            )
            now = time.monotonic()
            if status == "accepted":
                rnd.metas[cid] = meta
                rnd.latencies[cid] = now - rnd.opened_at
                rnd.in_flight.pop(cid, None)
                rnd.last_progress = now
            elif status == "duplicate":
                # Replay after a reconnect: the first delivery already
                # counted; just release the assignment.
                rnd.in_flight.pop(cid, None)
                rnd.last_progress = now
            else:
                # Quarantined or stale-epoch bytes never reach state;
                # the ingest recorded the rejection. Requeue so another
                # assignment can redeliver within the attempt budget.
                self._requeue_locked(rnd, cid)
            session.client_id = None
            return (MSG.UPLOAD_ACK, {"status": status})
