"""Server-side state: the global model, its masks, and aggregation."""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..sparse.mask import MaskSet
from .aggregation import weighted_average_states
from .state import get_state, set_state

__all__ = ["Server"]


class Server:
    """Holds the authoritative global model state and mask structure."""

    def __init__(self, model: Module, masks: MaskSet | None = None) -> None:
        self.model = model
        self.masks = masks if masks is not None else MaskSet.dense(model)
        self.masks.apply(model)
        self._state = get_state(model)

    # ------------------------------------------------------------------
    # State movement
    # ------------------------------------------------------------------
    @property
    def state(self) -> dict[str, np.ndarray]:
        """The current global state (parameters + buffers)."""
        return self._state

    def load_into_model(self) -> Module:
        """Install the global state and masks into the shared model."""
        self.masks.apply(self.model)
        set_state(self.model, self._state)
        return self.model

    def commit_state(self, state: dict[str, np.ndarray]) -> None:
        """Replace the global state (masking prunable parameters)."""
        self._state = state
        self.load_into_model()
        self._state = get_state(self.model)

    # ------------------------------------------------------------------
    # Aggregation and mask updates
    # ------------------------------------------------------------------
    def aggregate(
        self,
        client_states: list[dict[str, np.ndarray]],
        sample_counts: list[int],
    ) -> None:
        """FedAvg the uploaded states into the global state."""
        self.commit_state(
            weighted_average_states(client_states, sample_counts)
        )

    def set_masks(self, masks: MaskSet) -> None:
        """Install a new mask structure and re-apply it to the state."""
        self.masks = masks
        self.load_into_model()
        self._state = get_state(self.model)

    @property
    def density(self) -> float:
        return self.masks.density
