"""Server-side state: the global model, its masks, and aggregation."""

from __future__ import annotations

import logging

import numpy as np

from ..nn.module import Module
from ..sparse.mask import MaskSet
from .aggregation import AggregationWorkspace, HierarchicalAggregator, \
    aggregate_packed_states, weighted_average_states
from .faults import FailureRecord
from .payload import PackedPayload, PayloadFormatError
from .state import FlatStateSnapshot, get_state, set_state

__all__ = ["RoundIngest", "Server"]

_LOG = logging.getLogger(__name__)


class RoundIngest:
    """Admission control for one round's uploads.

    The validation-before-write layer in front of aggregation: an
    upload is *accepted* only if it is the first arrival for its client
    this round, claims the server's current mask epoch, and (when raw
    wire bytes are submitted) parses and passes the codec's structural
    audit. Rejected uploads never touch server state; each rejection is
    recorded as a structured :class:`~repro.fl.faults.FailureRecord`.

    Wire bytes are optional because in-process uploads from the run's
    own executor are a trusted producer — they skip re-serialization
    and submit metadata only. Anything that crossed a byte boundary
    (injected transport faults today, the networked executor of ROADMAP
    item 2 tomorrow) submits its wire form and is fully validated
    before admission.
    """

    def __init__(self, server: "Server", round_index: int) -> None:
        self.server = server
        self.round_index = round_index
        self.records: list[FailureRecord] = []
        self._accepted: dict[int, int] = {}  # client_id -> attempt
        # Validated payloads of wire-form submissions, retained so a
        # transport caller can aggregate without re-decoding — and in
        # *canonical* client order of its choosing, independent of the
        # arrival order the network produced.
        self._payloads: dict[int, PackedPayload] = {}
        self._spec_cache: dict = {}

    @property
    def accepted_clients(self) -> list[int]:
        """Client IDs admitted so far, in admission order."""
        return list(self._accepted)

    def accepted_payload(self, client_id: int) -> PackedPayload | None:
        """The validated payload a wire-form submission was admitted
        with (``None`` for metadata-only submissions or unknown IDs)."""
        return self._payloads.get(client_id)

    def submit(
        self,
        client_id: int,
        attempt: int,
        mask_epoch: int,
        wire: bytes | bytearray | memoryview | None = None,
    ) -> str:
        """Adjudicate one upload.

        Returns ``"accepted"``, ``"duplicate"``, ``"rejected_stale"``,
        or ``"quarantined"``. Only ``"accepted"`` uploads may be fed to
        the aggregation; everything else leaves the server bit-for-bit
        unchanged.
        """
        if client_id in self._accepted:
            _LOG.debug(
                "round %d: duplicate upload from client %d dropped",
                self.round_index, client_id,
            )
            self.records.append(
                FailureRecord(
                    self.round_index, client_id, attempt,
                    "duplicate_upload", "deduplicated",
                    detail=f"first accepted at attempt "
                           f"{self._accepted[client_id]}",
                )
            )
            return "duplicate"
        if mask_epoch != self.server.mask_epoch:
            _LOG.debug(
                "round %d: client %d upload rejected "
                "(mask epoch %d, server at %d)",
                self.round_index, client_id,
                mask_epoch, self.server.mask_epoch,
            )
            self.records.append(
                FailureRecord(
                    self.round_index, client_id, attempt,
                    "stale_epoch", "rejected_stale",
                    detail=f"claimed epoch {mask_epoch}, "
                           f"server at {self.server.mask_epoch}",
                )
            )
            return "rejected_stale"
        payload = None
        if wire is not None:
            try:
                payload = PackedPayload.from_bytes(
                    wire, copy=True, validate=True,
                    spec_cache=self._spec_cache,
                )
            except PayloadFormatError as exc:
                _LOG.warning(
                    "round %d: client %d upload quarantined: %s",
                    self.round_index, client_id, exc,
                )
                self.records.append(
                    FailureRecord(
                        self.round_index, client_id, attempt,
                        "payload_format", "quarantined",
                        detail=str(exc),
                    )
                )
                return "quarantined"
        self._accepted[client_id] = attempt
        if payload is not None:
            self._payloads[client_id] = payload
        return "accepted"


class Server:
    """Holds the authoritative global model state and mask structure.

    Round-loop hot paths are allocation-free in steady state: FedAvg
    accumulates through a reusable :class:`AggregationWorkspace`,
    committed states are written back into the existing ``_state``
    arrays in place, and :meth:`broadcast`/:meth:`restore_broadcast`
    reset the shared model between clients with flat memcpys instead of
    re-running the per-tensor :func:`set_state` installation.
    """

    def __init__(
        self,
        model: Module,
        masks: MaskSet | None = None,
        aggregation_fan_in: int | None = None,
    ) -> None:
        if aggregation_fan_in is not None and aggregation_fan_in < 1:
            raise ValueError("aggregation_fan_in must be >= 1")
        self.model = model
        self.masks = masks if masks is not None else MaskSet.dense(model)
        self.masks.apply(model)
        self._state = get_state(model)
        # Edge-aggregator group size: when set, uploads reduce tree-wise
        # through a HierarchicalAggregator instead of one flat fold.
        self.aggregation_fan_in = aggregation_fan_in
        # Monotonic counter, bumped whenever the mask structure changes.
        # Executors key their shipped-mask caches on it.
        self.mask_epoch = 0
        self._workspace = AggregationWorkspace()
        self._snapshot = FlatStateSnapshot()
        self._snapshot_fresh = False

    # ------------------------------------------------------------------
    # State movement
    # ------------------------------------------------------------------
    @property
    def state(self) -> dict[str, np.ndarray]:
        """The current global state (parameters + buffers)."""
        return self._state

    def load_into_model(self) -> Module:
        """Install the global state and masks into the shared model."""
        self.masks.apply(self.model)
        set_state(self.model, self._state, inplace=True)
        return self.model

    def broadcast(self) -> Module:
        """One round's download: install the global state and snapshot it.

        After this, :meth:`restore_broadcast` resets the model to the
        exact broadcast bytes without allocating — the per-client
        "download" of a serial round.
        """
        self.load_into_model()
        self._snapshot.capture(self.model)
        self._snapshot_fresh = True
        return self.model

    def restore_broadcast(self) -> Module:
        """Reset the shared model to the last :meth:`broadcast`."""
        if not self._snapshot_fresh:
            return self.broadcast()
        self._snapshot.restore(self.model)
        return self.model

    def _write_back_state(self) -> None:
        """Refresh ``_state`` from the model, reusing its arrays.

        Keys and shapes are stable across rounds, so the copies land in
        the existing arrays; any layout change falls back to a rebuild.
        """
        self._snapshot_fresh = False
        state = self._state
        for name, param in self.model.named_parameters():
            target = state.get(name)
            if target is None or target.shape != param.data.shape:
                self._state = get_state(self.model)
                return
            np.copyto(target, param.data)
        for name, buf in self.model.named_buffers():
            key = "buffer::" + name
            target = state.get(key)
            if target is None or target.shape != buf.shape:
                self._state = get_state(self.model)
                return
            np.copyto(target, buf)

    def commit_state(self, state: dict[str, np.ndarray]) -> None:
        """Replace the global state (masking prunable parameters)."""
        self.masks.apply(self.model)
        set_state(self.model, state, inplace=True)
        self._write_back_state()

    # ------------------------------------------------------------------
    # Aggregation and mask updates
    # ------------------------------------------------------------------
    def aggregate(
        self,
        client_states: list[dict[str, np.ndarray]],
        sample_counts: list[int],
    ) -> None:
        """FedAvg the uploaded states into the global state.

        The aggregation reuses the server's workspace buffers;
        ``commit_state`` copies the result into ``_state`` before the
        workspace can be clobbered by the next round. With
        ``aggregation_fan_in`` set, uploads reduce tree-wise through
        edge-aggregator shards instead of one flat fold (fan-in 1 or
        >= cohort stays bitwise identical to the flat path).
        """
        if self.aggregation_fan_in is not None:
            aggregator = HierarchicalAggregator(
                sample_counts, fan_in=self.aggregation_fan_in
            )
            for state in client_states:
                aggregator.add_state(state)
            self.commit_state(aggregator.finish())
            return
        self.commit_state(
            weighted_average_states(
                client_states, sample_counts, workspace=self._workspace
            )
        )

    def aggregate_packed(self, payloads: list, sample_counts: list[int]) -> None:
        """FedAvg packed uploads without decoding them to dense dicts.

        The sparse-aware twin of :meth:`aggregate`: work scales with the
        active-parameter count and the committed state is bitwise
        identical to decoding every payload and running the dense path
        (float64 accumulation in the same order, pruned positions
        ``+0.0`` exactly as :func:`~repro.fl.payload.unpack_state`
        canonicalizes them). ``aggregation_fan_in`` routes the payloads
        through the same tree-wise reduction as :meth:`aggregate`.
        """
        if self.aggregation_fan_in is not None:
            aggregator = HierarchicalAggregator(
                sample_counts, fan_in=self.aggregation_fan_in
            )
            for payload in payloads:
                aggregator.add_payload(payload)
            self.commit_state(aggregator.finish())
            return
        self.commit_state(
            aggregate_packed_states(
                payloads, sample_counts, workspace=self._workspace
            )
        )

    def begin_ingest(self, round_index: int) -> RoundIngest:
        """Open an admission-control session for one round's uploads."""
        return RoundIngest(self, round_index)

    def set_masks(self, masks: MaskSet) -> None:
        """Install a new mask structure and re-apply it to the state."""
        self.masks = masks
        self.mask_epoch += 1
        self.masks.apply(self.model)
        set_state(self.model, self._state, inplace=True)
        self._write_back_state()

    @property
    def density(self) -> float:
        return self.masks.density
