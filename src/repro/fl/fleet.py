"""Client directory: a fleet addressed by ID, materialized on demand.

The simulation used to build every :class:`~repro.fl.client.Client` up
front — data shard, dev cache, RNG, device profile — so memory and
setup cost were O(total clients). A :class:`ClientDirectory` inverts
that: the fleet is a range of integer IDs, cohort sampling draws IDs,
and :meth:`ClientDirectory.materialize` builds the client for an ID
only when it is actually selected.

Two backends:

- :class:`MaterializedDirectory` wraps the eager client list and keeps
  the historical behavior (and the object identities the process-pool
  executor keys its worker caches on).
- :class:`VirtualClientDirectory` holds only the recipes — a
  :class:`~repro.data.partition.PartitionPlan` for shards and a
  :class:`~repro.fl.latency.FleetPlan` for device profiles — and builds
  clients deterministically from ``(plan, seed, client_id)``. Releasing
  a client saves its RNG state so a later re-materialization resumes
  the exact random stream, keeping virtual runs bitwise identical to
  materialized ones.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from ..data.dataset import Dataset
from ..data.partition import PartitionPlan
from .client import Client
from .latency import DeviceProfile, FleetPlan

__all__ = [
    "ClientDirectory",
    "MaterializedDirectory",
    "VirtualClientDirectory",
    "cohort_size",
]


def cohort_size(fraction: float, num_clients: int) -> int:
    """Deterministic cohort size: ``max(1, ceil(fraction * n))``.

    The previous ``int(round(fraction * n))`` rule used Python's
    round-half-to-even, so 2.5 expected participants became 2 while 3.5
    became 4. Every sampler (materialized and virtual) now shares this
    explicit ceiling rule.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    return max(1, math.ceil(fraction * num_clients))


class ClientDirectory(ABC):
    """The client population addressed by integer IDs ``0..n-1``."""

    @property
    @abstractmethod
    def num_clients(self) -> int:
        """Population size."""

    @abstractmethod
    def sample_count(self, client_id: int) -> int:
        """Local dataset size of one client, without materializing it."""

    @abstractmethod
    def device_profile(self, client_id: int) -> DeviceProfile:
        """Device profile of one client, without materializing it."""

    @abstractmethod
    def materialize(self, client_id: int) -> Client:
        """The live :class:`Client` for an ID, built on first use."""

    @abstractmethod
    def release(self, client_id: int) -> None:
        """Drop a client's live state (no-op for eager backends).

        Deterministic state (the RNG stream position) survives the
        release, so ``materialize`` after ``release`` resumes exactly
        where the client left off.
        """

    @abstractmethod
    def all_clients(self) -> list[Client]:
        """Every client, materialized. O(population) — compatibility
        surface for small fleets; huge virtual fleets must stay on the
        ID-based API."""

    def sample_counts(self) -> list[int]:
        """Per-client dataset sizes, aligned with client IDs."""
        return [
            self.sample_count(i) for i in range(self.num_clients)
        ]

    @abstractmethod
    def rng_snapshot(self) -> dict[int, dict]:
        """Every client RNG stream position that differs from a fresh
        build, keyed by client ID (checkpoint capture)."""

    @abstractmethod
    def restore_rng(self, states: dict[int, dict]) -> None:
        """Install a :meth:`rng_snapshot` (checkpoint resume).

        Clients absent from ``states`` keep their deterministic
        fresh-build stream, which is exactly what the snapshot means
        for clients that had never been touched when it was taken.
        """


class MaterializedDirectory(ClientDirectory):
    """The eager backend: wraps a prebuilt client list."""

    def __init__(self, clients: list[Client]) -> None:
        if not clients:
            raise ValueError("a directory needs at least one client")
        self._clients = clients

    @property
    def num_clients(self) -> int:
        return len(self._clients)

    def sample_count(self, client_id: int) -> int:
        return self._clients[client_id].num_samples

    def device_profile(self, client_id: int) -> DeviceProfile:
        return self._clients[client_id].device

    def materialize(self, client_id: int) -> Client:
        return self._clients[client_id]

    def release(self, client_id: int) -> None:
        # Eager clients are the authoritative state; never dropped.
        return None

    def all_clients(self) -> list[Client]:
        # The same list object every call; worker-pool executors ship
        # the directory itself and key their caches on its identity.
        return self._clients

    def rng_snapshot(self) -> dict[int, dict]:
        return {
            client.client_id: client.rng.bit_generator.state
            for client in self._clients
        }

    def restore_rng(self, states: dict[int, dict]) -> None:
        for client in self._clients:
            saved = states.get(client.client_id)
            if saved is not None:
                client.rng.bit_generator.state = saved


class VirtualClientDirectory(ClientDirectory):
    """The lazy backend: clients are recipes until selected."""

    def __init__(
        self,
        train_data: Dataset,
        partition: PartitionPlan,
        fleet: FleetPlan,
        dev_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if fleet.num_devices != partition.num_clients:
            raise ValueError(
                f"partition covers {partition.num_clients} clients but "
                f"fleet covers {fleet.num_devices} devices"
            )
        self._train_data = train_data
        self._partition = partition
        self._fleet = fleet
        self._dev_fraction = dev_fraction
        self._seed = seed
        self._live: dict[int, Client] = {}
        # RNG stream positions of released clients, so re-materialized
        # clients draw the same batch orders a permanently-live client
        # would have.
        self._rng_states: dict[int, dict] = {}

    @property
    def num_clients(self) -> int:
        return self._partition.num_clients

    def sample_count(self, client_id: int) -> int:
        return self._partition.shard_size(client_id)

    def device_profile(self, client_id: int) -> DeviceProfile:
        return self._fleet.profile(client_id)

    @property
    def live_count(self) -> int:
        """How many clients are currently materialized."""
        return len(self._live)

    def sample_counts(self) -> list[int]:
        return self._partition.sizes()

    def materialize(self, client_id: int) -> Client:
        client = self._live.get(client_id)
        if client is not None:
            return client
        client = Client(
            client_id=client_id,
            train_data=self._train_data.subset(
                self._partition.shard_indices(client_id)
            ),
            dev_fraction=self._dev_fraction,
            seed=self._seed,
            device=self._fleet.profile(client_id),
        )
        # Construction replayed the client's deterministic prefix (the
        # dev-set draw); if the client lived before, fast-forward its
        # RNG to where the last release left it.
        saved = self._rng_states.get(client_id)
        if saved is not None:
            client.rng.bit_generator.state = saved
        self._live[client_id] = client
        return client

    def release(self, client_id: int) -> None:
        client = self._live.pop(client_id, None)
        if client is not None:
            self._rng_states[client_id] = (
                client.rng.bit_generator.state
            )

    def all_clients(self) -> list[Client]:
        return [self.materialize(i) for i in range(self.num_clients)]

    def rng_snapshot(self) -> dict[int, dict]:
        # Released positions plus live clients; IDs never materialized
        # need no entry — a fresh build derives their stream from the
        # seed, bit-identically.
        snapshot = dict(self._rng_states)
        for client_id, client in self._live.items():
            snapshot[client_id] = client.rng.bit_generator.state
        return snapshot

    def restore_rng(self, states: dict[int, dict]) -> None:
        self._rng_states.update(states)
        for client_id, client in self._live.items():
            saved = states.get(client_id)
            if saved is not None:
                client.rng.bit_generator.state = saved

    def __getstate__(self) -> dict:
        # Worker processes receive the *recipe*, never live clients:
        # materialized Client objects hold dataset views and are exactly
        # what lazy materialization exists to avoid shipping. Folding
        # the live RNG positions into the released-state map makes the
        # pickled twin behave as if every client had been released, so
        # a worker-side materialize() resumes the same streams.
        state = self.__dict__.copy()
        rng_states = dict(self._rng_states)
        for client_id, client in self._live.items():
            rng_states[client_id] = client.rng.bit_generator.state
        state["_rng_states"] = rng_states
        state["_live"] = {}
        return state
