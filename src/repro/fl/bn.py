"""Batch-normalization statistics collection and installation.

Device-side recalibration for the adaptive BN selection module (paper
Algorithm 1, lines 2-8): run stats-only forward passes over the local
development dataset and report the resulting per-layer running
statistics. Recalibration uses a cumulative-average momentum so the
result is the equally-weighted mean of the per-batch statistics,
independent of the stale global statistics.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..nn import engine
from ..nn.layers import BatchNorm2d
from ..nn.module import Module

__all__ = [
    "bn_layers",
    "get_bn_statistics",
    "set_bn_statistics",
    "recalibrate_bn_statistics",
]

BNStats = dict[str, tuple[np.ndarray, np.ndarray]]


def bn_layers(model: Module) -> list[tuple[str, BatchNorm2d]]:
    """Ordered (name, layer) pairs of every BatchNorm2d in the model."""
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, BatchNorm2d)
    ]


def get_bn_statistics(model: Module) -> BNStats:
    """Copies of the running (mean, var) of every BN layer."""
    return {name: layer.get_stats() for name, layer in bn_layers(model)}


def set_bn_statistics(model: Module, stats: BNStats) -> None:
    """Install running statistics into every named BN layer (strict)."""
    layers = dict(bn_layers(model))
    unknown = set(stats) - set(layers)
    if unknown:
        raise KeyError(f"unknown BN layers: {sorted(unknown)}")
    for name, (mean, var) in stats.items():
        layers[name].set_stats(np.asarray(mean), np.asarray(var))


def recalibrate_bn_statistics(
    model: Module, dataset, batch_size: int = 64
) -> BNStats:
    """Reset and re-estimate BN statistics from ``dataset``.

    Runs forward passes in training mode (no gradients, no parameter
    updates — "evaluating a pruned model is much cheaper than training
    and pruning"). The momentum of every BN layer is temporarily set to
    the cumulative-average schedule ``i / (i + 1)`` so the final running
    statistics equal the mean of the per-batch statistics.

    ``dataset`` may be a :class:`~repro.data.dataset.Dataset` or an
    already-materialized sequence of ``(images, labels)`` batches (the
    selection fast path reuses one batch list across candidates so the
    engine's lowering cache can key on the batch arrays' identity); the
    two are bit-identical as long as the batch contents match.
    """
    if isinstance(dataset, Dataset):
        if len(dataset) == 0:
            raise ValueError("cannot recalibrate on an empty dataset")
        batches = dataset.batches(batch_size)
    else:
        batches = list(dataset)
        if not batches:
            raise ValueError("cannot recalibrate on an empty dataset")
    layers = bn_layers(model)
    saved_momentum = [(layer, layer.momentum) for _, layer in layers]
    was_training = model.training
    model.train(True)
    try:
        for _, layer in layers:
            layer.reset_stats()
        # Stats-only forwards: inference mode keeps the layers from
        # recording backward caches they will never consume.
        with engine.inference_mode():
            for index, (images, _) in enumerate(batches):
                momentum = index / (index + 1.0)
                for _, layer in layers:
                    layer.momentum = momentum
                model(images)
    finally:
        for layer, momentum in saved_momentum:
            layer.momentum = momentum
        model.train(was_training)
    return get_bn_statistics(model)
