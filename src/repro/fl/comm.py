"""Communication cost accounting.

Every byte moved between the server and any device is recorded here;
the experiment harness reads totals per phase (selection vs training)
to reproduce the paper's communication-cost analysis (Fig. 5 right).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CommTracker"]


@dataclass
class CommTracker:
    """Byte counters for uploads and downloads, split by phase label."""

    upload_bytes: int = 0
    download_bytes: int = 0
    by_phase: dict[str, int] = field(default_factory=dict)

    def record_download(self, num_bytes: int, phase: str = "training") -> None:
        """Server -> device transfer."""
        self._record(num_bytes, phase)
        self.download_bytes += int(num_bytes)

    def record_upload(self, num_bytes: int, phase: str = "training") -> None:
        """Device -> server transfer."""
        self._record(num_bytes, phase)
        self.upload_bytes += int(num_bytes)

    def _record(self, num_bytes: int, phase: str) -> None:
        if num_bytes < 0:
            raise ValueError(f"byte count must be >= 0, got {num_bytes}")
        self.by_phase[phase] = self.by_phase.get(phase, 0) + int(num_bytes)

    @property
    def total_bytes(self) -> int:
        return self.upload_bytes + self.download_bytes

    def phase_bytes(self, phase: str) -> int:
        return self.by_phase.get(phase, 0)

    def reset(self) -> None:
        self.upload_bytes = 0
        self.download_bytes = 0
        self.by_phase.clear()
