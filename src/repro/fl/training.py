"""Centralized training helpers (server-side pretraining).

The paper gives every method a model pre-trained on a small public
one-shot dataset ``D_s`` held by the server (Section IV-A3); magnitude
and SNIP-style scores are meaningless on random weights.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..nn import engine
from ..nn.loss import CrossEntropyLoss
from ..nn.module import Module
from ..nn.optim import SGD

__all__ = ["train_centralized", "server_pretrain"]


def train_centralized(
    model: Module,
    dataset: Dataset,
    epochs: int,
    batch_size: int = 64,
    lr: float = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    seed: int = 0,
) -> float:
    """Plain SGD training; returns the final mean epoch loss."""
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if len(dataset) == 0:
        raise ValueError(
            "cannot train on an empty dataset; check the public split "
            "fraction / dataset construction"
        )
    rng = np.random.default_rng(seed)
    optimizer = SGD(model, lr=lr, momentum=momentum,
                    weight_decay=weight_decay)
    loss_fn = CrossEntropyLoss()
    model.train(True)
    mean_loss = float("nan")
    # SGD updates are masked, so fully-pruned-row weight gradients are
    # dead weight here; the engine may skip them.
    with engine.masked_weight_grads():
        for _ in range(epochs):
            loss_sum = 0.0
            batches = 0
            for images, labels in dataset.batches(batch_size, rng=rng):
                loss = loss_fn(model(images), labels)
                model.zero_grad()
                model.backward(loss_fn.backward())
                optimizer.step()
                loss_sum += loss
                batches += 1
            mean_loss = loss_sum / max(1, batches)
    return mean_loss


def server_pretrain(
    model: Module,
    public_data: Dataset,
    epochs: int = 2,
    batch_size: int = 64,
    lr: float = 0.05,
    seed: int = 0,
) -> float:
    """Pretrain on the public one-shot dataset D_s (paper IV-A3)."""
    return train_centralized(
        model,
        public_data,
        epochs=epochs,
        batch_size=batch_size,
        lr=lr,
        seed=seed,
    )
