"""Flat state extraction/installation for model exchange.

Federated rounds move parameter values (and BN buffers) between the
server and devices. These helpers convert a model to and from plain
``{name: array}`` dicts without touching masks, which travel separately
as :class:`~repro.sparse.MaskSet` objects.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module

__all__ = [
    "get_parameters",
    "set_parameters",
    "get_buffers",
    "set_buffers",
    "get_state",
    "set_state",
    "zeros_like_state",
]


def get_parameters(model: Module) -> dict[str, np.ndarray]:
    """Copies of all parameter values."""
    return {name: p.data.copy() for name, p in model.named_parameters()}


def set_parameters(model: Module, values: dict[str, np.ndarray]) -> None:
    """Install parameter values (strict on names and shapes)."""
    params = dict(model.named_parameters())
    for name, value in values.items():
        if name not in params:
            raise KeyError(f"unknown parameter {name!r}")
        if params[name].data.shape != value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: "
                f"{params[name].data.shape} vs {value.shape}"
            )
        params[name].data = value.astype(np.float32).copy()
        params[name].apply_mask()


def get_buffers(model: Module) -> dict[str, np.ndarray]:
    """Copies of all registered buffers (BN running statistics)."""
    return {name: buf.copy() for name, buf in model.named_buffers()}


def set_buffers(model: Module, values: dict[str, np.ndarray]) -> None:
    """Install buffer values (strict)."""
    known = {name for name, _ in model.named_buffers()}
    unknown = set(values) - known
    if unknown:
        raise KeyError(f"unknown buffers: {sorted(unknown)}")
    for name, value in values.items():
        model._assign_buffer(name, value)


def get_state(model: Module) -> dict[str, np.ndarray]:
    """Parameters and buffers in one flat dict (buffer keys prefixed)."""
    state = get_parameters(model)
    for name, buf in get_buffers(model).items():
        state["buffer::" + name] = buf
    return state


def set_state(model: Module, state: dict[str, np.ndarray]) -> None:
    """Install a dict produced by :func:`get_state`."""
    params = {k: v for k, v in state.items() if not k.startswith("buffer::")}
    buffers = {
        k[len("buffer::") :]: v
        for k, v in state.items()
        if k.startswith("buffer::")
    }
    set_parameters(model, params)
    set_buffers(model, buffers)


def zeros_like_state(state: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """A zero-filled state with the same keys and shapes."""
    return {name: np.zeros_like(value) for name, value in state.items()}
