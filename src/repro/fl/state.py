"""Flat state extraction/installation for model exchange.

Federated rounds move parameter values (and BN buffers) between the
server and devices. These helpers convert a model to and from plain
``{name: array}`` dicts without touching masks, which travel separately
as :class:`~repro.sparse.MaskSet` objects.

:class:`FlatStateSnapshot` is the fast in-process counterpart: it
freezes a model's post-broadcast state into one contiguous float32
buffer and restores it with plain memcpys, so a serial round can reset
the shared model between clients without the per-tensor allocations of
:func:`set_state`.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module

__all__ = [
    "FlatStateSnapshot",
    "get_parameters",
    "set_parameters",
    "get_buffers",
    "set_buffers",
    "get_state",
    "set_state",
    "zeros_like_state",
]


def get_parameters(model: Module) -> dict[str, np.ndarray]:
    """Copies of all parameter values."""
    return {name: p.data.copy() for name, p in model.named_parameters()}


def set_parameters(
    model: Module,
    values: dict[str, np.ndarray],
    inplace: bool = False,
) -> None:
    """Install parameter values (strict on names and shapes).

    ``inplace`` writes through each parameter's existing storage with
    ``np.copyto`` and masks it in place — bit-identical to the copying
    path but allocation-free. Only use it on a model whose arrays the
    caller owns (the server's shared model): external references to
    ``param.data`` observe the mutation instead of keeping stale values.
    """
    params = dict(model.named_parameters())
    for name, value in values.items():
        if name not in params:
            raise KeyError(f"unknown parameter {name!r}")
        if params[name].data.shape != value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: "
                f"{params[name].data.shape} vs {value.shape}"
            )
        param = params[name]
        if inplace:
            np.copyto(param.data, value)
            if param.mask is not None:
                np.multiply(param.data, param.mask, out=param.data)
            param.bump_version()
            continue
        converted = np.asarray(value, dtype=np.float32)
        if converted is value:
            # Already float32: asarray aliased the input, so copy once.
            # (Any dtype conversion above already allocated a fresh
            # array — copying again would move every byte twice.)
            converted = value.copy()
        param.data = converted
        param.apply_mask()


def get_buffers(model: Module) -> dict[str, np.ndarray]:
    """Copies of all registered buffers (BN running statistics)."""
    return {name: buf.copy() for name, buf in model.named_buffers()}


def set_buffers(
    model: Module,
    values: dict[str, np.ndarray],
    inplace: bool = False,
) -> None:
    """Install buffer values (strict)."""
    if inplace:
        targets = dict(model.named_buffers())
        unknown = set(values) - set(targets)
        if unknown:
            raise KeyError(f"unknown buffers: {sorted(unknown)}")
        for name, value in values.items():
            if targets[name].shape != np.shape(value):
                raise ValueError(
                    f"shape mismatch for buffer {name!r}: "
                    f"{targets[name].shape} vs {np.shape(value)}"
                )
            np.copyto(targets[name], value)
        return
    known = {name for name, _ in model.named_buffers()}
    unknown = set(values) - known
    if unknown:
        raise KeyError(f"unknown buffers: {sorted(unknown)}")
    for name, value in values.items():
        model._assign_buffer(name, value)


def get_state(model: Module) -> dict[str, np.ndarray]:
    """Parameters and buffers in one flat dict (buffer keys prefixed)."""
    state = get_parameters(model)
    for name, buf in get_buffers(model).items():
        state["buffer::" + name] = buf
    return state


def set_state(
    model: Module,
    state: dict[str, np.ndarray],
    inplace: bool = False,
) -> None:
    """Install a dict produced by :func:`get_state`."""
    params = {k: v for k, v in state.items() if not k.startswith("buffer::")}
    buffers = {
        k[len("buffer::") :]: v
        for k, v in state.items()
        if k.startswith("buffer::")
    }
    set_parameters(model, params, inplace=inplace)
    set_buffers(model, buffers, inplace=inplace)


def zeros_like_state(state: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """A zero-filled state with the same keys and shapes."""
    return {name: np.zeros_like(value) for name, value in state.items()}


class FlatStateSnapshot:
    """Contiguous capture of a model's parameters and buffers.

    ``capture`` copies every parameter's (already masked) data and every
    buffer into slices of one preallocated float32 buffer; ``restore``
    copies them back in place, bumping each :class:`Parameter`'s cache
    version. Because the captured values are the *post-mask* data, a
    restore is a pure memcpy — no mask re-application is needed — and is
    bit-identical to re-running ``masks.apply`` + :func:`set_state` with
    the same state (multiplying by a 0/1 float mask is exact).

    The flat buffer and the per-tensor views are reused across captures
    as long as the model's layout (names, shapes, array identities) is
    unchanged, so steady-state rounds allocate nothing.
    """

    def __init__(self) -> None:
        self._buffer: np.ndarray | None = None
        self._views: list[np.ndarray] = []
        self._layout: tuple | None = None

    @staticmethod
    def _sources(model: Module) -> list[tuple[np.ndarray, object]]:
        """Current (array, owning-Parameter-or-None) pairs, in order.

        Resolved fresh on every call: ``set_state`` and optimizer code
        may replace the underlying arrays between capture and restore,
        so nothing here may cache array identities.
        """
        sources: list[tuple[np.ndarray, object]] = []
        for _, param in model.named_parameters():
            sources.append((param.data, param))
        for _, buf in model.named_buffers():
            sources.append((buf, None))
        return sources

    def capture(self, model: Module) -> None:
        """Copy the model's current state into the flat buffer."""
        sources = self._sources(model)
        layout = tuple(array.shape for array, _ in sources)
        if layout != self._layout:
            total = sum(int(array.size) for array, _ in sources)
            self._buffer = np.empty(total, dtype=np.float32)
            self._views = []
            cursor = 0
            for array, _ in sources:
                view = self._buffer[cursor : cursor + int(array.size)]
                self._views.append(view.reshape(array.shape))
                cursor += int(array.size)
            self._layout = layout
        for view, (array, _) in zip(self._views, sources):
            np.copyto(view, array)

    def restore(self, model: Module) -> None:
        """Copy the captured state back into the model, in place."""
        if self._buffer is None:
            raise RuntimeError("restore() before any capture()")
        sources = self._sources(model)
        if tuple(array.shape for array, _ in sources) != self._layout:
            raise RuntimeError(
                "model layout changed since capture(); re-capture before "
                "restoring"
            )
        for view, (array, owner) in zip(self._views, sources):
            np.copyto(array, view)
            if owner is not None:
                owner.bump_version()
