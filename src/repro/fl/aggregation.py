"""Server-side aggregation rules.

Weighted FedAvg over parameter states (paper Algorithm 2 line 18), the
BN-statistics aggregation of Algorithm 1 (Eq. 4), and the sparse top-K
gradient aggregation of Algorithm 2 (Eq. 7, implicit zeros for indices
a device did not report).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AggregationWorkspace",
    "HierarchicalAggregator",
    "normalized_weights",
    "weighted_average_states",
    "aggregate_packed_states",
    "staleness_weighted_average_states",
    "aggregate_bn_statistics",
    "aggregate_sparse_gradients",
]


class AggregationWorkspace:
    """Reusable accumulation buffers for :func:`weighted_average_states`.

    FedAvg runs every round over states of identical shapes, yet the
    naive implementation allocates a float64 accumulator, one float64
    product per contribution, and a float32 result — per key, per round.
    A workspace preallocates all three once and the aggregation then
    runs entirely through ``out=`` ufunc calls; buffers are rebuilt only
    when the state layout (keys or shapes) changes.

    The float32 arrays handed back by an aggregation using a workspace
    are the workspace's own output buffers: treat them as invalidated by
    the next aggregation call (the server copies them into its state
    before that).
    """

    def __init__(self) -> None:
        self._layout: tuple | None = None
        self._acc: dict[str, np.ndarray] = {}
        self._scratch: dict[str, np.ndarray] = {}
        self._out: dict[str, np.ndarray] = {}
        self._out_shapes: dict[str, tuple[int, ...]] = {}

    def bind(self, template: dict[str, np.ndarray]) -> None:
        """Size the buffers for states shaped like ``template``."""
        self.bind_layout(
            tuple((name, value.shape) for name, value in template.items())
        )

    def bind_layout(
        self, layout: tuple[tuple[str, tuple[int, ...]], ...]
    ) -> None:
        """Size the buffers for a ``((name, shape), ...)`` layout."""
        if layout == self._layout:
            return
        self._acc = {
            name: np.empty(shape, dtype=np.float64)
            for name, shape in layout
        }
        self._scratch = {
            name: np.empty(shape, dtype=np.float64)
            for name, shape in layout
        }
        # Output buffers are allocated on first request: the packed
        # aggregation only rounds *sparse* tensors through them (dense
        # results get their own storage), so eager allocation would pin
        # a dead float32 copy of every dense tensor.
        self._out = {}
        self._out_shapes = dict(layout)
        self._layout = layout

    def accumulator(self, name: str) -> np.ndarray:
        acc = self._acc[name]
        acc.fill(0.0)
        return acc

    def scratch(self, name: str) -> np.ndarray:
        return self._scratch[name]

    def output(self, name: str) -> np.ndarray:
        out = self._out.get(name)
        if out is None:
            out = np.empty(self._out_shapes[name], dtype=np.float32)
            self._out[name] = out
        return out


def normalized_weights(
    sample_counts: list[int] | list[float] | np.ndarray,
) -> np.ndarray:
    """|D_k| / sum |D_k| weights used throughout the paper.

    Accepts any positive weights (e.g. staleness-discounted effective
    sample counts), not only integer dataset sizes.
    """
    counts = np.asarray(sample_counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("sample_counts must be a non-empty 1-D sequence")
    if (counts <= 0).any():
        raise ValueError("sample counts must all be positive")
    return counts / counts.sum()


def weighted_average_states(
    states: list[dict[str, np.ndarray]],
    sample_counts: list[int] | list[float] | np.ndarray,
    workspace: AggregationWorkspace | None = None,
) -> dict[str, np.ndarray]:
    """FedAvg: weighted mean of parameter/buffer dicts.

    With a :class:`AggregationWorkspace` the accumulation runs through
    preallocated buffers and in-place ufuncs — bit-identical to the
    allocating path (same float64 products, same summation order, one
    final float32 rounding) but allocation-free in steady state. The
    returned arrays are then the workspace's output buffers, valid until
    its next use.
    """
    if not states:
        raise ValueError("no states to aggregate")
    weights = normalized_weights(sample_counts)
    if len(weights) != len(states):
        raise ValueError(
            f"{len(states)} states but {len(weights)} sample counts"
        )
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise ValueError("states have mismatched keys")
    aggregated: dict[str, np.ndarray] = {}
    if workspace is not None:
        workspace.bind(states[0])
    for key in states[0]:
        if workspace is None:
            acc = np.zeros_like(states[0][key], dtype=np.float64)
            for weight, state in zip(weights, states):
                acc += weight * state[key]
            aggregated[key] = acc.astype(np.float32)
        else:
            acc = workspace.accumulator(key)
            scratch = workspace.scratch(key)
            for weight, state in zip(weights, states):
                np.multiply(state[key], weight, out=scratch)
                np.add(acc, scratch, out=acc)
            out = workspace.output(key)
            out[...] = acc
            aggregated[key] = out
    return aggregated


def aggregate_packed_states(
    payloads: list,
    sample_counts: list[int] | list[float] | np.ndarray,
    workspace: AggregationWorkspace | None = None,
) -> dict[str, np.ndarray]:
    """FedAvg over :class:`~repro.fl.payload.PackedPayload` uploads.

    The sparse-aware twin of :func:`weighted_average_states`: for
    sparse-encoded tensors only the active entries are multiplied and
    accumulated — work and traffic both scale with density — and the
    result is scattered into a dense state once at the end (pruned
    positions come out as exactly ``+0.0``). All payloads must share one
    spec layout (same masks); accumulation is float64 with a single
    final float32 rounding, matching the dense path at every active
    position.
    """
    if not payloads:
        raise ValueError("no payloads to aggregate")
    weights = normalized_weights(sample_counts)
    if len(weights) != len(payloads):
        raise ValueError(
            f"{len(payloads)} payloads but {len(weights)} sample counts"
        )
    first = payloads[0]
    if any(p.delta for p in payloads):
        raise ValueError("delta payloads must be resolved before aggregation")
    sparse_specs = [s for s in first.specs if s.encoding == "sparse"]
    for other in payloads[1:]:
        if other.specs is not first.specs and other.specs != first.specs:
            raise ValueError(
                "payloads have mismatched specs (different masks?)"
            )
        # Equal specs do not imply equal masks: two masks with the same
        # per-tensor active counts produce identical spec tuples but
        # different index segments, and summing values at unrelated
        # coordinates would be silently wrong. Index segments are
        # contiguous int32 views, so this is a memcmp per tensor.
        for spec in sparse_specs:
            if not np.array_equal(
                other.indices_view(spec), first.indices_view(spec)
            ):
                raise ValueError(
                    f"payloads have mismatched active indices for "
                    f"{spec.name!r} (different masks?)"
                )
    if workspace is not None:
        workspace.bind_layout(
            tuple((spec.name, (spec.num_active,)) for spec in first.specs)
        )
    aggregated: dict[str, np.ndarray] = {}
    for spec in first.specs:
        if workspace is None:
            acc = np.zeros(spec.num_active, dtype=np.float64)
            for weight, payload in zip(weights, payloads):
                acc += weight * payload.values_view(spec)
        else:
            acc = workspace.accumulator(spec.name)
            scratch = workspace.scratch(spec.name)
            for weight, payload in zip(weights, payloads):
                np.multiply(payload.values_view(spec), weight, out=scratch)
                np.add(acc, scratch, out=acc)
        if spec.encoding == "sparse":
            if workspace is None:
                active32 = acc.astype(np.float32)
            else:
                active32 = workspace.output(spec.name)
                active32[...] = acc
            dense = np.zeros(spec.size, dtype=np.float32)
            dense[first.indices_view(spec)] = active32
            aggregated[spec.name] = dense.reshape(spec.shape)
        else:
            # Dense results must outlive the (reused) workspace buffers,
            # so round them straight into their own storage — the same
            # single allocation the legacy path pays.
            aggregated[spec.name] = (
                acc.astype(np.float32).reshape(spec.shape)
            )
    return aggregated


class HierarchicalAggregator:
    """Streaming tree-wise FedAvg with O(model) server memory.

    Simulates edge aggregators in front of the server: uploads arrive
    one at a time in cohort order and are grouped into consecutive
    shards of ``fan_in``. Each shard folds its members with exactly the
    :func:`weighted_average_states` workspace recipe (float64 products
    and accumulation in arrival order, one float32 rounding at the
    shard boundary); the global result is the weighted mean of the
    shard means, weighted by shard sample totals. Shards complete in
    order, so one shard accumulator and one global accumulator cover
    any cohort size — server memory is O(model), never O(cohort).

    Numerics: ``fan_in=None`` (single shard) and ``fan_in=1`` are both
    bitwise identical to flat :func:`weighted_average_states` — the
    single shard *is* the flat fold, and a one-member shard's mean
    round-trips through float64 exactly. Intermediate fan-ins insert
    extra float32 roundings at shard boundaries (IEEE addition is not
    associative), and are instead bitwise identical to the explicit
    composition ``weighted_average_states(shard_means, shard_totals)``.

    The cohort's sample counts are fixed up front — the selection is
    known before any upload arrives — so normalized weights never need
    the uploads themselves. An instance aggregates one cohort: feed
    every upload through :meth:`add_state` (dense dicts) or
    :meth:`add_payload` (packed sparse uploads, one spec layout), then
    read :meth:`finish` once.
    """

    def __init__(
        self,
        sample_counts: list[int] | list[float] | np.ndarray,
        fan_in: int | None = None,
    ) -> None:
        counts = np.asarray(sample_counts, dtype=np.float64)
        if counts.ndim != 1 or counts.size == 0:
            raise ValueError(
                "sample_counts must be a non-empty 1-D sequence"
            )
        if (counts <= 0).any():
            raise ValueError("sample counts must all be positive")
        cohort = int(counts.size)
        if fan_in is None or fan_in >= cohort:
            fan_in = cohort
        if fan_in < 1:
            raise ValueError(f"fan_in must be >= 1, got {fan_in}")
        self._cohort = cohort
        self._fan_in = fan_in
        starts = list(range(0, cohort, fan_in))
        self._shard_weights = [
            normalized_weights(counts[s : s + fan_in]) for s in starts
        ]
        shard_totals = np.empty(len(starts), dtype=np.float64)
        for j, s in enumerate(starts):
            total = 0.0
            # Explicit left fold (not sum()): shard totals feed weights,
            # and the accumulation order must stay pinned.
            for value in counts[s : s + fan_in]:
                total += float(value)
            shard_totals[j] = total
        self._global_weights = normalized_weights(shard_totals)
        self._position = 0
        self._mode: str | None = None
        self._keys: tuple[str, ...] | None = None
        self._shard_acc: dict[str, np.ndarray] = {}
        self._scratch: dict[str, np.ndarray] = {}
        self._shard_mean: dict[str, np.ndarray] = {}
        self._global_acc: dict[str, np.ndarray] = {}
        # Packed mode extras: the shared spec layout and the reference
        # index segments every payload must match.
        self._specs = None
        self._indices: dict[str, np.ndarray] = {}

    def _bind(self, shapes: dict[str, tuple[int, ...]]) -> None:
        self._keys = tuple(shapes)
        for name, shape in shapes.items():
            self._shard_acc[name] = np.empty(shape, dtype=np.float64)
            self._scratch[name] = np.empty(shape, dtype=np.float64)
            self._shard_mean[name] = np.empty(shape, dtype=np.float32)
            self._global_acc[name] = np.zeros(shape, dtype=np.float64)

    def _fold(self, values: dict[str, np.ndarray]) -> None:
        """Fold upload ``position`` into the current shard."""
        i = self._position
        if i >= self._cohort:
            raise ValueError(
                f"cohort holds {self._cohort} uploads; got more"
            )
        shard, offset = divmod(i, self._fan_in)
        weight = self._shard_weights[shard][offset]
        for name in self._keys:
            acc = self._shard_acc[name]
            if offset == 0:
                acc.fill(0.0)
            scratch = self._scratch[name]
            np.multiply(values[name], weight, out=scratch)
            np.add(acc, scratch, out=acc)
        self._position = i + 1
        if offset == self._shard_weights[shard].size - 1:
            # Shard complete: round its mean to float32 (the bytes an
            # edge aggregator would forward) and fold it into the
            # global accumulator at the shard's weight.
            global_weight = self._global_weights[shard]
            for name in self._keys:
                mean = self._shard_mean[name]
                mean[...] = self._shard_acc[name]
                scratch = self._scratch[name]
                np.multiply(mean, global_weight, out=scratch)
                np.add(
                    self._global_acc[name],
                    scratch,
                    out=self._global_acc[name],
                )

    def add_state(self, state: dict[str, np.ndarray]) -> None:
        """Fold the next dense upload (read-only; views are fine)."""
        if self._mode is None:
            self._mode = "dense"
            self._bind(
                {name: value.shape for name, value in state.items()}
            )
        elif self._mode != "dense":
            raise ValueError("aggregator already holds packed uploads")
        if tuple(state) != self._keys:
            raise ValueError("states have mismatched keys")
        self._fold(state)

    def add_payload(self, payload) -> None:
        """Fold the next packed upload (one spec layout per cohort)."""
        if payload.delta:
            raise ValueError(
                "delta payloads must be resolved before aggregation"
            )
        if self._mode is None:
            self._mode = "packed"
            self._specs = payload.specs
            self._bind(
                {spec.name: (spec.num_active,) for spec in payload.specs}
            )
            for spec in payload.specs:
                if spec.encoding == "sparse":
                    # Copied, not viewed: the payload's buffer may be
                    # released before finish() scatters the result.
                    self._indices[spec.name] = (
                        payload.indices_view(spec).copy()
                    )
        elif self._mode != "packed":
            raise ValueError("aggregator already holds dense uploads")
        else:
            if (
                payload.specs is not self._specs
                and payload.specs != self._specs
            ):
                raise ValueError(
                    "payloads have mismatched specs (different masks?)"
                )
            for spec in self._specs:
                if spec.encoding != "sparse":
                    continue
                if not np.array_equal(
                    payload.indices_view(spec), self._indices[spec.name]
                ):
                    raise ValueError(
                        f"payloads have mismatched active indices for "
                        f"{spec.name!r} (different masks?)"
                    )
        self._fold(
            {
                spec.name: payload.values_view(spec)
                for spec in self._specs
            }
        )

    def finish(self) -> dict[str, np.ndarray]:
        """The committed global state, after every upload arrived."""
        if self._position != self._cohort:
            raise ValueError(
                f"cohort holds {self._cohort} uploads; "
                f"only {self._position} arrived"
            )
        aggregated: dict[str, np.ndarray] = {}
        if self._mode == "packed":
            for spec in self._specs:
                final32 = self._global_acc[spec.name].astype(np.float32)
                if spec.encoding == "sparse":
                    dense = np.zeros(spec.size, dtype=np.float32)
                    dense[self._indices[spec.name]] = final32
                    aggregated[spec.name] = dense.reshape(spec.shape)
                else:
                    aggregated[spec.name] = final32.reshape(spec.shape)
            return aggregated
        for name in self._keys:
            aggregated[name] = self._global_acc[name].astype(np.float32)
        return aggregated


def staleness_weighted_average_states(
    states: list[dict[str, np.ndarray]],
    sample_counts: list[int] | np.ndarray,
    staleness_rounds: list[int] | np.ndarray,
    discount: float = 0.5,
) -> dict[str, np.ndarray]:
    """Buffered-async aggregation with staleness discounting.

    Upload ``k`` contributes with weight ``|D_k| * discount**s_k`` where
    ``s_k`` is how many server versions elapsed since the client pulled
    the model it trained on (0 for a fresh synchronous upload). With
    every staleness at 0 this reduces exactly to
    :func:`weighted_average_states`.
    """
    if not 0.0 < discount <= 1.0:
        raise ValueError(f"discount must be in (0, 1], got {discount}")
    counts = np.asarray(sample_counts, dtype=np.float64)
    staleness = np.asarray(staleness_rounds, dtype=np.float64)
    if staleness.shape != counts.shape:
        raise ValueError(
            f"{counts.size} sample counts but {staleness.size} staleness "
            f"entries"
        )
    if (staleness < 0).any():
        raise ValueError("staleness must be non-negative")
    effective = counts * discount**staleness
    return weighted_average_states(states, effective)


def aggregate_bn_statistics(
    stats_list: list[dict[str, tuple[np.ndarray, np.ndarray]]],
    sample_counts: list[int] | np.ndarray,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Paper Eq. 4: weighted mean of per-device BN (mean, var) pairs."""
    if not stats_list:
        raise ValueError("no statistics to aggregate")
    weights = normalized_weights(sample_counts)
    if len(weights) != len(stats_list):
        raise ValueError(
            f"{len(stats_list)} stat dicts but {len(weights)} sample counts"
        )
    keys = set(stats_list[0])
    for stats in stats_list[1:]:
        if set(stats) != keys:
            raise ValueError("BN statistics have mismatched layer names")
    aggregated = {}
    for name in stats_list[0]:
        mean = np.zeros_like(stats_list[0][name][0], dtype=np.float64)
        var = np.zeros_like(stats_list[0][name][1], dtype=np.float64)
        for weight, stats in zip(weights, stats_list):
            mean += weight * stats[name][0]
            var += weight * stats[name][1]
        aggregated[name] = (mean.astype(np.float32), var.astype(np.float32))
    return aggregated


def aggregate_sparse_gradients(
    per_device: list[dict[str, tuple[np.ndarray, np.ndarray]]],
    sample_counts: list[int] | np.ndarray,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Paper Eq. 7 on sparse (indices, values) uploads.

    Each device reports, per layer, the flat indices and values of its
    top-K pruned-parameter gradients. The aggregate for an index is the
    weighted sum over devices, a device contributing zero where it did
    not report the index.
    """
    if not per_device:
        raise ValueError("no gradients to aggregate")
    weights = normalized_weights(sample_counts)
    if len(weights) != len(per_device):
        raise ValueError(
            f"{len(per_device)} gradient dicts but {len(weights)} counts"
        )
    layer_names: set[str] = set()
    for device in per_device:
        layer_names.update(device)
    aggregated: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name in sorted(layer_names):
        index_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        for weight, device in zip(weights, per_device):
            if name not in device:
                continue
            indices, values = device[name]
            index_parts.append(np.asarray(indices, dtype=np.int64))
            # float64 products and accumulation, matching the scalar
            # reference: weighted values are summed at full precision and
            # rounded to float32 exactly once at the end.
            value_parts.append(
                weight * np.asarray(values, dtype=np.float64)
            )
        if not index_parts:
            continue
        all_indices = np.concatenate(index_parts)
        if all_indices.size == 0:
            continue
        all_values = np.concatenate(value_parts)
        idx, inverse = np.unique(all_indices, return_inverse=True)
        sums = np.zeros(idx.size, dtype=np.float64)
        # Unbuffered scatter-add: contributions land in upload order, so
        # per-index accumulation order matches the scalar loop exactly.
        np.add.at(sums, inverse, all_values)
        aggregated[name] = (idx, sums.astype(np.float32))
    return aggregated
