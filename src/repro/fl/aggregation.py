"""Server-side aggregation rules.

Weighted FedAvg over parameter states (paper Algorithm 2 line 18), the
BN-statistics aggregation of Algorithm 1 (Eq. 4), and the sparse top-K
gradient aggregation of Algorithm 2 (Eq. 7, implicit zeros for indices
a device did not report).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalized_weights",
    "weighted_average_states",
    "staleness_weighted_average_states",
    "aggregate_bn_statistics",
    "aggregate_sparse_gradients",
]


def normalized_weights(
    sample_counts: list[int] | list[float] | np.ndarray,
) -> np.ndarray:
    """|D_k| / sum |D_k| weights used throughout the paper.

    Accepts any positive weights (e.g. staleness-discounted effective
    sample counts), not only integer dataset sizes.
    """
    counts = np.asarray(sample_counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("sample_counts must be a non-empty 1-D sequence")
    if (counts <= 0).any():
        raise ValueError("sample counts must all be positive")
    return counts / counts.sum()


def weighted_average_states(
    states: list[dict[str, np.ndarray]],
    sample_counts: list[int] | list[float] | np.ndarray,
) -> dict[str, np.ndarray]:
    """FedAvg: weighted mean of parameter/buffer dicts."""
    if not states:
        raise ValueError("no states to aggregate")
    weights = normalized_weights(sample_counts)
    if len(weights) != len(states):
        raise ValueError(
            f"{len(states)} states but {len(weights)} sample counts"
        )
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise ValueError("states have mismatched keys")
    aggregated: dict[str, np.ndarray] = {}
    for key in states[0]:
        acc = np.zeros_like(states[0][key], dtype=np.float64)
        for weight, state in zip(weights, states):
            acc += weight * state[key]
        aggregated[key] = acc.astype(np.float32)
    return aggregated


def staleness_weighted_average_states(
    states: list[dict[str, np.ndarray]],
    sample_counts: list[int] | np.ndarray,
    staleness_rounds: list[int] | np.ndarray,
    discount: float = 0.5,
) -> dict[str, np.ndarray]:
    """Buffered-async aggregation with staleness discounting.

    Upload ``k`` contributes with weight ``|D_k| * discount**s_k`` where
    ``s_k`` is how many server versions elapsed since the client pulled
    the model it trained on (0 for a fresh synchronous upload). With
    every staleness at 0 this reduces exactly to
    :func:`weighted_average_states`.
    """
    if not 0.0 < discount <= 1.0:
        raise ValueError(f"discount must be in (0, 1], got {discount}")
    counts = np.asarray(sample_counts, dtype=np.float64)
    staleness = np.asarray(staleness_rounds, dtype=np.float64)
    if staleness.shape != counts.shape:
        raise ValueError(
            f"{counts.size} sample counts but {staleness.size} staleness "
            f"entries"
        )
    if (staleness < 0).any():
        raise ValueError("staleness must be non-negative")
    effective = counts * discount**staleness
    return weighted_average_states(states, effective)


def aggregate_bn_statistics(
    stats_list: list[dict[str, tuple[np.ndarray, np.ndarray]]],
    sample_counts: list[int] | np.ndarray,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Paper Eq. 4: weighted mean of per-device BN (mean, var) pairs."""
    if not stats_list:
        raise ValueError("no statistics to aggregate")
    weights = normalized_weights(sample_counts)
    if len(weights) != len(stats_list):
        raise ValueError(
            f"{len(stats_list)} stat dicts but {len(weights)} sample counts"
        )
    keys = set(stats_list[0])
    for stats in stats_list[1:]:
        if set(stats) != keys:
            raise ValueError("BN statistics have mismatched layer names")
    aggregated = {}
    for name in stats_list[0]:
        mean = np.zeros_like(stats_list[0][name][0], dtype=np.float64)
        var = np.zeros_like(stats_list[0][name][1], dtype=np.float64)
        for weight, stats in zip(weights, stats_list):
            mean += weight * stats[name][0]
            var += weight * stats[name][1]
        aggregated[name] = (mean.astype(np.float32), var.astype(np.float32))
    return aggregated


def aggregate_sparse_gradients(
    per_device: list[dict[str, tuple[np.ndarray, np.ndarray]]],
    sample_counts: list[int] | np.ndarray,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Paper Eq. 7 on sparse (indices, values) uploads.

    Each device reports, per layer, the flat indices and values of its
    top-K pruned-parameter gradients. The aggregate for an index is the
    weighted sum over devices, a device contributing zero where it did
    not report the index.
    """
    if not per_device:
        raise ValueError("no gradients to aggregate")
    weights = normalized_weights(sample_counts)
    if len(weights) != len(per_device):
        raise ValueError(
            f"{len(per_device)} gradient dicts but {len(weights)} counts"
        )
    layer_names: set[str] = set()
    for device in per_device:
        layer_names.update(device)
    aggregated: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name in sorted(layer_names):
        index_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        for weight, device in zip(weights, per_device):
            if name not in device:
                continue
            indices, values = device[name]
            index_parts.append(np.asarray(indices, dtype=np.int64))
            # float64 products and accumulation, matching the scalar
            # reference: weighted values are summed at full precision and
            # rounded to float32 exactly once at the end.
            value_parts.append(
                weight * np.asarray(values, dtype=np.float64)
            )
        if not index_parts:
            continue
        all_indices = np.concatenate(index_parts)
        if all_indices.size == 0:
            continue
        all_values = np.concatenate(value_parts)
        idx, inverse = np.unique(all_indices, return_inverse=True)
        sums = np.zeros(idx.size, dtype=np.float64)
        # Unbuffered scatter-add: contributions land in upload order, so
        # per-index accumulation order matches the scalar loop exactly.
        np.add.at(sums, inverse, all_values)
        aggregated[name] = (idx, sums.astype(np.float32))
    return aggregated
