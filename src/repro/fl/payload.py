"""Sparse round-transport codec for federated state exchange.

Every round the server broadcasts the global state and each device
uploads its locally-trained state. Shipping those as ``{name: array}``
dicts (or pickled models) moves *dense* bytes regardless of how pruned
the model is. This codec packs a state dict against the server's
:class:`~repro.sparse.mask.MaskSet` into one contiguous byte buffer so
the bytes actually moved scale with the active-parameter count:

- masked tensors are stored COO-style — int32 flat indices followed by
  float32 values of the *active* entries — exactly the 8-bytes-per-active
  layout :mod:`repro.sparse.storage` has always charged for;
- when a tensor is dense enough that COO would cost more than plain
  float32 (the ``storage.py`` crossover at 50% density), it falls back
  to dense encoding, again matching the accounting model;
- unmasked parameters (biases, BN affine terms) and buffers (BN running
  statistics) are always dense.

``PackedPayload.nbytes`` is therefore the *measured* transfer size and
equals :func:`packed_nbytes`, which reproduces the
:func:`repro.sparse.storage.sparse_bytes` prediction tensor by tensor —
the reconciliation the communication tracker relies on.

Round-trips are bit-exact at every active position. Pruned positions
are canonicalized to ``+0.0`` on unpack (the arithmetic path
``data * mask`` can leave ``-0.0`` there; the two compare equal
everywhere).

Delta encoding (``base=``) XORs the float32 bit patterns against a
round-base state instead of storing raw values. XOR deltas are exactly
reversible (unlike floating-point subtraction), compose across rounds,
and turn unchanged values into all-zero words — a standard trick from
time-series float compression.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass

import numpy as np

from ..nn.module import Module
from ..sparse.mask import MaskSet
from ..sparse.storage import INDEX_BYTES, VALUE_BYTES, dense_bytes, \
    sparse_bytes, sparse_is_cheaper

__all__ = [
    "PayloadFormatError",
    "TensorSpec",
    "PackedPayload",
    "ModelBinding",
    "StatePacker",
    "build_mask_indices",
    "pack_state",
    "pack_model_state",
    "unpack_state",
    "unpack_into_model",
    "packed_nbytes",
]

_MAGIC = b"RPAY"
_VERSION = 1
_HEADER = struct.Struct("<4sBBxxQQ")  # magic, version, flags, header, body
_FLAG_DELTA = 1


def _align8(n: int) -> int:
    """Segments start 8-aligned so typed views stay aligned in shm."""
    return (n + 7) & ~7

#: Keys produced for registered buffers, matching ``fl.state.get_state``.
BUFFER_PREFIX = "buffer::"


class PayloadFormatError(ValueError):
    """A payload failed structural validation (malformed or corrupt)."""


@dataclass(frozen=True)
class TensorSpec:
    """Layout of one tensor inside a packed buffer."""

    name: str
    shape: tuple[int, ...]
    encoding: str  # "dense" | "sparse"
    offset: int  # byte offset of this tensor's segment
    num_active: int  # == size for dense tensors

    @property
    def size(self) -> int:
        size = 1
        for dim in self.shape:
            size *= int(dim)
        return size

    @property
    def nbytes(self) -> int:
        if self.encoding == "sparse":
            return self.num_active * (VALUE_BYTES + INDEX_BYTES)
        return dense_bytes(self.size)


class PackedPayload:
    """A state dict packed into one contiguous byte buffer."""

    def __init__(
        self,
        specs: tuple[TensorSpec, ...],
        buffer: np.ndarray,
        delta: bool = False,
    ) -> None:
        self.specs = tuple(specs)
        self.buffer = np.ascontiguousarray(buffer, dtype=np.uint8)
        self.delta = bool(delta)
        self._header_cache: bytes | None = None

    @property
    def nbytes(self) -> int:
        """Measured payload size: exactly the bytes in the buffer."""
        return int(self.buffer.nbytes)

    # ------------------------------------------------------------------
    # Typed views into the buffer (zero-copy)
    # ------------------------------------------------------------------
    def indices_view(self, spec: TensorSpec) -> np.ndarray:
        if spec.encoding != "sparse":
            raise ValueError(f"{spec.name!r} is dense; it has no indices")
        return np.frombuffer(
            self.buffer,
            dtype=np.int32,
            count=spec.num_active,
            offset=spec.offset,
        )

    def values_view(self, spec: TensorSpec) -> np.ndarray:
        offset = spec.offset
        if spec.encoding == "sparse":
            offset += spec.num_active * INDEX_BYTES
        return np.frombuffer(
            self.buffer,
            dtype=np.float32,
            count=spec.num_active,
            offset=offset,
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def _header_bytes(self) -> bytes:
        if self._header_cache is None:
            self._header_cache = pickle.dumps(
                [
                    (s.name, s.shape, s.encoding, s.offset, s.num_active)
                    for s in self.specs
                ],
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        return self._header_cache

    def write_into(self, target, offset: int = 0) -> int:
        """Write the wire form into a writable buffer; returns its length.

        This is the shared-memory broadcast path: one copy of the packed
        values lands directly in the destination segment, with no
        intermediate ``bytes`` materialization.
        """
        header = self._header_bytes()
        flags = _FLAG_DELTA if self.delta else 0
        header_span = _align8(len(header))
        total = _HEADER.size + header_span + self.nbytes
        view = memoryview(target)
        _HEADER.pack_into(
            view, offset, _MAGIC, _VERSION, flags, len(header), self.nbytes
        )
        cursor = offset + _HEADER.size
        view[cursor : cursor + len(header)] = header
        cursor = offset + _HEADER.size + header_span
        view[cursor : cursor + self.nbytes] = memoryview(self.buffer.data)
        return total

    @property
    def wire_nbytes(self) -> int:
        """Exact length :meth:`write_into` will produce."""
        return _HEADER.size + _align8(len(self._header_bytes())) + self.nbytes

    def to_wire(self) -> bytearray:
        """Wire form as a fresh ``bytearray`` (one copy of the values)."""
        out = bytearray(self.wire_nbytes)
        self.write_into(out)
        return out

    def to_bytes(self) -> bytes:
        """Self-describing wire form: fixed header + specs + buffer."""
        return bytes(self.to_wire())

    @classmethod
    def from_bytes(
        cls,
        data: bytes | bytearray | memoryview,
        copy: bool = True,
        validate: bool = True,
        spec_cache: dict | None = None,
    ) -> "PackedPayload":
        """Parse the wire form back into a payload.

        ``copy=False`` keeps the buffer as a zero-copy view into
        ``data`` — the caller must keep the backing memory (e.g. a
        shared-memory segment) alive for the payload's lifetime.
        ``validate=False`` skips the structural audit for payloads from
        a trusted same-run producer (executor workers); anything read
        from outside the process should keep it on. ``spec_cache`` maps
        raw header bytes to already-parsed spec tuples, so a server
        parsing one upload per client per round deserializes each mask
        epoch's layout once.
        """
        data = memoryview(data)
        if len(data) < _HEADER.size:
            raise PayloadFormatError("payload shorter than its header")
        magic, version, flags, header_len, body_len = _HEADER.unpack_from(
            data
        )
        if magic != _MAGIC:
            raise PayloadFormatError(f"bad payload magic {magic!r}")
        if version != _VERSION:
            raise PayloadFormatError(f"unsupported payload version {version}")
        body_start = _HEADER.size + _align8(header_len)
        end = body_start + body_len
        if end > len(data):
            raise PayloadFormatError(
                f"payload truncated: header promises {end} bytes, "
                f"got {len(data)}"
            )
        header = bytes(data[_HEADER.size : _HEADER.size + header_len])
        specs = (
            spec_cache.get(header) if spec_cache is not None else None
        )
        if specs is None:
            # The spec table is pickled: parsing is only *robust* (not
            # safe) against corruption — a malformed header surfaces as
            # PayloadFormatError, but a deliberately crafted pickle can
            # execute code, so this wire format is for same-trust
            # producers (the run's own workers/arena), never for
            # untrusted network input.
            try:
                specs = tuple(
                    TensorSpec(
                        str(name), tuple(map(int, shape)), str(encoding),
                        int(offset), int(active),
                    )
                    for name, shape, encoding, offset, active
                    in pickle.loads(header)
                )
            except PayloadFormatError:
                raise
            except Exception as exc:
                raise PayloadFormatError(
                    f"unparseable payload spec header: {exc}"
                ) from exc
            if spec_cache is not None:
                spec_cache[header] = specs
        buffer = np.frombuffer(
            data, dtype=np.uint8, count=body_len, offset=body_start
        )
        if copy:
            buffer = buffer.copy()
        payload = cls(specs, buffer, delta=bool(flags & _FLAG_DELTA))
        if validate:
            payload.validate()
        return payload

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`PayloadFormatError` on any structural defect.

        Checks segment bounds (offset overflow), spec/shape consistency,
        and sparse index sanity (sorted, unique, in range) so a corrupt
        payload fails loudly instead of scribbling over model state.
        """
        seen: set[str] = set()
        cursor = 0
        for spec in self.specs:
            if spec.name in seen:
                raise PayloadFormatError(f"duplicate tensor {spec.name!r}")
            seen.add(spec.name)
            if spec.encoding not in ("dense", "sparse"):
                raise PayloadFormatError(
                    f"{spec.name!r}: unknown encoding {spec.encoding!r}"
                )
            if spec.num_active < 0 or spec.num_active > spec.size:
                raise PayloadFormatError(
                    f"{spec.name!r}: num_active={spec.num_active} outside "
                    f"[0, {spec.size}]"
                )
            if spec.encoding == "dense" and spec.num_active != spec.size:
                raise PayloadFormatError(
                    f"{spec.name!r}: dense tensor must have "
                    f"num_active == size"
                )
            if spec.offset != cursor:
                raise PayloadFormatError(
                    f"{spec.name!r}: segment offset {spec.offset} does not "
                    f"follow the previous segment (expected {cursor})"
                )
            cursor += spec.nbytes
            if cursor > self.nbytes:
                raise PayloadFormatError(
                    f"{spec.name!r}: segment overflows the buffer "
                    f"({cursor} > {self.nbytes})"
                )
            if spec.encoding == "sparse" and spec.num_active:
                idx = self.indices_view(spec)
                if int(idx[0]) < 0 or int(idx[-1]) >= spec.size:
                    raise PayloadFormatError(
                        f"{spec.name!r}: sparse index out of range "
                        f"for size {spec.size}"
                    )
                if idx.size > 1 and not (np.diff(idx) > 0).all():
                    raise PayloadFormatError(
                        f"{spec.name!r}: sparse indices must be strictly "
                        f"increasing"
                    )
        if cursor != self.nbytes:
            raise PayloadFormatError(
                f"buffer holds {self.nbytes} bytes but specs describe "
                f"{cursor}"
            )


# ----------------------------------------------------------------------
# Spec planning
# ----------------------------------------------------------------------
def _choose_encoding(num_active: int, size: int) -> str:
    """Sparse iff COO is strictly cheaper — the ``storage.py`` crossover."""
    return "sparse" if sparse_is_cheaper(num_active, size) else "dense"


def build_mask_indices(masks: MaskSet) -> dict[str, np.ndarray]:
    """Per-layer int32 flat indices of the active entries.

    Executors cache this per mask epoch so packing a round's payloads
    gathers through precomputed indices instead of re-scanning masks.
    """
    return {
        name: np.flatnonzero(np.asarray(mask).reshape(-1)).astype(np.int32)
        for name, mask in masks.items()
    }


def _plan(
    entries: list[tuple[str, tuple[int, ...], int | None]],
) -> tuple[tuple[TensorSpec, ...], int]:
    """Specs + total bytes for ``(name, shape, num_active_or_None)``."""
    specs = []
    offset = 0
    for name, shape, num_active in entries:
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if num_active is None:
            encoding, active = "dense", size
        else:
            encoding = _choose_encoding(num_active, size)
            active = num_active if encoding == "sparse" else size
        spec = TensorSpec(name, tuple(shape), encoding, offset, active)
        specs.append(spec)
        offset += spec.nbytes
    return tuple(specs), offset


def packed_nbytes(model: Module, masks: MaskSet) -> int:
    """Predicted payload size for ``model``'s state under ``masks``.

    Reconciles exactly with :func:`repro.sparse.storage.sparse_bytes`:
    masked tensors cost ``min(8 * active, 4 * size)`` and everything
    else is dense float32, so the value doubles as the communication
    tracker's per-exchange byte count.
    """
    total = 0
    for name, param in model.named_parameters():
        if name in masks:
            total += sparse_bytes(masks.layer_active(name), param.size)
        else:
            total += dense_bytes(param.size)
    for _, buf in model.named_buffers():
        total += dense_bytes(int(buf.size))
    return total


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------
def _write_segment(
    buffer: np.ndarray,
    spec: TensorSpec,
    flat: np.ndarray,
    idx: np.ndarray | None,
    base_flat: np.ndarray | None,
) -> None:
    """Fill one tensor's segment from its flat float32 source array."""
    offset = spec.offset
    if spec.encoding == "sparse":
        idx_view = np.frombuffer(
            buffer, dtype=np.int32, count=spec.num_active, offset=offset
        )
        np.copyto(idx_view, idx)
        offset += spec.num_active * INDEX_BYTES
    values = np.frombuffer(
        buffer, dtype=np.float32, count=spec.num_active, offset=offset
    )
    if spec.encoding == "sparse":
        np.take(flat, idx, out=values)
    else:
        np.copyto(values, flat)
    if base_flat is not None:
        # XOR delta against the round base: exactly reversible, unlike
        # floating-point subtraction, and zero where nothing changed.
        values_u32 = values.view(np.uint32)
        if spec.encoding == "sparse":
            base_vals = base_flat[idx].view(np.uint32)
        else:
            base_vals = base_flat.view(np.uint32)
        np.bitwise_xor(values_u32, base_vals, out=values_u32)


def _pack(
    items: list[tuple[str, tuple[int, ...], np.ndarray]],
    masks: MaskSet,
    base: dict[str, np.ndarray] | None,
    indices: dict[str, np.ndarray] | None,
) -> PackedPayload:
    entries = []
    for name, shape, _ in items:
        active = masks.layer_active(name) if name in masks else None
        entries.append((name, shape, active))
    specs, total = _plan(entries)
    buffer = np.empty(total, dtype=np.uint8)
    for spec, (name, _, array) in zip(specs, items):
        flat = np.ascontiguousarray(array, dtype=np.float32).reshape(-1)
        idx = None
        if spec.encoding == "sparse":
            if indices is not None and name in indices:
                idx = indices[name]
            else:
                idx = np.flatnonzero(
                    np.asarray(masks[name]).reshape(-1)
                ).astype(np.int32)
        base_flat = None
        if base is not None:
            if name not in base:
                raise KeyError(f"delta base is missing tensor {name!r}")
            base_flat = np.ascontiguousarray(
                base[name], dtype=np.float32
            ).reshape(-1)
            if base_flat.size != spec.size:
                raise ValueError(
                    f"delta base shape mismatch for {name!r}: "
                    f"{base[name].shape} vs {spec.shape}"
                )
        _write_segment(buffer, spec, flat, idx, base_flat)
    return PackedPayload(specs, buffer, delta=base is not None)


def pack_state(
    state: dict[str, np.ndarray],
    masks: MaskSet,
    base: dict[str, np.ndarray] | None = None,
    indices: dict[str, np.ndarray] | None = None,
) -> PackedPayload:
    """Pack a flat state dict against the server mask structure.

    ``base`` switches on XOR delta encoding against a round-base state
    with the same keys and shapes. ``indices`` supplies precomputed
    active-index arrays (see :func:`build_mask_indices`).
    """
    items = [
        (name, tuple(value.shape), value) for name, value in state.items()
    ]
    return _pack(items, masks, base, indices)


def pack_model_state(
    model: Module,
    masks: MaskSet,
    base: dict[str, np.ndarray] | None = None,
    indices: dict[str, np.ndarray] | None = None,
) -> PackedPayload:
    """Pack a model's parameters and buffers without a dict round-trip.

    Produces the same keys :func:`repro.fl.state.get_state` would
    (buffers prefixed with ``buffer::``), gathering straight from
    ``Parameter.data`` so no intermediate per-tensor copies are made.
    """
    items = [
        (name, param.shape, param.data)
        for name, param in model.named_parameters()
    ]
    items += [
        (BUFFER_PREFIX + name, tuple(buf.shape), buf)
        for name, buf in model.named_buffers()
    ]
    return _pack(items, masks, base, indices)


# ----------------------------------------------------------------------
# Unpacking
# ----------------------------------------------------------------------
def _decode_values(
    payload: PackedPayload,
    spec: TensorSpec,
    base_flat: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """(float32 values, indices-or-None) for one tensor, delta-resolved."""
    values = payload.values_view(spec)
    idx = payload.indices_view(spec) if spec.encoding == "sparse" else None
    if payload.delta:
        if base_flat is None:
            raise ValueError(
                f"payload is delta-encoded; a base state with tensor "
                f"{spec.name!r} is required"
            )
        if base_flat.size != spec.size:
            raise ValueError(
                f"delta base shape mismatch for {spec.name!r}"
            )
        base_u32 = base_flat.view(np.uint32)
        if idx is not None:
            base_u32 = base_u32[idx]
        values = (values.view(np.uint32) ^ base_u32).view(np.float32)
    return values, idx


def unpack_state(
    payload: PackedPayload,
    base: dict[str, np.ndarray] | None = None,
    validate: bool = True,
) -> dict[str, np.ndarray]:
    """Reconstruct the flat state dict a payload was packed from.

    Bit-exact at active positions; pruned positions come back as
    ``+0.0``. Delta payloads require the same ``base`` they were packed
    against.
    """
    if validate:
        payload.validate()
    state: dict[str, np.ndarray] = {}
    for spec in payload.specs:
        base_flat = None
        if payload.delta:
            if base is None or spec.name not in base:
                raise ValueError(
                    f"payload is delta-encoded; base state must contain "
                    f"{spec.name!r}"
                )
            base_flat = np.ascontiguousarray(
                base[spec.name], dtype=np.float32
            ).reshape(-1)
        values, idx = _decode_values(payload, spec, base_flat)
        if idx is None:
            state[spec.name] = values.reshape(spec.shape).copy()
        else:
            out = np.zeros(spec.size, dtype=np.float32)
            out[idx] = values
            state[spec.name] = out.reshape(spec.shape)
    return state


class ModelBinding:
    """Resolved pack/restore targets for one spec layout on one model.

    The executor's worker loop restores (and re-packs) the same cached
    model against the same spec layout many times per round; resolving
    parameter and buffer targets through the module tree on every call
    would dominate the transport time for small models. A binding walks
    the tree once, checks every shape once, and then moves values
    through tight per-spec loops.

    Parameter storage is re-read through ``Parameter.data`` at call time
    (mask application replaces the underlying arrays), and buffers
    through their owning module attribute.
    """

    def __init__(
        self, model: Module, specs: tuple[TensorSpec, ...]
    ) -> None:
        self.model = model
        self.specs = specs
        params = dict(model.named_parameters())
        self._entries: list[tuple[TensorSpec, object, object]] = []
        # Per-payload decoded views (restore) and the persistent pack
        # buffer with its prebuilt segment views — the executor restores
        # and re-packs the same layout once per client per round, so
        # per-tensor view construction must happen once, not every call.
        self._prepared_payload: PackedPayload | None = None
        self._prepared: list | None = None
        self._pack_payload: PackedPayload | None = None
        self._pack_views: list | None = None
        self._pack_indices: object = None
        total = 0
        for spec in specs:
            if spec.name.startswith(BUFFER_PREFIX):
                name = spec.name[len(BUFFER_PREFIX) :]
                parts = name.split(".")
                module = model
                try:
                    for part in parts[:-1]:
                        module = module._children[part]
                    target = getattr(module, parts[-1])
                except (KeyError, AttributeError):
                    raise PayloadFormatError(f"unknown buffer {name!r}")
                if parts[-1] not in module._buffers:
                    raise PayloadFormatError(f"unknown buffer {name!r}")
                entry = (spec, module, parts[-1])
            elif spec.name in params:
                param = params[spec.name]
                target = param.data
                entry = (spec, param, None)
            else:
                raise PayloadFormatError(
                    f"unknown parameter {spec.name!r}"
                )
            if tuple(target.shape) != spec.shape:
                raise PayloadFormatError(
                    f"shape mismatch for {spec.name!r}: payload "
                    f"{spec.shape} vs model {tuple(target.shape)}"
                )
            self._entries.append(entry)
            total += spec.nbytes
        self.nbytes = total

    @staticmethod
    def _target(owner, attr) -> np.ndarray:
        if attr is None:
            return owner.data
        return getattr(owner, attr)

    def release(self) -> None:
        """Drop cached views into the last payload's backing memory.

        Required before closing a shared-memory segment the last
        restored payload was mapped from — exported views keep the
        mapping alive (and ``SharedMemory.close`` refuses while they
        exist).
        """
        self._prepared_payload = None
        self._prepared = None

    def _prepare(self, payload: PackedPayload) -> list:
        """Decoded (values, idx) views per entry, cached per payload."""
        if self._prepared_payload is payload:
            return self._prepared
        if payload.specs is not self.specs and payload.specs != self.specs:
            raise PayloadFormatError(
                "payload spec layout does not match this binding"
            )
        prepared = []
        for spec, owner, attr in self._entries:
            values, idx = _decode_values(payload, spec, None)
            prepared.append((values, idx, owner, attr))
        self._prepared = prepared
        self._prepared_payload = payload
        return prepared

    def restore(
        self, payload: PackedPayload, assume_masked: bool = False
    ) -> None:
        """Install a (non-delta) payload into the bound model, in place.

        ``assume_masked`` skips the dense zero-fill before scattering a
        sparse tensor — valid whenever the model's pruned positions are
        already exactly zero (true right after ``masks.apply`` and
        preserved by masked local SGD), which turns the per-client
        restore from O(model) writes into O(active).
        """
        if payload.delta:
            raise ValueError(
                "delta payloads cannot be installed directly; resolve "
                "them with unpack_state(base=...) first"
            )
        for values, idx, owner, attr in self._prepare(payload):
            flat = self._target(owner, attr).reshape(-1)
            if idx is None:
                np.copyto(flat, values)
            else:
                if not assume_masked:
                    flat.fill(0.0)
                flat[idx] = values
            if attr is None:
                owner.bump_version()

    def pack(
        self, indices: dict[str, np.ndarray] | None = None
    ) -> PackedPayload:
        """Pack the bound model's current values into a payload.

        Reuses the binding's spec layout (no re-planning) so the upload
        of a round is guaranteed spec-compatible with its broadcast, and
        reuses one persistent buffer: the sparse index segments are
        written once (they only change with the mask epoch, when the
        executor rebuilds the binding) and later packs only refresh the
        value segments. The returned payload's buffer is therefore
        **invalidated by the next** ``pack()`` **call** — serialize it
        (``to_wire``) before packing again.
        """
        if self._pack_payload is None or self._pack_indices is not indices:
            buffer = np.empty(self.nbytes, dtype=np.uint8)
            views = []
            for spec, owner, attr in self._entries:
                idx = None
                if spec.encoding == "sparse":
                    if indices is None or spec.name not in indices:
                        raise ValueError(
                            f"packing {spec.name!r} needs its "
                            f"active-index array (see build_mask_indices)"
                        )
                    idx = indices[spec.name]
                    idx_view = np.frombuffer(
                        buffer, dtype=np.int32, count=spec.num_active,
                        offset=spec.offset,
                    )
                    np.copyto(idx_view, idx)
                val_view = np.frombuffer(
                    buffer,
                    dtype=np.float32,
                    count=spec.num_active,
                    offset=spec.offset
                    + (
                        spec.num_active * INDEX_BYTES
                        if spec.encoding == "sparse"
                        else 0
                    ),
                )
                views.append((val_view, idx, owner, attr))
            self._pack_payload = PackedPayload(self.specs, buffer)
            self._pack_views = views
            self._pack_indices = indices
        for val_view, idx, owner, attr in self._pack_views:
            flat = self._target(owner, attr).reshape(-1)
            if idx is None:
                np.copyto(val_view, flat)
            else:
                np.take(flat, idx, out=val_view)
        return self._pack_payload


class StatePacker:
    """Persistent packer for one state-dict layout (server broadcast).

    The server packs the same state layout against the same masks every
    round of a mask epoch; planning the specs, serializing the header,
    and allocating the buffer once — then only refreshing the value
    segments per round — makes the steady-state broadcast a pure gather.
    The returned payload's buffer is reused: serialize or copy it before
    the next :meth:`pack` call.
    """

    def __init__(
        self,
        template: dict[str, np.ndarray],
        masks: MaskSet,
        indices: dict[str, np.ndarray] | None = None,
    ) -> None:
        payload = pack_state(template, masks, indices=indices)
        self.specs = payload.specs
        self._payload = payload
        self._views: list = []
        if indices is None:
            indices = build_mask_indices(masks)
        for spec in payload.specs:
            idx = indices[spec.name] if spec.encoding == "sparse" else None
            self._views.append(
                (spec.name, spec.size, payload.values_view(spec), idx)
            )

    def pack(self, state: dict[str, np.ndarray]) -> PackedPayload:
        """Refresh the value segments from ``state`` (layout-checked)."""
        for name, size, view, idx in self._views:
            value = state[name]
            if value.size != size or value.dtype != np.float32:
                raise ValueError(
                    f"state tensor {name!r} does not match the packed "
                    f"layout"
                )
            flat = value.reshape(-1)
            if idx is None:
                np.copyto(view, flat)
            else:
                np.take(flat, idx, out=view)
        return self._payload


def unpack_into_model(
    payload: PackedPayload,
    model: Module,
    validate: bool = True,
    assume_masked: bool = False,
) -> None:
    """Install a (non-delta) payload straight into a model, in place.

    Writes through each ``Parameter``'s existing storage (bumping its
    cache version) and each registered buffer, allocating nothing.
    Raises :class:`PayloadFormatError` on any name/shape mismatch
    *before* touching the model, so a malformed payload cannot leave it
    half-written. Repeated restores of the same model should build a
    :class:`ModelBinding` once instead.
    """
    if validate:
        payload.validate()
    ModelBinding(model, payload.specs).restore(
        payload, assume_masked=assume_masked
    )
