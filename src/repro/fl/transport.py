"""Framed localhost transport for the ``network`` executor.

The networked round loop (see :mod:`repro.fl.network_server` and
:class:`repro.fl.executor.NetworkClientExecutor`) moves real bytes over
real sockets: worker processes register with the round server, pull the
packed broadcast, and push packed uploads. This module is the transport
substrate shared by both sides:

- a tiny length-prefixed **frame** format (magic, message type, pickled
  metadata, raw blob). The blob section carries
  :class:`~repro.fl.payload.PackedPayload` wire bytes *verbatim* — the
  PR-4 codec is the wire format, and the server re-validates every
  upload through :class:`~repro.fl.server.RoundIngest` before it can
  touch state;
- **sessions** with counter-based tokens (never entropy-seeded — the
  repo's determinism lint applies here too) and heartbeat liveness
  tracking on the real monotonic clock;
- a :class:`WorkerConnection` that gives worker processes bounded
  read/write timeouts, :class:`~repro.fl.faults.RetryPolicy`-shaped
  reconnect backoff, and session resume: a dropped connection
  re-registers under its old token and replays its in-flight upload,
  which the server's ingest deduplicates idempotently.

Frame metadata is pickled: both endpoints are same-run processes spawned
by the executor on localhost (the listener binds 127.0.0.1 only), so the
peer is trusted by construction, exactly like the process-pool
executor's task pickles. Payload bytes still go through the codec's
structural audit on ingest.

Failure behavior (per the PR-8 contract): every helper either raises
:class:`TransportError` (callers retry or surface it), logs the failure
before a bounded retry, or records it in the session/ingest accounting.
No silent drops.
"""

from __future__ import annotations

import logging
import pickle
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from .faults import RetryPolicy

__all__ = [
    "MSG",
    "Session",
    "SessionTable",
    "TransportConfig",
    "TransportError",
    "WorkerConnection",
    "recv_frame",
    "send_frame",
]

_LOG = logging.getLogger(__name__)

#: Frame prologue: magic, message type, pickled-meta length, blob length.
_MAGIC = b"FTNP"  # FedTiny Network Protocol
_FRAME = struct.Struct("<4sBxxxQQ")

#: Hard caps on frame section lengths: a desynchronized or hostile
#: stream must fail loudly instead of allocating garbage-sized buffers.
_MAX_META = 256 * 1024 * 1024
_MAX_BLOB = 1 << 30


class MSG:
    """Message-type bytes of the framed protocol."""

    REGISTER = 1       # worker -> server: {worker_id, token|None}
    REGISTERED = 2     # server -> worker: {token, resumed}
    HEARTBEAT = 3      # worker -> server: {token}
    HEARTBEAT_ACK = 4  # server -> worker: {}
    GET_TASK = 5       # worker -> server: {token}
    TASK = 6           # server -> worker: one training assignment
    WAIT = 7           # server -> worker: {poll} — no task right now
    SHUTDOWN = 8       # server -> worker: drain and exit
    GET_BROADCAST = 9  # worker -> server: {token, round_tag}
    BROADCAST = 10     # server -> worker: meta + packed payload blob
    UPLOAD = 11        # worker -> server: meta + packed upload blob
    UPLOAD_ACK = 12    # server -> worker: {status}
    ERROR = 13         # server -> worker: {reason}


class TransportError(RuntimeError):
    """A framing or connection failure on the executor transport."""


@dataclass(frozen=True)
class TransportConfig:
    """Knobs of the networked transport (see ``--transport-timeout``,
    ``--heartbeat-interval``, ``--max-reconnects``).

    ``timeout`` bounds every socket read/write *and* serves as the
    server-side in-flight task deadline; ``heartbeat_interval`` is the
    worker's beat cadence (a session missing
    :data:`LIVENESS_BEATS` consecutive beats is declared dead and its
    task is requeued); ``max_reconnects`` bounds both a worker's
    reconnect attempts and how many times a task may be reassigned
    before its client is reweighted out of the round.
    """

    timeout: float = 30.0
    heartbeat_interval: float = 1.0
    max_reconnects: int = 3

    #: Beats a session may miss before it is declared dead.
    LIVENESS_BEATS: float = 5.0

    def __post_init__(self) -> None:
        if self.timeout <= 0.0:
            raise ValueError("timeout must be positive")
        if self.heartbeat_interval <= 0.0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_interval >= self.timeout:
            raise ValueError(
                "heartbeat_interval must be smaller than timeout"
            )
        if self.max_reconnects < 0:
            raise ValueError("max_reconnects must be >= 0")

    @property
    def liveness_window(self) -> float:
        """Real seconds without a beat before a session is dead."""
        return self.heartbeat_interval * self.LIVENESS_BEATS

    @property
    def poll_interval(self) -> float:
        """Idle-poll cadence for workers and the round barrier."""
        return min(0.25, max(0.01, self.heartbeat_interval / 5.0))

    def retry_policy(self) -> RetryPolicy:
        """The reconnect backoff policy (real seconds, bounded).

        Reuses the PR-8 :class:`~repro.fl.faults.RetryPolicy` shape —
        bounded attempts, exponential backoff, deterministic jitter —
        but scaled to the heartbeat cadence and actually slept, because
        transport waits are wall-clock, not simulated.
        """
        return RetryPolicy(
            max_attempts=self.max_reconnects + 1,
            backoff_seconds=max(0.01, self.heartbeat_interval / 4.0),
            timeout_seconds=self.timeout,
        )


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`TransportError`."""
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            raise TransportError(
                f"read timed out with {remaining} bytes outstanding"
            ) from exc
        except OSError as exc:
            raise TransportError(f"read failed: {exc}") from exc
        if not chunk:
            raise TransportError(
                f"peer closed the connection with {remaining} bytes "
                "outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(
    sock: socket.socket,
    msg_type: int,
    meta: dict | None = None,
    blob: bytes | bytearray | memoryview = b"",
) -> None:
    """Write one frame (header + pickled meta + raw blob)."""
    meta_bytes = pickle.dumps(
        meta if meta is not None else {},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = _FRAME.pack(_MAGIC, msg_type, len(meta_bytes), len(blob))
    try:
        sock.sendall(header + meta_bytes)
        if blob:
            sock.sendall(blob)
    except socket.timeout as exc:
        raise TransportError("write timed out") from exc
    except OSError as exc:
        raise TransportError(f"write failed: {exc}") from exc


def recv_frame(sock: socket.socket) -> tuple[int, dict, bytes]:
    """Read one frame; returns ``(msg_type, meta, blob)``."""
    header = _recv_exact(sock, _FRAME.size)
    magic, msg_type, meta_len, blob_len = _FRAME.unpack(header)
    if magic != _MAGIC:
        raise TransportError(f"bad frame magic {magic!r}")
    if meta_len > _MAX_META or blob_len > _MAX_BLOB:
        raise TransportError(
            f"frame sections too large (meta={meta_len}, blob={blob_len})"
        )
    meta = pickle.loads(_recv_exact(sock, meta_len))
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    return msg_type, meta, blob


# ----------------------------------------------------------------------
# Sessions (server side)
# ----------------------------------------------------------------------
@dataclass
class Session:
    """One registered worker's liveness state."""

    token: str
    worker_id: int
    last_seen: float
    #: The client_id of the task assigned to this session, if any.
    client_id: int | None = None
    resumes: int = 0
    #: The most recent connection socket seen for this session, so a
    #: fault injector can sever it (see ``drop_one_session``).
    connection: socket.socket | None = field(
        default=None, repr=False, compare=False
    )


class SessionTable:
    """Registered sessions with heartbeat liveness tracking.

    Tokens are minted from a monotonically increasing counter — never
    from entropy or the wall clock (the determinism lint's contract) —
    which is sufficient because tokens only disambiguate same-run
    workers on a localhost-only listener.
    """

    def __init__(self, config: TransportConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._sessions: dict[str, Session] = {}
        self._counter = 0

    def register(
        self,
        worker_id: int,
        token: str | None = None,
        connection: socket.socket | None = None,
    ) -> tuple[Session, bool]:
        """Register (or resume) a worker; returns ``(session, resumed)``.

        A known ``token`` resumes its existing session — the dropped
        worker keeps its identity, assignment, and resume count. An
        unknown or absent token mints a fresh session (after a server
        restart the old token is gone, so the worker transparently gets
        a new one).
        """
        now = time.monotonic()
        with self._lock:
            if token is not None:
                session = self._sessions.get(token)
                if session is not None:
                    session.last_seen = now
                    session.resumes += 1
                    session.connection = connection
                    return session, True
            self._counter += 1
            fresh = Session(
                token=f"w{worker_id}-s{self._counter}",
                worker_id=worker_id,
                last_seen=now,
                connection=connection,
            )
            self._sessions[fresh.token] = fresh
            return fresh, False

    def beat(
        self,
        token: str,
        connection: socket.socket | None = None,
    ) -> Session:
        """Refresh a session's liveness; raises ``KeyError`` if unknown."""
        with self._lock:
            session = self._sessions[token]
            session.last_seen = time.monotonic()
            if connection is not None:
                session.connection = connection
            return session

    def get(self, token: str) -> Session | None:
        with self._lock:
            return self._sessions.get(token)

    def expired(self, now: float | None = None) -> list[Session]:
        """Sessions whose last beat is older than the liveness window."""
        if now is None:
            now = time.monotonic()
        window = self.config.liveness_window
        with self._lock:
            return [
                session for session in self._sessions.values()
                if now - session.last_seen > window
            ]

    def drop(self, token: str) -> Session | None:
        with self._lock:
            return self._sessions.pop(token, None)

    def clear(self) -> list[Session]:
        """Drop every session (server restart); returns what was live."""
        with self._lock:
            dropped = list(self._sessions.values())
            self._sessions.clear()
            return dropped

    def live(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)


# ----------------------------------------------------------------------
# Worker-side resilient connection
# ----------------------------------------------------------------------
class WorkerConnection:
    """One worker's connection to the round server, with resume.

    All requests go through :meth:`request`, which owns reconnection:
    a send/recv failure closes the socket, sleeps a
    :class:`~repro.fl.faults.RetryPolicy` backoff, reconnects, and
    re-registers under the saved session token (resume). A server that
    no longer knows the token (restart) transparently issues a fresh
    one. Requests are therefore *at-least-once*; the server's ingest
    deduplication is what makes replayed uploads idempotent.

    Thread-safe: the worker's heartbeat thread and its training loop
    share one connection under one lock.
    """

    def __init__(
        self,
        address: tuple[str, int],
        worker_id: int,
        config: TransportConfig,
    ) -> None:
        self.address = address
        self.worker_id = worker_id
        self.config = config
        self._retry = config.retry_policy()
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._token: str | None = None
        self.registrations = 0
        self.reconnects = 0

    @property
    def token(self) -> str | None:
        return self._token

    def _drop_socket_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError as exc:  # pragma: no cover - close rarely fails
                _LOG.warning(
                    "worker %d: closing dead socket failed: %s",
                    self.worker_id, exc,
                )
            self._sock = None

    def _backoff(self, attempt: int) -> None:
        # Real sleep; deterministic jitter keyed on (worker, reconnect
        # epoch, attempt) exactly like the simulated retry discipline.
        time.sleep(self._retry.backoff(
            self.worker_id, self.reconnects, self.worker_id, attempt
        ))

    def _connect_locked(self) -> None:
        """Connect and register (resume if we hold a token)."""
        last_error: Exception | None = None
        for attempt in range(self._retry.max_attempts):
            if attempt:
                self._backoff(attempt - 1)
            try:
                sock = socket.create_connection(
                    self.address, timeout=self.config.timeout
                )
                sock.settimeout(self.config.timeout)
                send_frame(sock, MSG.REGISTER, {
                    "worker_id": self.worker_id,
                    "token": self._token,
                })
                kind, meta, _ = recv_frame(sock)
            except (TransportError, OSError) as exc:
                last_error = exc
                _LOG.warning(
                    "worker %d: connect attempt %d to %s failed: %s",
                    self.worker_id, attempt, self.address, exc,
                )
                continue
            if kind != MSG.REGISTERED:
                sock.close()
                raise TransportError(
                    f"registration answered with message type {kind}"
                )
            if self.registrations:
                self.reconnects += 1
            self.registrations += 1
            self._token = meta["token"]
            self._sock = sock
            return
        raise TransportError(
            f"worker {self.worker_id}: could not reach server at "
            f"{self.address} after {self._retry.max_attempts} attempts: "
            f"{last_error}"
        )

    def request(
        self,
        msg_type: int,
        meta: dict | None = None,
        blob: bytes | bytearray | memoryview = b"",
    ) -> tuple[int, dict, bytes]:
        """One request/response exchange, reconnecting as needed."""
        with self._lock:
            last_error: Exception | None = None
            for attempt in range(self._retry.max_attempts):
                if self._sock is None:
                    self._connect_locked()
                payload_meta = dict(meta or {})
                payload_meta["token"] = self._token
                try:
                    send_frame(self._sock, msg_type, payload_meta, blob)
                    reply = recv_frame(self._sock)
                except (TransportError, OSError) as exc:
                    last_error = exc
                    _LOG.warning(
                        "worker %d: request %d failed (attempt %d): %s; "
                        "reconnecting", self.worker_id, msg_type,
                        attempt, exc,
                    )
                    self._drop_socket_locked()
                    self._backoff(attempt)
                    continue
                kind, reply_meta, _ = reply
                if (
                    kind == MSG.ERROR
                    and reply_meta.get("reason") == "unknown_session"
                ):
                    # The server forgot us (restart or injected session
                    # drop): register fresh and replay the request. The
                    # replay is safe because uploads deduplicate.
                    _LOG.warning(
                        "worker %d: session %r unknown to the server; "
                        "re-registering", self.worker_id, self._token,
                    )
                    self._token = None
                    self._drop_socket_locked()
                    continue
                return reply
            raise TransportError(
                f"worker {self.worker_id}: request {msg_type} failed "
                f"after {self._retry.max_attempts} attempts: {last_error}"
            )

    def close(self) -> None:
        with self._lock:
            self._drop_socket_locked()
