"""Built-in method registrations (FedTiny, ablations, all baselines).

Each builder receives ``(target_density, scale, schedule=None,
pool_size=None)`` where ``scale`` is a
:class:`~repro.experiments.configs.ScalePreset`; scale-derived defaults
(pretraining epochs, scoring iterations, pool-size caps) are resolved
here so method classes stay preset-agnostic. Imported lazily by the
registry on first access.
"""

from __future__ import annotations

from ..baselines import (
    FedAvgBaseline,
    FedDSTBaseline,
    FLPQSUBaseline,
    LotteryFLBaseline,
    PruneFLBaseline,
    SmallModelBaseline,
    SNIPBaseline,
    SynFlowBaseline,
)
from ..core import FedTiny, FedTinyConfig
from ..core.fedtiny import optimal_pool_size
from .registry import register_method


def _default_schedule(scale, schedule):
    return schedule if schedule is not None else scale.schedule()


@register_method("fedavg", summary="dense FedAvg, the accuracy upper bound")
def _build_fedavg(target_density, scale, schedule=None, pool_size=None):
    return FedAvgBaseline(pretrain_epochs=scale.pretrain_epochs)


@register_method(
    "fl-pqsu",
    summary="one-shot server magnitude pruning with a frozen mask",
)
def _build_fl_pqsu(target_density, scale, schedule=None, pool_size=None):
    return FLPQSUBaseline(
        target_density, pretrain_epochs=scale.pretrain_epochs
    )


@register_method(
    "snip",
    summary="SNIP connection sensitivity on the server's public data",
)
def _build_snip(target_density, scale, schedule=None, pool_size=None):
    return SNIPBaseline(
        target_density,
        pretrain_epochs=scale.pretrain_epochs,
        iterations=scale.snip_iterations,
    )


@register_method(
    "synflow",
    summary="data-free synaptic flow pruning on the server",
)
def _build_synflow(target_density, scale, schedule=None, pool_size=None):
    return SynFlowBaseline(
        target_density,
        pretrain_epochs=scale.pretrain_epochs,
        iterations=scale.synflow_iterations,
    )


@register_method(
    "prunefl",
    summary="adaptive mask reselection from full-size dense gradients",
    dense_memory=True,
    needs_schedule=True,
)
def _build_prunefl(target_density, scale, schedule=None, pool_size=None):
    return PruneFLBaseline(
        target_density,
        schedule=_default_schedule(scale, schedule),
        pretrain_epochs=scale.pretrain_epochs,
    )


@register_method(
    "feddst",
    summary="on-device RigL-style mask adjustment + sparse aggregation",
    needs_schedule=True,
)
def _build_feddst(target_density, scale, schedule=None, pool_size=None):
    return FedDSTBaseline(
        target_density,
        schedule=_default_schedule(scale, schedule),
        pretrain_epochs=scale.pretrain_epochs,
    )


@register_method(
    "lotteryfl",
    summary="iterative magnitude pruning with rewind on the global model",
    dense_memory=True,
    needs_schedule=True,
)
def _build_lotteryfl(target_density, scale, schedule=None, pool_size=None):
    return LotteryFLBaseline(
        target_density,
        schedule=_default_schedule(scale, schedule),
        pretrain_epochs=scale.pretrain_epochs,
    )


def _build_fedtiny_arm(
    target_density, scale, schedule, pool_size, use_bn, use_progressive
):
    if pool_size is None:
        # Cap the paper's C* = 0.1/d rule by the preset's budget so
        # reduced-scale runs don't spend all their time in selection.
        pool_size = min(
            optimal_pool_size(target_density), scale.max_pool_size
        )
    return FedTiny(
        FedTinyConfig(
            target_density=target_density,
            pool_size=pool_size,
            use_adaptive_bn=use_bn,
            use_progressive=use_progressive,
            schedule=_default_schedule(scale, schedule),
            pretrain_epochs=scale.pretrain_epochs,
        )
    )


@register_method(
    "fedtiny",
    summary="adaptive BN candidate selection + progressive pruning",
    needs_schedule=True,
)
def _build_fedtiny(target_density, scale, schedule=None, pool_size=None):
    return _build_fedtiny_arm(
        target_density, scale, schedule, pool_size, True, True
    )


@register_method(
    "small_model",
    summary="dense FedAvg on a parameter-matched small CNN",
    replaces_model=True,
)
def _build_small_model(target_density, scale, schedule=None, pool_size=None):
    return SmallModelBaseline(
        target_density, pretrain_epochs=scale.pretrain_epochs
    )


# Ablation arms (paper Fig. 4): the two FedTiny module switches.

@register_method(
    "vanilla",
    summary="FedTiny with both modules off (coarse prune only)",
    needs_schedule=True,
)
def _build_vanilla(target_density, scale, schedule=None, pool_size=None):
    return _build_fedtiny_arm(
        target_density, scale, schedule, pool_size, False, False
    )


@register_method(
    "adaptive_bn_only",
    summary="FedTiny ablation: adaptive BN selection, no progressive",
    needs_schedule=True,
)
def _build_adaptive_bn_only(
    target_density, scale, schedule=None, pool_size=None
):
    return _build_fedtiny_arm(
        target_density, scale, schedule, pool_size, True, False
    )


@register_method(
    "vanilla+progressive",
    summary="FedTiny ablation: progressive pruning, no adaptive BN",
    needs_schedule=True,
)
def _build_vanilla_progressive(
    target_density, scale, schedule=None, pool_size=None
):
    return _build_fedtiny_arm(
        target_density, scale, schedule, pool_size, False, True
    )
