"""Pluggable method API: the FederatedMethod lifecycle and its registry.

Built-in methods (FedTiny, its ablations, and every baseline) register
in :mod:`repro.methods.catalog`, loaded lazily on first registry
access; downstream users call :func:`register_method` directly.
"""

from .base import FederatedMethod
from .registry import (
    MethodSpec,
    build_method,
    get_method_spec,
    method_names,
    method_summaries,
    register_method,
    unregister_method,
)

__all__ = [
    "FederatedMethod",
    "MethodSpec",
    "build_method",
    "get_method_spec",
    "method_names",
    "method_summaries",
    "register_method",
    "unregister_method",
]
