"""Decorator-based registry of federated pruning methods.

Replaces the old ``if/elif`` chain in ``experiments/runner.py``: every
method registers a builder under a name, together with one line of
documentation and the metadata the runner needs (whether the method
keeps dense per-device state, needs a pruning schedule, or replaces the
model architecture entirely). Downstream users add their own methods
without touching repro internals::

    from repro.methods import FederatedMethod, register_method

    @register_method("my-method", summary="my custom pruning protocol")
    def _build(target_density, scale, schedule=None, pool_size=None):
        return MyMethod(target_density)

``repro run --method my-method`` then works like any built-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import FederatedMethod

__all__ = [
    "MethodSpec",
    "register_method",
    "unregister_method",
    "method_names",
    "method_summaries",
    "get_method_spec",
    "build_method",
]

# Builder signature: (target_density, scale, *, schedule=None,
# pool_size=None) -> FederatedMethod. ``scale`` is a ScalePreset (duck
# typed here to keep this module import-light).
MethodBuilder = Callable[..., "FederatedMethod"]


@dataclass(frozen=True)
class MethodSpec:
    """A registered method: its builder plus runner-facing metadata."""

    name: str
    summary: str
    builder: MethodBuilder
    dense_memory: bool = False  # keeps dense per-device importance state
    needs_schedule: bool = False  # consumes a PruningSchedule
    replaces_model: bool = False  # swaps the model architecture (small_model)


_REGISTRY: dict[str, MethodSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load the built-in catalog on first registry access (lazily, so
    method modules can import :mod:`repro.methods` without a cycle)."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        from . import catalog  # noqa: F401  (registers built-ins on import)

        # Only marked loaded on success: a failed catalog import must
        # surface again on the next registry access instead of leaving
        # a silently partial registry behind.
        _BUILTINS_LOADED = True


def register_method(
    name: str,
    *,
    summary: str,
    builder: MethodBuilder | None = None,
    dense_memory: bool = False,
    needs_schedule: bool = False,
    replaces_model: bool = False,
):
    """Register a method builder under ``name`` (case-insensitive).

    Usable as a decorator on the builder, or called directly with
    ``builder=``. Returns the builder either way.
    """
    key = name.lower()

    def _register(fn: MethodBuilder) -> MethodBuilder:
        if key in _REGISTRY:
            raise ValueError(f"method {name!r} already registered")
        _REGISTRY[key] = MethodSpec(
            name=key,
            summary=summary,
            builder=fn,
            dense_memory=dense_memory,
            needs_schedule=needs_schedule,
            replaces_model=replaces_model,
        )
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def unregister_method(name: str) -> None:
    """Remove a registered method (no-op if absent)."""
    _REGISTRY.pop(name.lower(), None)


def method_names() -> tuple[str, ...]:
    """Registered method names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def method_summaries() -> dict[str, str]:
    """``{name: one-line summary}`` for every registered method."""
    _ensure_builtins()
    return {name: spec.summary for name, spec in _REGISTRY.items()}


def get_method_spec(name: str) -> MethodSpec:
    """Look up a registered method's spec by name."""
    _ensure_builtins()
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown method {name!r}; available: {list(_REGISTRY)}"
        )
    return _REGISTRY[key]


def build_method(
    method_name: str,
    target_density: float,
    scale,
    schedule=None,
    pool_size: int | None = None,
) -> "FederatedMethod":
    """Instantiate a registered method for one experiment run."""
    spec = get_method_spec(method_name)
    return spec.builder(
        target_density, scale, schedule=schedule, pool_size=pool_size
    )
