"""The uniform lifecycle every federated pruning method follows.

:class:`FederatedMethod` owns the shared round loop that used to be
duplicated across the baselines and FedTiny. A method customizes four
hooks:

- :meth:`setup` — one-off server-side preparation before round 1
  (pretraining on the public dataset, initial mask installation,
  candidate selection, ...);
- :meth:`train_round` — produce the round's uploaded client states;
  the default runs a plain FedAvg round through the context's
  execution backend, methods that replace the round itself (FedDST's
  train/adjust/fine-tune round) override it;
- :meth:`round_hook` — post-aggregation mask adjustment; returns any
  extra per-device FLOPs the method spent that round. Hooks that need
  to know which devices were dropped by the round policy (straggler
  cut-off, offline clients) or uploaded late read
  ``self.ctx.last_round_info`` (a :class:`~repro.fl.policies.RoundInfo`);
- :meth:`finalize` — final cost accounting on the run record.

``run`` ties them together and is what callers invoke; the attribute
``self.ctx`` holds the active context for the duration of a run so
hooks with the uniform ``(round_index, states)`` signature can still
reach the server and clients.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from ..metrics.flops import training_flops_per_sample
from ..metrics.memory import device_memory_footprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.dataset import Dataset
    from ..fl.simulation import FederatedContext
    from ..metrics.tracker import RunResult

__all__ = ["FederatedMethod"]


class FederatedMethod(abc.ABC):
    """Base class for FedTiny, its ablations, and every baseline."""

    method_name: str = "method"
    target_density: float = 1.0
    #: Whether :meth:`round_hook` reads the per-client uploaded states.
    #: Methods that ignore them declare ``False`` so the round loop can
    #: feed packed uploads straight into the sparse-aware aggregation
    #: (no per-client dense decode) under the synchronous policy.
    needs_round_states: bool = True

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def setup(
        self, ctx: "FederatedContext", public_data: "Dataset"
    ) -> None:
        """One-off preparation before the first federated round."""

    def train_round(
        self, ctx: "FederatedContext", round_index: int
    ) -> list[dict[str, np.ndarray]]:
        """Produce this round's uploaded client states (post-aggregation)."""
        return ctx.run_fedavg_round(need_states=self.needs_round_states)

    def round_hook(
        self, round_index: int, states: list[dict[str, np.ndarray]]
    ) -> float:
        """Adjust masks after aggregation; returns extra per-device FLOPs.

        ``states`` holds the uploads aggregated this round, aligned with
        ``self.ctx.last_participants``; ``self.ctx.last_round_info``
        reports dropped/late devices and the round's simulated seconds.
        """
        del round_index, states
        return 0.0

    def finalize(
        self, result: "RunResult", ctx: "FederatedContext"
    ) -> None:
        """Record final cost accounting on the run record."""
        result.memory_footprint_bytes = device_memory_footprint(
            ctx.model, ctx.server.masks
        ).total_bytes

    def checkpoint_state(self) -> dict:
        """The method's cross-round mutable state, for run checkpoints.

        Methods whose behavior depends on state that evolves across
        rounds *outside* the server (progressive-pruning counters,
        adaptation budgets, ...) must return it here and install it in
        :meth:`restore_checkpoint_state`, or a resumed run will not be
        bit-for-bit. Stateless methods inherit the empty default.
        """
        return {}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Install :meth:`checkpoint_state` output on resume."""
        del state

    # ------------------------------------------------------------------
    # The shared round loop
    # ------------------------------------------------------------------
    def run(
        self, ctx: "FederatedContext", public_data: "Dataset"
    ) -> "RunResult":
        """Execute the full method lifecycle and return its run record."""
        self.ctx = ctx
        try:
            result = ctx.new_result(self.method_name, self.target_density)
            self.setup(ctx, public_data)
            # Resume after setup: setup re-derives the deterministic
            # prefix (pretraining, selection, initial masks) and the
            # checkpoint then overwrites every piece of state it
            # touched, so the restored run is bit-for-bit regardless of
            # what setup consumed.
            start_round = 1
            ckpt_path = ctx.checkpoint_path(self.method_name)
            if ckpt_path is not None and ctx.config.resume:
                resumed = ctx.try_resume(ckpt_path, result)
                if resumed is not None:
                    start_round, method_state = resumed
                    self.restore_checkpoint_state(method_state)
            max_samples = max(ctx.sample_counts)
            for round_index in range(start_round, ctx.config.rounds + 1):
                # Charged at the pre-adjustment density: the hook may
                # change the masks, but this round trained under the
                # current ones.
                base_flops = (
                    training_flops_per_sample(ctx.profile, ctx.server.masks)
                    * ctx.config.local_epochs
                    * max_samples
                )
                states = self.train_round(ctx, round_index)
                extra_flops = self.round_hook(round_index, states)
                ctx.record_round(
                    result, round_index, base_flops + extra_flops
                )
                if ckpt_path is not None and (
                    round_index % ctx.config.checkpoint_every == 0
                    or round_index == ctx.config.rounds
                ):
                    ctx.save_checkpoint(
                        ckpt_path, result, round_index,
                        self.checkpoint_state(),
                    )
            self.finalize(result, ctx)
            return result
        finally:
            # Don't keep the context (model, server state, every client
            # shard) alive through a surviving method object.
            self.ctx = None
