"""Datasets, synthetic generators and federated partitioning."""

from .dataset import Dataset
from .partition import dirichlet_partition, iid_partition, partition_dataset
from .synthetic import (
    DATASET_BUILDERS,
    SyntheticSpec,
    build_dataset,
    cifar10_like,
    cifar100_like,
    cinic10_like,
    generate,
    svhn_like,
)
from .transforms import (
    augment_batch,
    channel_statistics,
    normalize,
    random_crop_with_padding,
    random_horizontal_flip,
)

__all__ = [
    "DATASET_BUILDERS",
    "Dataset",
    "SyntheticSpec",
    "augment_batch",
    "build_dataset",
    "channel_statistics",
    "cifar10_like",
    "cifar100_like",
    "cinic10_like",
    "dirichlet_partition",
    "generate",
    "iid_partition",
    "normalize",
    "partition_dataset",
    "random_crop_with_padding",
    "random_horizontal_flip",
    "svhn_like",
]
