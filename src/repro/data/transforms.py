"""Vectorized image transforms (normalization and light augmentation)."""

from __future__ import annotations

import numpy as np

from .dataset import Dataset

__all__ = [
    "channel_statistics",
    "normalize",
    "random_horizontal_flip",
    "random_crop_with_padding",
    "augment_batch",
]


def channel_statistics(images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel mean and std of an (N, C, H, W) stack."""
    mean = images.mean(axis=(0, 2, 3))
    std = images.std(axis=(0, 2, 3)) + 1e-8
    return mean.astype(np.float32), std.astype(np.float32)


def normalize(
    dataset: Dataset, mean: np.ndarray, std: np.ndarray
) -> Dataset:
    """Standardize a dataset with the given per-channel statistics."""
    images = (dataset.images - mean[None, :, None, None]) / std[
        None, :, None, None
    ]
    return Dataset(images.astype(np.float32), dataset.labels)


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Flip a random subset of images left-right."""
    flip = rng.random(images.shape[0]) < probability
    out = images.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_crop_with_padding(
    images: np.ndarray, rng: np.random.Generator, padding: int = 2
) -> np.ndarray:
    """Pad reflectively then crop back to the original size at a random offset."""
    if padding < 1:
        return images.copy()
    n, c, h, w = images.shape
    padded = np.pad(
        images,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="reflect",
    )
    out = np.empty_like(images)
    offsets_y = rng.integers(0, 2 * padding + 1, size=n)
    offsets_x = rng.integers(0, 2 * padding + 1, size=n)
    for i in range(n):
        oy, ox = offsets_y[i], offsets_x[i]
        out[i] = padded[i, :, oy : oy + h, ox : ox + w]
    return out


def augment_batch(
    images: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Standard light training augmentation (flip + jitter crop)."""
    return random_horizontal_flip(
        random_crop_with_padding(images, rng), rng
    )
