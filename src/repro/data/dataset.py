"""In-memory image-classification datasets and batching."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Dataset"]


class Dataset:
    """Images ``(N, C, H, W)`` float32 + integer labels ``(N,)``."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError(
                f"images must have shape (N, C, H, W), got {images.shape}"
            )
        if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
            raise ValueError(
                f"labels shape {labels.shape} does not match "
                f"{images.shape[0]} images"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def num_classes(self) -> int:
        """Number of distinct classes present (labels are 0..K-1)."""
        if len(self) == 0:
            return 0
        return int(self.labels.max()) + 1

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return self.images.shape[1:]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "Dataset":
        """Dataset view at the given sample indices (copies data)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.images[indices], self.labels[indices])

    def sample_fraction(
        self, fraction: float, rng: np.random.Generator
    ) -> "Dataset":
        """Random subset with ``ceil(fraction * N)`` samples.

        Used to draw the local development dataset of the adaptive BN
        selection module (paper: 10% of local data).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(np.ceil(fraction * len(self))))
        indices = rng.choice(len(self), size=count, replace=False)
        return self.subset(indices)

    def split(
        self, first_fraction: float, rng: np.random.Generator
    ) -> tuple["Dataset", "Dataset"]:
        """Random disjoint split into two datasets."""
        if not 0.0 < first_fraction < 1.0:
            raise ValueError(
                f"first_fraction must be in (0, 1), got {first_fraction}"
            )
        permutation = rng.permutation(len(self))
        cut = max(1, int(round(first_fraction * len(self))))
        return self.subset(permutation[:cut]), self.subset(permutation[cut:])

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def batches(
        self,
        batch_size: int,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate over minibatches, shuffling when ``rng`` is given."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = (
            rng.permutation(len(self))
            if rng is not None
            else np.arange(len(self))
        )
        for start in range(0, len(self), batch_size):
            chunk = order[start : start + batch_size]
            if drop_last and chunk.size < batch_size:
                return
            yield self.images[chunk], self.labels[chunk]

    def first_batch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic first ``batch_size`` samples (for scoring passes)."""
        take = min(batch_size, len(self))
        return self.images[:take], self.labels[:take]

    def class_counts(self, num_classes: int | None = None) -> np.ndarray:
        """Histogram of labels, length ``num_classes``."""
        k = num_classes if num_classes is not None else self.num_classes
        return np.bincount(self.labels, minlength=k)
