"""Client data partitioning for federated simulation.

The paper partitions every dataset across K=10 devices with a Dirichlet
distribution over class proportions (alpha = 0.5 by default, varied in
Section IV-F). Lower alpha means more heterogeneous (non-iid) devices.

Two consumption styles are supported:

- :func:`partition_dataset` — the materialized path: every client's
  shard is built up front as its own :class:`~repro.data.dataset.Dataset`
  (image copies included). Memory is O(dataset) per shard list entry.
- :func:`plan_partition` / :class:`PartitionPlan` — the lazy path used
  by virtual client fleets: the partition is computed once as index
  arrays (or, for :class:`VirtualShardPlan`, not computed at all), and a
  client's shard is derived on demand from ``(plan, client_id)``.
  Nothing proportional to the fleet size is materialized until a client
  is actually selected.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .dataset import Dataset

__all__ = [
    "PartitionPlan",
    "ListPartitionPlan",
    "VirtualShardPlan",
    "dirichlet_partition",
    "iid_partition",
    "partition_dataset",
    "plan_partition",
]


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
    min_samples: int = 2,
) -> list[np.ndarray]:
    """Partition sample indices with per-class Dirichlet proportions.

    Every sample is assigned to exactly one client. The partition is
    resampled until every client holds at least ``min_samples`` samples,
    matching the common implementation of [Luo et al., 2021] that the
    paper follows.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")
    if len(labels) < num_clients * min_samples:
        raise ValueError(
            f"{len(labels)} samples cannot give {num_clients} clients "
            f"at least {min_samples} each"
        )
    num_classes = int(labels.max()) + 1

    for _ in range(1000):
        client_indices: list[list[int]] = [[] for _ in range(num_clients)]
        for cls in range(num_classes):
            cls_indices = np.flatnonzero(labels == cls)
            rng.shuffle(cls_indices)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            counts = np.floor(proportions * len(cls_indices)).astype(int)
            # Distribute the rounding remainder to the largest shares.
            remainder = len(cls_indices) - counts.sum()
            if remainder > 0:
                order = np.argsort(-proportions)
                counts[order[:remainder]] += 1
            start = 0
            for client, count in enumerate(counts):
                client_indices[client].extend(
                    cls_indices[start : start + count]
                )
                start += count
        sizes = [len(indices) for indices in client_indices]
        if min(sizes) >= min_samples:
            return [
                np.sort(np.array(indices, dtype=np.int64))
                for indices in client_indices
            ]
    raise RuntimeError(
        "could not find a Dirichlet partition satisfying min_samples "
        f"(alpha={alpha}, clients={num_clients})"
    )


def iid_partition(
    num_samples: int, num_clients: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Uniformly random equal-size partition."""
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if num_samples < num_clients:
        raise ValueError(
            f"{num_samples} samples cannot cover {num_clients} clients"
        )
    permutation = rng.permutation(num_samples)
    return [
        np.sort(chunk) for chunk in np.array_split(permutation, num_clients)
    ]


# ----------------------------------------------------------------------
# Lazy partition plans
# ----------------------------------------------------------------------
class PartitionPlan(ABC):
    """A partition queried per client ID instead of materialized as a list.

    ``shard_indices(client_id)`` is deterministic: calling it twice for
    the same ID returns the same indices, so a virtual client can be
    dropped and rebuilt at any time.
    """

    @property
    @abstractmethod
    def num_clients(self) -> int:
        """Number of clients the plan covers."""

    @abstractmethod
    def shard_size(self, client_id: int) -> int:
        """Number of samples in one client's shard (no materialization)."""

    @abstractmethod
    def shard_indices(self, client_id: int) -> np.ndarray:
        """Sorted dataset indices of one client's shard."""

    def sizes(self) -> list[int]:
        """Per-client shard sizes, aligned with client IDs."""
        return [self.shard_size(i) for i in range(self.num_clients)]

    def _check_id(self, client_id: int) -> None:
        if not 0 <= client_id < self.num_clients:
            raise IndexError(
                f"client_id {client_id} out of range "
                f"[0, {self.num_clients})"
            )


class ListPartitionPlan(PartitionPlan):
    """A plan wrapping precomputed per-client index arrays.

    This is the lazy counterpart of :func:`partition_dataset` for the
    exact (Dirichlet / iid) partitioners: the index arrays are O(total
    samples) of int64 — tiny next to the image data — and the shard
    ``Dataset`` copies are deferred until a client is materialized.
    """

    def __init__(self, parts: list[np.ndarray]) -> None:
        if not parts:
            raise ValueError("a partition plan needs at least one shard")
        self._parts = [np.asarray(p, dtype=np.int64) for p in parts]

    @property
    def num_clients(self) -> int:
        return len(self._parts)

    def shard_size(self, client_id: int) -> int:
        self._check_id(client_id)
        return int(self._parts[client_id].size)

    def shard_indices(self, client_id: int) -> np.ndarray:
        self._check_id(client_id)
        return self._parts[client_id]


class VirtualShardPlan(PartitionPlan):
    """Million-client overlapping shards derived per ID, O(1) storage.

    Models a huge cross-device population where each device holds a
    small local view of the data distribution: client ``k``'s shard is
    ``shard_size`` samples drawn without replacement from the dataset by
    an RNG seeded from ``(seed, k)`` alone. Shards of different clients
    overlap (the population is far larger than the dataset), every shard
    is recomputable from its ID, and nothing proportional to
    ``num_clients`` is ever stored.
    """

    _STREAM_SALT = 0x51A4D  # keeps shard draws off every other stream

    def __init__(
        self,
        num_samples: int,
        num_clients: int,
        shard_size: int,
        seed: int = 0,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if not 1 <= shard_size <= num_samples:
            raise ValueError(
                f"shard_size must be in [1, {num_samples}], "
                f"got {shard_size}"
            )
        self._num_samples = num_samples
        self._num_clients = num_clients
        self._shard_size = shard_size
        self._seed = seed

    @property
    def num_clients(self) -> int:
        return self._num_clients

    def shard_size(self, client_id: int) -> int:
        self._check_id(client_id)
        return self._shard_size

    def shard_indices(self, client_id: int) -> np.ndarray:
        self._check_id(client_id)
        rng = np.random.default_rng(
            [self._seed, self._STREAM_SALT, client_id]
        )
        return np.sort(
            rng.choice(
                self._num_samples, size=self._shard_size, replace=False
            )
        ).astype(np.int64)


def plan_partition(
    dataset: Dataset,
    num_clients: int,
    alpha: float | None,
    rng: np.random.Generator,
    min_samples: int = 2,
) -> ListPartitionPlan:
    """Compute the exact partition as a lazy :class:`ListPartitionPlan`.

    Consumes ``rng`` exactly as :func:`partition_dataset` does, so a
    virtual fleet built from this plan leaves the caller's RNG stream in
    the same state as the materialized path — downstream draws (client
    sampling, batch order) stay bitwise identical.
    """
    if alpha is None:
        parts = iid_partition(len(dataset), num_clients, rng)
    else:
        parts = dirichlet_partition(
            dataset.labels, num_clients, alpha, rng,
            min_samples=min_samples,
        )
    return ListPartitionPlan(parts)


def partition_dataset(
    dataset: Dataset,
    num_clients: int,
    alpha: float | None,
    rng: np.random.Generator,
    min_samples: int = 2,
) -> list[Dataset]:
    """Split a dataset into per-client shards.

    ``alpha=None`` gives an iid partition; otherwise a Dirichlet
    partition with concentration ``alpha``. ``min_samples`` is the
    per-client floor the Dirichlet partition resamples to satisfy
    (ignored by the iid path, whose shards differ by at most one
    sample).
    """
    plan = plan_partition(
        dataset, num_clients, alpha, rng, min_samples=min_samples
    )
    return [
        dataset.subset(plan.shard_indices(i)) for i in range(num_clients)
    ]
