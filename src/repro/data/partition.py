"""Client data partitioning for federated simulation.

The paper partitions every dataset across K=10 devices with a Dirichlet
distribution over class proportions (alpha = 0.5 by default, varied in
Section IV-F). Lower alpha means more heterogeneous (non-iid) devices.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset

__all__ = ["dirichlet_partition", "iid_partition", "partition_dataset"]


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
    min_samples: int = 2,
) -> list[np.ndarray]:
    """Partition sample indices with per-class Dirichlet proportions.

    Every sample is assigned to exactly one client. The partition is
    resampled until every client holds at least ``min_samples`` samples,
    matching the common implementation of [Luo et al., 2021] that the
    paper follows.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if len(labels) < num_clients * min_samples:
        raise ValueError(
            f"{len(labels)} samples cannot give {num_clients} clients "
            f"at least {min_samples} each"
        )
    num_classes = int(labels.max()) + 1

    for _ in range(1000):
        client_indices: list[list[int]] = [[] for _ in range(num_clients)]
        for cls in range(num_classes):
            cls_indices = np.flatnonzero(labels == cls)
            rng.shuffle(cls_indices)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            counts = np.floor(proportions * len(cls_indices)).astype(int)
            # Distribute the rounding remainder to the largest shares.
            remainder = len(cls_indices) - counts.sum()
            if remainder > 0:
                order = np.argsort(-proportions)
                counts[order[:remainder]] += 1
            start = 0
            for client, count in enumerate(counts):
                client_indices[client].extend(
                    cls_indices[start : start + count]
                )
                start += count
        sizes = [len(indices) for indices in client_indices]
        if min(sizes) >= min_samples:
            return [
                np.sort(np.array(indices, dtype=np.int64))
                for indices in client_indices
            ]
    raise RuntimeError(
        "could not find a Dirichlet partition satisfying min_samples "
        f"(alpha={alpha}, clients={num_clients})"
    )


def iid_partition(
    num_samples: int, num_clients: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Uniformly random equal-size partition."""
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if num_samples < num_clients:
        raise ValueError(
            f"{num_samples} samples cannot cover {num_clients} clients"
        )
    permutation = rng.permutation(num_samples)
    return [
        np.sort(chunk) for chunk in np.array_split(permutation, num_clients)
    ]


def partition_dataset(
    dataset: Dataset,
    num_clients: int,
    alpha: float | None,
    rng: np.random.Generator,
) -> list[Dataset]:
    """Split a dataset into per-client shards.

    ``alpha=None`` gives an iid partition; otherwise a Dirichlet
    partition with concentration ``alpha``.
    """
    if alpha is None:
        parts = iid_partition(len(dataset), num_clients, rng)
    else:
        parts = dirichlet_partition(
            dataset.labels, num_clients, alpha, rng
        )
    return [dataset.subset(indices) for indices in parts]
