"""Synthetic stand-ins for the paper's image datasets.

The evaluation uses CIFAR-10, CIFAR-100, CINIC-10 and SVHN, none of
which can be downloaded in this environment. Every algorithm in the
paper consumes the data only as (image batch, label batch) pairs plus a
Dirichlet non-iid partition, so we substitute seeded generators that
preserve the properties the algorithms are sensitive to:

- class structure learnable by small conv nets (smooth low-frequency
  class prototypes with additive noise and multiple intra-class modes);
- a difficulty ordering matching the real datasets
  (SVHN < CIFAR-10 < CINIC-10 << CIFAR-100);
- standard shapes (3x32x32 by default) and class counts.

See DESIGN.md ("Substitutions") for the fidelity argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import Dataset

__all__ = [
    "SyntheticSpec",
    "generate",
    "cifar10_like",
    "cifar100_like",
    "cinic10_like",
    "svhn_like",
    "DATASET_BUILDERS",
    "build_dataset",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Full description of one synthetic classification task."""

    name: str
    num_classes: int
    num_train: int
    num_test: int
    image_size: int = 32
    channels: int = 3
    noise: float = 0.5
    modes_per_class: int = 2
    prototype_grid: int = 4
    signal_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.num_train < self.num_classes or self.num_test < 1:
            raise ValueError("dataset too small for the class count")
        if self.noise < 0:
            raise ValueError("noise must be non-negative")
        if self.modes_per_class < 1:
            raise ValueError("modes_per_class must be >= 1")


def _upsample_bilinear(coarse: np.ndarray, size: int) -> np.ndarray:
    """Bilinear upsample of a (C, g, g) grid to (C, size, size)."""
    c, g, _ = coarse.shape
    # Sample positions of the fine grid in coarse coordinates.
    positions = np.linspace(0, g - 1, size)
    lo = np.floor(positions).astype(int)
    hi = np.minimum(lo + 1, g - 1)
    frac = positions - lo
    # Interpolate rows then columns.
    rows = (
        coarse[:, lo, :] * (1 - frac)[None, :, None]
        + coarse[:, hi, :] * frac[None, :, None]
    )
    out = (
        rows[:, :, lo] * (1 - frac)[None, None, :]
        + rows[:, :, hi] * frac[None, None, :]
    )
    return out.astype(np.float32)


def _make_prototypes(spec: SyntheticSpec, rng: np.random.Generator):
    """One smooth prototype image per (class, mode)."""
    prototypes = np.empty(
        (
            spec.num_classes,
            spec.modes_per_class,
            spec.channels,
            spec.image_size,
            spec.image_size,
        ),
        dtype=np.float32,
    )
    for cls in range(spec.num_classes):
        for mode in range(spec.modes_per_class):
            coarse = rng.normal(
                size=(spec.channels, spec.prototype_grid, spec.prototype_grid)
            )
            proto = _upsample_bilinear(coarse, spec.image_size)
            norm = np.sqrt((proto**2).mean()) + 1e-8
            prototypes[cls, mode] = spec.signal_scale * proto / norm
    return prototypes


def _sample_split(
    spec: SyntheticSpec,
    prototypes: np.ndarray,
    count: int,
    rng: np.random.Generator,
) -> Dataset:
    labels = rng.integers(0, spec.num_classes, size=count)
    modes = rng.integers(0, spec.modes_per_class, size=count)
    images = prototypes[labels, modes].copy()
    images += rng.normal(scale=spec.noise, size=images.shape).astype(
        np.float32
    )
    return Dataset(images, labels)


def generate(spec: SyntheticSpec) -> tuple[Dataset, Dataset]:
    """Generate the (train, test) datasets for ``spec``."""
    rng = np.random.default_rng(spec.seed)
    prototypes = _make_prototypes(spec, rng)
    train = _sample_split(spec, prototypes, spec.num_train, rng)
    test = _sample_split(spec, prototypes, spec.num_test, rng)
    return train, test


# ----------------------------------------------------------------------
# Named datasets mirroring the paper's benchmarks. Difficulty is set by
# the noise level and intra-class mode count; CIFAR-100 additionally has
# 10x the classes.
# ----------------------------------------------------------------------

def cifar10_like(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 32,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """CIFAR-10 stand-in: 10 classes, moderate noise."""
    return generate(
        SyntheticSpec(
            name="cifar10",
            num_classes=10,
            num_train=num_train,
            num_test=num_test,
            image_size=image_size,
            noise=0.9,
            modes_per_class=2,
            seed=seed,
        )
    )


def cifar100_like(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 32,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """CIFAR-100 stand-in: 100 classes (the hard task)."""
    return generate(
        SyntheticSpec(
            name="cifar100",
            num_classes=100,
            num_train=num_train,
            num_test=num_test,
            image_size=image_size,
            noise=0.9,
            modes_per_class=2,
            seed=seed + 1,
        )
    )


def cinic10_like(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 32,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """CINIC-10 stand-in: 10 classes, noisier than CIFAR-10."""
    return generate(
        SyntheticSpec(
            name="cinic10",
            num_classes=10,
            num_train=num_train,
            num_test=num_test,
            image_size=image_size,
            noise=1.3,
            modes_per_class=3,
            seed=seed + 2,
        )
    )


def svhn_like(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 32,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """SVHN stand-in: 10 classes, cleanest signal."""
    return generate(
        SyntheticSpec(
            name="svhn",
            num_classes=10,
            num_train=num_train,
            num_test=num_test,
            image_size=image_size,
            noise=0.6,
            modes_per_class=1,
            seed=seed + 3,
        )
    )


DATASET_BUILDERS = {
    "cifar10": cifar10_like,
    "cifar100": cifar100_like,
    "cinic10": cinic10_like,
    "svhn": svhn_like,
}


def build_dataset(
    name: str,
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 32,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Build a named dataset stand-in (see :data:`DATASET_BUILDERS`)."""
    key = name.lower()
    if key not in DATASET_BUILDERS:
        raise KeyError(
            f"unknown dataset {name!r}; available: "
            f"{sorted(DATASET_BUILDERS)}"
        )
    return DATASET_BUILDERS[key](
        num_train=num_train,
        num_test=num_test,
        image_size=image_size,
        seed=seed,
    )
