"""FedTiny: distributed pruning towards tiny neural networks in
federated learning.

A full reproduction of Huang et al. (ICDCS 2023, arXiv:2212.01977)
including the NumPy deep-learning substrate, the federated simulator,
FedTiny's two modules (adaptive BN selection, progressive pruning), all
baselines, and the benchmark harness that regenerates every table and
figure of the paper's evaluation.

Quickstart::

    from repro.experiments import run_experiment

    result = run_experiment(
        "fedtiny", "resnet18", "cifar10", target_density=0.01,
        scale="tiny",
    )
    print(result.final_accuracy, result.final_density)
"""

from . import baselines, core, data, experiments, fl, methods, metrics, nn
from . import pruning, sparse
from .core import FedTiny, FedTinyConfig
from .experiments import run_experiment
from .fl import FederatedContext, FLConfig
from .methods import FederatedMethod, register_method
from .sparse import MaskSet

__version__ = "1.1.0"

__all__ = [
    "FLConfig",
    "FedTiny",
    "FedTinyConfig",
    "FederatedContext",
    "FederatedMethod",
    "MaskSet",
    "baselines",
    "core",
    "data",
    "experiments",
    "fl",
    "methods",
    "metrics",
    "nn",
    "pruning",
    "register_method",
    "run_experiment",
    "sparse",
]
